#!/usr/bin/env python
"""Overload and the §V-D remedy: splitting regions when assignment melts down.

The paper's scalability experiments end in a regime where "the system gets
overloaded and as a result the assignment of the tasks to the workers takes
time", and proposes: "One possible solution ... is to split the regions so
that each of the servers would contain sufficient workers and tasks without
being overloaded."

This example reproduces that regime with the Greedy policy, whose per-batch
cost scans the whole region graph (O(V·E)) and therefore collapses once the
region holds too many in-flight tasks — exactly Fig. 9's cliff at 1000
workers.  An overload-aware coordinator watches the unassigned queue and
splits the region when it backs up; each half then owns a graph a quarter
the size (half the tasks × half the workers), pulling per-batch matching
latency back under the arrival rate.

It contrasts three deployments on the same workload:
  1. one REACT server            (no overload: the baseline)
  2. one Greedy server           (matcher-bound collapse)
  3. elastic Greedy servers      (split on overload -> recovery)

Run:  python examples/flash_crowd.py
"""

from repro.model.region import Region
from repro.model.task import Task, TaskCategory
from repro.platform.coordinator import Coordinator
from repro.platform.policies import greedy_policy, react_policy
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess
from repro.sim.rng import STREAM_ARRIVALS, STREAM_TASKS, RngRegistry
from repro.workload.arrivals import poisson_gaps
from repro.workload.population import PopulationConfig, generate_population

AREA = Region(0.0, 1.0, 0.0, 1.0)
WORKERS = 600
RATE = 7.5  # tasks/second — past Greedy's single-region cliff
TASKS = 3000


def run(policy, overload_limit, label: str) -> dict:
    engine = Engine()
    rng = RngRegistry(seed=77)
    coordinator = Coordinator(
        engine=engine,
        policy=policy,
        regions=[Region(AREA.lat_min, AREA.lat_max, AREA.lon_min, AREA.lon_max)],
        rng=rng,
        overload_queue_limit=overload_limit,
    )
    population = generate_population(
        rng.stream("population"), PopulationConfig(size=WORKERS), region=AREA
    )
    for profile, behavior in population:
        coordinator.add_worker(profile, behavior)

    task_rng = rng.stream(STREAM_TASKS)

    def submit(_payload) -> None:
        coordinator.submit_task(
            Task(
                latitude=float(task_rng.uniform(AREA.lat_min, AREA.lat_max - 1e-9)),
                longitude=float(task_rng.uniform(AREA.lon_min, AREA.lon_max - 1e-9)),
                deadline=float(task_rng.uniform(60.0, 120.0)),
                category=TaskCategory.POI_SUGGESTION,
                submitted_at=engine.now,
            )
        )

    GeneratorProcess(
        engine,
        poisson_gaps(RATE, rng.stream(STREAM_ARRIVALS), TASKS),
        submit,
        kind=EventKind.TASK_ARRIVAL,
    )

    engine.run(until=TASKS / RATE + 400.0)
    summary = coordinator.aggregate_summary()
    summary["splits"] = coordinator.splits_performed
    summary["servers"] = len(coordinator.servers)
    summary["label"] = label
    return summary


def main() -> None:
    runs = [
        run(react_policy(), None, "REACT, single region"),
        run(greedy_policy(), None, "Greedy, single region"),
        run(greedy_policy(), 80, "Greedy, elastic regions (split at queue > 80)"),
    ]

    print(f"Assignment overload — {WORKERS} workers, {TASKS} tasks at {RATE}/s")
    print("-" * 70)
    for summary in runs:
        print(f"{summary['label']}:")
        print(f"  region servers at end:   {summary['servers']:.0f} "
              f"(splits: {summary['splits']:.0f})")
        print(f"  completed on time:       {summary.get('completed_on_time', 0):.0f}"
              f" / {summary.get('received', 0):.0f}"
              f" ({summary.get('on_time_fraction', 0.0):.1%})")
        print(f"  simulated matcher time:  "
              f"{summary.get('matcher_simulated_seconds', 0.0):.0f} s")
        print()
    print("Splitting shrinks each server's region graph, pulling Greedy's")
    print("O(V*E) batch latency back under the arrival rate (paper §V-D).")


if __name__ == "__main__":
    main()
