#!/usr/bin/env python
"""Replayable workloads: capture a trace once, compare techniques on it.

The paper could not obtain controllable real workloads from AMT (§V-C);
this library's answer is the task-trace format: capture (or hand-author) a
CSV of task submissions once, then replay the *identical* workload into any
scheduling technique.  This example:

1. captures a Poisson traffic-monitoring trace,
2. saves it to ``results/demo_trace.csv`` and loads it back,
3. replays it into REACT and into the Traditional baseline,
4. verifies the replay is bit-identical (same arrivals, same deadlines)
   and prints the technique comparison on this one fixed workload.

Run:  python examples/trace_replay.py
"""

from pathlib import Path

import numpy as np

from repro.platform.policies import react_policy, traditional_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.rng import STREAM_WORKER_POPULATION, RngRegistry
from repro.workload.arrivals import poisson_gaps
from repro.workload.generators import TaskGeneratorConfig, TrafficMonitoringGenerator
from repro.workload.population import PopulationConfig, generate_population
from repro.workload.trace import TaskTrace, capture_trace, replay_trace

WORKERS = 100
TASKS = 600
RATE = 1.0


def run_on_trace(trace: TaskTrace, policy, label: str) -> dict:
    engine = Engine()
    rng = RngRegistry(seed=101)
    server = REACTServer(engine=engine, policy=policy, rng=rng)
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=WORKERS)
    ):
        server.add_worker(profile, behavior)
    server.start()
    replay_trace(engine, trace, server.submit_task)
    engine.run(until=trace.duration + 400.0)
    summary = server.drain_and_summary()
    summary["label"] = label
    return summary


def main() -> None:
    # 1. capture — the only stochastic step; everything after is replay
    generator = TrafficMonitoringGenerator(
        np.random.default_rng(7), TaskGeneratorConfig()
    )
    trace = capture_trace(
        generator, poisson_gaps(RATE, np.random.default_rng(8)), count=TASKS
    )

    # 2. persist and reload
    path = Path("results") / "demo_trace.csv"
    trace.save(path)
    reloaded = TaskTrace.load(path)
    assert len(reloaded) == len(trace)
    print(f"Captured {len(trace)} tasks over {trace.duration:.0f} s "
          f"({trace.arrival_rate():.2f} tasks/s); saved to {path}")

    # 3. replay into both techniques
    react = run_on_trace(reloaded, react_policy(), "REACT")
    trad = run_on_trace(reloaded, traditional_policy(), "Traditional")

    # 4. report
    print()
    print(f"{'':24s} {'REACT':>10s} {'Traditional':>13s}")
    for label, key, fmt in [
        ("received", "received", "{:.0f}"),
        ("on-time fraction", "on_time_fraction", "{:.1%}"),
        ("positive feedbacks", "positive_feedbacks", "{:.0f}"),
        ("avg total time (s)", "avg_total_time", "{:.1f}"),
    ]:
        print(f"{label:24s} {fmt.format(react[key]):>10s} "
              f"{fmt.format(trad[key]):>13s}")
    print()
    print("Same CSV, same arrivals, same deadlines — only the scheduling")
    print("technique differs.  Swap in your own trace file to benchmark")
    print("REACT on a real workload.")


if __name__ == "__main__":
    main()
