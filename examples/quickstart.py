#!/usr/bin/env python
"""Quickstart: schedule crowdsourcing tasks under deadlines with REACT.

Builds one REACT region server, registers a small crowd of workers (70% of
them accurate, half of them prone to dawdling — the paper's §V-C
population), submits a stream of tasks with 60-120 s deadlines, and prints
what happened: how many deadlines were met, how often the Eq. 2 monitor
rescued a task from a dawdler, and the average times.

Run:  python examples/quickstart.py
"""

from repro.model.task import Task, TaskCategory
from repro.platform.policies import react_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.rng import STREAM_TASKS, STREAM_WORKER_POPULATION, RngRegistry
from repro.workload.population import PopulationConfig, generate_population


def main() -> None:
    engine = Engine()
    rng = RngRegistry(seed=7)

    # The REACT policy: WBGM matching (1000 cycles), Eq. 3 edge pruning and
    # the Eq. 2 reassignment monitor at the paper's 10% threshold.
    server = REACTServer(engine=engine, policy=react_policy(), rng=rng)

    # A §V-C worker population: unique 1-20 s execution windows, 50% chance
    # of delaying/abandoning any given task, 70% with quality above 0.5.
    population = generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=40)
    )
    for profile, behavior in population:
        server.add_worker(profile, behavior)
    server.start()

    # Submit 240 traffic-style tasks, one every two simulated seconds.
    task_rng = rng.stream(STREAM_TASKS)
    for i in range(240):
        engine.schedule_at(
            2.0 * i,
            kind=EventKind.TASK_ARRIVAL,
            callback=lambda event: server.submit_task(
                Task(
                    latitude=0.0,
                    longitude=0.0,
                    deadline=float(task_rng.uniform(60.0, 120.0)),
                    category=TaskCategory.TRAFFIC_MONITORING,
                    description="Is the road ahead congested?",
                    submitted_at=engine.now,
                )
            ),
        )

    engine.run(until=2.0 * 240 + 300.0)  # all arrivals + drain time
    server.stop()

    summary = server.drain_and_summary()
    print("REACT quickstart — 40 workers, 240 tasks, 60-120 s deadlines")
    print("-" * 60)
    print(f"tasks received:          {summary['received']:.0f}")
    print(f"completed on time:       {summary['completed_on_time']:.0f} "
          f"({summary['on_time_fraction']:.1%})")
    print(f"positive feedbacks:      {summary['positive_feedbacks']:.0f}")
    print(f"Eq. 2 rescues:           {summary['withdrawals']:.0f}")
    print(f"expiry pull-backs:       {summary['expiry_returns']:.0f}")
    print(f"avg worker time:         {summary['avg_worker_time']:.1f} s")
    print(f"avg total time:          {summary['avg_total_time']:.1f} s")
    print(f"matching batches:        {summary['batches']:.0f}")


if __name__ == "__main__":
    main()
