#!/usr/bin/env python
"""The §III-C pricing extension: reward-range edge filtering.

"If the reward_j of task_j does not meet the reward range demands of the
worker_i the respective (worker_i, task_j) edge would not be instantiated."

This example gives every worker a declared acceptable-reward range and
submits a mixed workload of cheap ($0.02) and premium ($0.15) tasks.  It
shows, straight from the assignment-graph builder's report, how many edges
the pricing filter removes, and then runs the full platform to show that
picky (premium-only) workers never end up executing cheap tasks.

Run:  python examples/reward_pricing.py
"""

import numpy as np

from repro.core.deadline import DeadlineEstimator
from repro.core.weights import AccuracyWeight
from repro.graph.builders import AssignmentGraphBuilder, RewardRange
from repro.model.task import Task, TaskCategory
from repro.model.worker import WorkerBehavior, WorkerProfile
from repro.platform.policies import react_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.rng import RngRegistry

N_PICKY = 10      # workers demanding >= $0.10
N_FLEXIBLE = 10   # workers accepting anything
CHEAP, PREMIUM = 0.02, 0.15


def graph_level_demo() -> None:
    """Show the filter acting inside graph construction."""
    workers = [WorkerProfile(worker_id=i) for i in range(4)]
    for w in workers:
        w.assignment_count = 5  # no cold-start boost; weights from history
        for _ in range(5):
            w.record_completion(3.0, TaskCategory.GENERIC, True)
    ranges = {
        0: RewardRange(low=0.10),          # premium only
        1: RewardRange(low=0.10),
        2: RewardRange(),                  # anything
        # worker 3 declared no range -> anything
    }
    tasks = [
        Task(latitude=0, longitude=0, deadline=90, reward=CHEAP),
        Task(latitude=0, longitude=0, deadline=90, reward=PREMIUM),
    ]
    builder = AssignmentGraphBuilder(
        weight_function=AccuracyWeight(),
        estimator=DeadlineEstimator(min_history=3),
        edge_probability_bound=0.1,
        reward_ranges=ranges,
    )
    graph, report = builder.build(workers, tasks, now=0.0)
    print("Graph-construction view")
    print(f"  candidate edges:        {report.candidate_edges}")
    print(f"  pruned by reward range: {report.pruned_by_reward}")
    print(f"  edges kept:             {report.kept_edges}")
    cheap_edges = graph.edges_of_task(0)
    print(f"  workers connected to the $%.2f task: "
          % CHEAP + str(sorted(graph.edge_workers[cheap_edges].tolist())))


def platform_level_demo() -> None:
    """Run the full platform with reward ranges enforced end to end."""
    engine = Engine()
    rng = RngRegistry(seed=5)
    reward_ranges = {i: RewardRange(low=0.10) for i in range(N_PICKY)}
    server = REACTServer(
        engine=engine,
        policy=react_policy(batch_threshold=1),
        rng=rng,
        reward_ranges=reward_ranges,
    )
    behavior = WorkerBehavior(
        min_time=2.0, max_time=6.0, quality=0.9, delay_probability=0.0
    )
    for i in range(N_PICKY + N_FLEXIBLE):
        server.add_worker(WorkerProfile(worker_id=i), behavior)
    server.start()

    reward_of_task: dict[int, float] = {}
    task_rng = np.random.default_rng(3)
    for i in range(120):
        reward = CHEAP if task_rng.random() < 0.5 else PREMIUM

        def submit(event, reward=reward):
            task = Task(
                latitude=0, longitude=0, deadline=90.0, reward=reward,
                submitted_at=engine.now,
            )
            reward_of_task[task.task_id] = reward
            server.submit_task(task)

        engine.schedule_at(1.5 * i, EventKind.TASK_ARRIVAL, submit)

    engine.run(until=1.5 * 120 + 200.0)

    picky_cheap = sum(
        1
        for o in server.metrics.outcomes
        if o.final_worker is not None
        and o.final_worker < N_PICKY
        and reward_of_task[o.task_id] == CHEAP
    )
    picky_total = sum(
        1
        for o in server.metrics.outcomes
        if o.final_worker is not None and o.final_worker < N_PICKY
    )
    print()
    print("Platform view")
    print(f"  tasks completed:                    {server.metrics.completed}")
    print(f"  executions by premium-only workers: {picky_total}")
    print(f"  ... of which were cheap tasks:      {picky_cheap}  (must be 0)")
    assert picky_cheap == 0, "pricing filter violated"


if __name__ == "__main__":
    graph_level_demo()
    platform_level_demo()
