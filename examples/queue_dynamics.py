#!/usr/bin/env python
"""Inside the Fig. 5 collapse: watching the queues.

The paper explains Greedy's end-to-end failure as queueing — "the matching
takes too long, causing a lot of queueing for the tasks that need to be
processed. Hence, when the tasks are eventually assigned to a worker they
have already expired" — but never shows the queues.  This example attaches
a :class:`~repro.stats.timeline.TimelineRecorder` to a REACT server and a
Greedy server running the same workload and prints the unassigned-queue and
matcher-busy time series side by side: REACT's queue stays near the batch
threshold while Greedy's runs away, exactly the predicted mechanism.

Also writes the raw series to ``results/queue_dynamics_<policy>.csv`` for
external plotting.

Run:  python examples/queue_dynamics.py
"""

from pathlib import Path

from repro.experiments.export import export_timeline
from repro.model.task import Task, TaskCategory
from repro.platform.cost import PaperCalibratedCost
from repro.platform.policies import greedy_policy, react_policy
from repro.platform.server import REACTServer
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess
from repro.sim.rng import STREAM_TASKS, STREAM_WORKER_POPULATION, RngRegistry
from repro.stats.summaries import format_table
from repro.stats.timeline import TimelineRecorder, summarize_timeline
from repro.workload.arrivals import deterministic_gaps
from repro.workload.population import PopulationConfig, generate_population

WORKERS = 750
RATE = 9.375
TASKS = 5000
SAMPLE_EVERY = 30.0


def run(policy, label: str):
    engine = Engine()
    rng = RngRegistry(seed=42)
    server = REACTServer(
        engine=engine,
        policy=policy,
        rng=rng,
        cost_model=PaperCalibratedCost(batch_overhead=0.1),
    )
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=WORKERS)
    ):
        server.add_worker(profile, behavior)
    server.start()
    recorder = TimelineRecorder(engine, server, period=SAMPLE_EVERY)

    task_rng = rng.stream(STREAM_TASKS)

    def submit(_):
        server.submit_task(
            Task(
                latitude=0.0, longitude=0.0,
                deadline=float(task_rng.uniform(60.0, 120.0)),
                category=TaskCategory.TRAFFIC_MONITORING,
                submitted_at=engine.now,
            )
        )

    GeneratorProcess(
        engine, deterministic_gaps(RATE, TASKS), submit, kind=EventKind.TASK_ARRIVAL
    )
    engine.run(until=TASKS / RATE + 300.0)
    recorder.stop()
    return server, recorder.timeline, label


def main() -> None:
    runs = [run(react_policy(), "react"), run(greedy_policy(), "greedy")]

    print(f"Queue dynamics — {WORKERS} workers, {TASKS} tasks at {RATE}/s")
    print("(unassigned queue length and cumulative matcher busy-seconds,")
    print(f" sampled every {SAMPLE_EVERY:.0f} simulated seconds)\n")

    react_tl, greedy_tl = runs[0][1], runs[1][1]
    rows = []
    for r_sample, g_sample in zip(react_tl.samples, greedy_tl.samples):
        rows.append(
            (
                f"{r_sample.time:.0f}",
                r_sample.unassigned,
                f"{r_sample.matcher_busy_seconds:.0f}",
                g_sample.unassigned,
                f"{g_sample.matcher_busy_seconds:.0f}",
            )
        )
    print(
        format_table(
            ["t (s)", "react queue", "react busy_s", "greedy queue", "greedy busy_s"],
            rows[:: max(1, len(rows) // 18)],
        )
    )

    print()
    for server, timeline, label in runs:
        summary = summarize_timeline(timeline)
        on_time = server.metrics.on_time_fraction
        print(f"{label:8s} peak queue {summary['peak_unassigned']:5.0f}   "
              f"on-time {on_time:.1%}")
        out = Path("results") / f"queue_dynamics_{label}.csv"
        export_timeline(timeline, out)
        print(f"         series written to {out}")


if __name__ == "__main__":
    main()
