#!/usr/bin/env python
"""City-scale traffic monitoring with multi-region REACT servers.

The paper's motivating application (§I, §V-C case study): requesters ask
"is road X congested right now?" and answers are only useful for a minute
or two.  This example decomposes a city into a 2x2 grid of regions — each
with its own REACT server, as in Figure 1 of the paper — spreads a crowd of
mobile workers over the city, and streams location-tagged tasks to the
coordinator, which routes each to the server owning its coordinates.

It then reruns the identical workload under the Traditional (AMT-like)
policy and prints the side-by-side outcome — the Fig. 5/6 comparison on a
geographic workload.

Run:  python examples/traffic_monitoring.py
"""

from repro.model.region import RegionGrid
from repro.model.task import Task, TaskCategory
from repro.platform.coordinator import Coordinator
from repro.platform.policies import react_policy, traditional_policy
from repro.sim.engine import Engine
from repro.sim.events import EventKind
from repro.sim.process import GeneratorProcess
from repro.sim.rng import (
    STREAM_ARRIVALS,
    STREAM_TASKS,
    STREAM_WORKER_POPULATION,
    RngRegistry,
)
from repro.workload.arrivals import poisson_gaps
from repro.workload.population import PopulationConfig, generate_population

# A small city: ~11 km x 11 km around Athens, split into 2x2 regions.
CITY = dict(lat_min=37.93, lat_max=38.03, lon_min=23.67, lon_max=23.77)
WORKERS = 120
TASKS = 500
RATE = 1.25  # tasks/second city-wide


def run_city(policy, label: str) -> dict:
    engine = Engine()
    rng = RngRegistry(seed=2024)
    grid = RegionGrid(**CITY, rows=2, cols=2)
    coordinator = Coordinator(
        engine=engine, policy=policy, regions=list(grid.regions), rng=rng
    )

    # Mobile workers spread uniformly over the city; each registers with
    # the server owning his location (§IV-A).
    population = generate_population(
        rng.stream(STREAM_WORKER_POPULATION),
        PopulationConfig(size=WORKERS),
        region=grid.regions[0],  # placeholder; scatter below
    )
    scatter = rng.stream("scatter")
    for profile, behavior in population:
        profile.latitude = float(scatter.uniform(CITY["lat_min"], CITY["lat_max"]))
        profile.longitude = float(scatter.uniform(CITY["lon_min"], CITY["lon_max"]))
        coordinator.add_worker(profile, behavior)

    # Poisson stream of congestion queries at random city locations.
    task_rng = rng.stream(STREAM_TASKS)

    def submit(_payload) -> None:
        lat = float(task_rng.uniform(CITY["lat_min"], CITY["lat_max"]))
        lon = float(task_rng.uniform(CITY["lon_min"], CITY["lon_max"]))
        coordinator.submit_task(
            Task(
                latitude=lat,
                longitude=lon,
                deadline=float(task_rng.uniform(60.0, 120.0)),
                category=TaskCategory.TRAFFIC_MONITORING,
                description=f"Is the road at ({lat:.4f}, {lon:.4f}) congested?",
                submitted_at=engine.now,
            )
        )

    GeneratorProcess(
        engine,
        poisson_gaps(RATE, rng.stream(STREAM_ARRIVALS), TASKS),
        submit,
        kind=EventKind.TASK_ARRIVAL,
    )

    engine.run(until=TASKS / RATE + 400.0)
    summary = coordinator.aggregate_summary()
    summary["label"] = label
    return summary


def main() -> None:
    react = run_city(react_policy(), "REACT")
    traditional = run_city(traditional_policy(), "Traditional (AMT-like)")

    print(f"Traffic monitoring — {WORKERS} workers, {TASKS} tasks, 2x2 regions")
    print("-" * 68)
    header = f"{'':28s} {'REACT':>12s} {'Traditional':>14s}"
    print(header)
    rows = [
        ("tasks received", "received", "{:.0f}"),
        ("completed on time", "completed_on_time", "{:.0f}"),
        ("on-time fraction", "on_time_fraction", "{:.1%}"),
        ("positive feedbacks", "positive_feedbacks", "{:.0f}"),
        ("Eq. 2 rescues", "withdrawals", "{:.0f}"),
        ("avg worker time (s)", "avg_worker_time", "{:.1f}"),
        ("avg total time (s)", "avg_total_time", "{:.1f}"),
    ]
    for label, key, fmt in rows:
        r = react.get(key, 0) or 0
        t = traditional.get(key, 0) or 0
        print(f"{label:28s} {fmt.format(r):>12s} {fmt.format(t):>14s}")

    gain = react["completed_on_time"] / max(traditional["completed_on_time"], 1) - 1
    print("-" * 68)
    print(f"REACT met the deadlines of {gain:+.0%} more tasks than the "
          "AMT-like baseline on this workload.")


if __name__ == "__main__":
    main()
