#!/usr/bin/env python
"""Compare the WBGM algorithms head-to-head on one assignment problem.

A miniature of the paper's Figs. 3-4: build a full worker×task graph with
quality weights, run every matcher in the library — REACT (Algorithm 1) at
two cycle budgets, the Metropolis baseline, the paper's per-task Greedy,
the sorted-greedy variant, uniform (AMT-like) assignment, and the Hungarian
optimum — and print output weight, optimality, matched tasks and wall-clock.

Run:  python examples/matching_comparison.py [workers] [tasks]
"""

import sys
import time

import numpy as np

from repro.core.matching import available_matchers, create_matcher
from repro.graph.bipartite import BipartiteGraph
from repro.stats.summaries import format_table


def main() -> None:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 400
    rng = np.random.default_rng(99)
    graph = BipartiteGraph.full(rng.random((n_workers, n_tasks)))

    print(f"Full bipartite graph: {n_workers} workers x {n_tasks} tasks "
          f"({graph.n_edges} edges), weights U[0,1]")
    print(f"registered matchers: {', '.join(available_matchers())}")
    print()

    optimal = create_matcher("hungarian").match(graph)
    configurations = [
        ("hungarian", {}),
        ("greedy", {}),
        ("sorted-greedy", {}),
        ("react", dict(cycles=1000)),
        ("react", dict(cycles=3000)),
        ("react", dict(adaptive_cycles=True, cycles=1000)),
        ("metropolis", dict(cycles=1000)),
        ("metropolis", dict(cycles=3000)),
        ("uniform", {}),
    ]
    rows = []
    for name, kwargs in configurations:
        matcher = create_matcher(name, **kwargs)
        start = time.perf_counter()
        result = matcher.match(graph, np.random.default_rng(1))
        wall = time.perf_counter() - start
        result.validate()
        label = name
        if kwargs.get("adaptive_cycles"):
            label += "@adaptive"
        elif "cycles" in kwargs:
            label += f"@{kwargs['cycles']}"
        rows.append(
            (
                label,
                f"{result.total_weight:.2f}",
                f"{result.total_weight / optimal.total_weight:.1%}",
                result.size,
                f"{wall * 1e3:.1f}",
            )
        )

    print(format_table(["algorithm", "output", "optimality", "matched", "wall_ms"], rows))
    print()
    print("Paper shapes to look for: greedy ~ optimal on full graphs;")
    print("react > metropolis at equal cycles; uniform far behind;")
    print("the adaptive-cycles extension closes the gap to greedy.")


if __name__ == "__main__":
    main()
