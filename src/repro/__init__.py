"""REACT: real-time crowdsourcing task scheduling.

A full reproduction of *"Crowdsourcing under Real-Time Constraints"*
(Boutsis & Kalogeraki, IPPS 2013): the REACT middleware — online weighted
bipartite graph matching with a probabilistic (power-law) deadline model —
together with the Metropolis/Greedy/Traditional baselines, a discrete-event
simulation substrate, workload generators, and harnesses regenerating every
figure of the paper's evaluation.

Quick start::

    from repro import EndToEndConfig, run_comparison

    results = run_comparison(EndToEndConfig(n_workers=150,
                                            arrival_rate=1.875,
                                            n_tasks=1000))
    for name, run in results.items():
        print(name, run.summary["on_time_fraction"])

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the per-figure reproduction index.
"""

from .chaos import FaultInjector, FaultSchedule
from .core.deadline import DeadlineEstimator
from .core.matching import (
    GreedyMatcher,
    HungarianMatcher,
    MatchingResult,
    MetropolisMatcher,
    ReactMatcher,
    ReactParameters,
    UniformMatcher,
    create_matcher,
)
from .core.weights import AccuracyWeight, DistanceWeight, make_weight_function
from .experiments.config import (
    EndToEndConfig,
    MatchingSweepConfig,
    ScalabilityConfig,
)
from .experiments.endtoend import run_comparison, run_endtoend
from .experiments.matching_bench import run_matching_sweep
from .experiments.scalability import run_scalability
from .graph.bipartite import BipartiteGraph
from .model.task import Task, TaskCategory
from .model.worker import WorkerBehavior, WorkerProfile
from .platform.policies import (
    SchedulingPolicy,
    greedy_policy,
    react_policy,
    traditional_policy,
)
from .platform.resilience import ResilienceConfig
from .platform.server import REACTServer
from .sim.engine import Engine
from .sim.rng import RngRegistry
from .stats.powerlaw import PowerLawFit, fit_power_law

__version__ = "1.0.0"

__all__ = [
    "DeadlineEstimator",
    "FaultInjector",
    "FaultSchedule",
    "ResilienceConfig",
    "GreedyMatcher",
    "HungarianMatcher",
    "MatchingResult",
    "MetropolisMatcher",
    "ReactMatcher",
    "ReactParameters",
    "UniformMatcher",
    "create_matcher",
    "AccuracyWeight",
    "DistanceWeight",
    "make_weight_function",
    "EndToEndConfig",
    "MatchingSweepConfig",
    "ScalabilityConfig",
    "run_comparison",
    "run_endtoend",
    "run_matching_sweep",
    "run_scalability",
    "BipartiteGraph",
    "Task",
    "TaskCategory",
    "WorkerBehavior",
    "WorkerProfile",
    "SchedulingPolicy",
    "greedy_policy",
    "react_policy",
    "traditional_policy",
    "REACTServer",
    "Engine",
    "RngRegistry",
    "PowerLawFit",
    "fit_power_law",
    "__version__",
]
