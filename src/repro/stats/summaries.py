"""Series utilities: down-sampling, cumulative transforms, ASCII rendering.

The experiment harnesses print the same series the paper's figures plot;
these helpers keep that rendering code out of the platform modules.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def downsample(series: Sequence[Tuple[float, float]], points: int) -> List[Tuple[float, float]]:
    """Reduce a series to at most ``points`` entries, keeping the endpoints.

    Uses evenly spaced index selection — adequate for the monotone cumulative
    curves of Figs. 5-6 where the shape, not every sample, matters.
    """
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    if len(series) <= points:
        return list(series)
    idx = np.linspace(0, len(series) - 1, points).round().astype(int)
    idx = np.unique(idx)
    return [series[i] for i in idx]


def cumulative_fraction(series: Sequence[Tuple[int, int]]) -> List[Tuple[int, float]]:
    """Turn (received, count) pairs into (received, count/received)."""
    return [(x, (y / x if x else 0.0)) for x, y in series]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width ASCII table (no external deps)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, series: Sequence[Tuple[float, float]], points: int = 20
) -> str:
    """Render a down-sampled two-column series with a caption line."""
    sampled = downsample(series, points) if len(series) > points else list(series)
    body = format_table(["x", name], [(x, y) for x, y in sampled])
    return f"# series: {name} ({len(series)} samples, showing {len(sampled)})\n{body}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; standard for summarising speedup ratios."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
