"""Metrics collection for the end-to-end experiments (Figs. 5-8).

The collector observes every task lifecycle event emitted by the platform
and accumulates exactly the series the paper plots:

* Fig. 5 — cumulative count of tasks finished *before their deadline*,
  indexed by the running count of received tasks;
* Fig. 6 — cumulative count of *positive feedbacks*, same index;
* Fig. 7 — average execution time at the final worker, per technique;
* Fig. 8 — average total time (submission → completion, including queueing
  and any reassignments), per technique.

It also keeps bookkeeping (received / assigned / reassigned / completed /
expired counters) whose conservation laws the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..obs.registry import NULL_INSTRUMENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry


@dataclass
class TaskOutcome:
    """Final record of one task's journey through the platform."""

    task_id: int
    submitted_at: float
    completed_at: Optional[float]
    deadline: float
    met_deadline: bool
    positive_feedback: bool
    assignments: int
    final_worker: Optional[int]
    worker_time: Optional[float]
    total_time: Optional[float]


@dataclass
class MetricsCollector:
    """Accumulates task outcomes and exposes the paper's figure series."""

    received: int = 0
    assigned: int = 0
    reassignments: int = 0
    completed: int = 0
    completed_on_time: int = 0
    expired_unassigned: int = 0
    #: running tasks pulled back by the AMT deadline-expiry rule (§II)
    expiry_returns: int = 0
    positive_feedbacks: int = 0
    matcher_invocations: int = 0
    matcher_simulated_seconds: float = 0.0

    # Chaos / resilience accounting (src/repro/chaos, platform/resilience).
    #: fault activations performed by a FaultInjector
    chaos_faults_injected: int = 0
    #: executions flipped to walk-aways by an AbandonmentWave
    chaos_abandonments: int = 0
    #: assignments converted to no-shows by a NoShowFault
    chaos_no_shows: int = 0
    #: profile observations distorted by a StaleProfileFault
    chaos_corrupted_observations: int = 0
    #: extra matcher latency charged by MatcherStallFaults
    matcher_stall_seconds: float = 0.0
    #: assigned tasks orphaned (re-queued) by region-server blackouts
    blackout_orphaned: int = 0
    #: orphaned tasks still queued — and therefore re-adopted — at recovery
    readopted_tasks: int = 0
    #: withdrawn tasks parked by the retry exponential backoff
    deferred_retries: int = 0
    #: tasks retired because they exhausted the per-task reassignment budget
    reassignment_budget_exhausted: int = 0
    #: degraded-mode (fallback matcher) engagements
    degraded_mode_switches: int = 0
    #: total simulated seconds spent in degraded mode
    degraded_mode_seconds: float = 0.0

    outcomes: List[TaskOutcome] = field(default_factory=list)
    #: (received_so_far, on_time_so_far) appended at every completion — Fig. 5.
    deadline_series: List[tuple[int, int]] = field(default_factory=list)
    #: (received_so_far, positive_so_far) appended at every completion — Fig. 6.
    feedback_series: List[tuple[int, int]] = field(default_factory=list)

    # Observability instrument handles (repro.obs).  Plain class attributes,
    # not dataclass fields: without a bound registry every record_* call
    # lands on the shared no-op instrument, so the unbound hot path costs
    # one empty method call.  ``bind_registry`` swaps in live instruments.
    _obs_received = NULL_INSTRUMENT
    _obs_assigned = NULL_INSTRUMENT
    _obs_reassignments = NULL_INSTRUMENT
    _obs_completed = NULL_INSTRUMENT
    _obs_on_time = NULL_INSTRUMENT
    _obs_feedback = NULL_INSTRUMENT
    _obs_expired = NULL_INSTRUMENT
    _obs_matcher_runs = NULL_INSTRUMENT
    _obs_matcher_seconds = NULL_INSTRUMENT
    _obs_total_time = NULL_INSTRUMENT
    _obs_worker_time = NULL_INSTRUMENT

    #: Counters the platform bumps as bare attributes (no record_* method);
    #: synced into same-named gauges by a registry collect hook at snapshot
    #: time, so exported telemetry still matches this collector exactly.
    ATTRIBUTE_COUNTERS = (
        "expiry_returns",
        "chaos_faults_injected",
        "chaos_abandonments",
        "chaos_no_shows",
        "chaos_corrupted_observations",
        "matcher_stall_seconds",
        "blackout_orphaned",
        "readopted_tasks",
        "deferred_retries",
        "reassignment_budget_exhausted",
        "degraded_mode_switches",
        "degraded_mode_seconds",
    )

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror this collector's bookkeeping into a live metrics registry.

        Counter values are fast-forwarded to the collector's current state,
        so binding is exact no matter when it happens (in practice the
        server binds at construction, before any event fires).
        """
        self._obs_received = registry.counter(
            "react_tasks_received_total", "Tasks submitted by requesters"
        )
        self._obs_assigned = registry.counter(
            "react_tasks_assigned_total", "Assignments published (incl. reassignments)"
        )
        self._obs_reassignments = registry.counter(
            "react_task_reassignments_total", "Assignments beyond each task's first"
        )
        self._obs_completed = registry.counter(
            "react_tasks_completed_total", "Tasks completed by a worker"
        )
        self._obs_on_time = registry.counter(
            "react_tasks_completed_on_time_total", "Completions before the deadline"
        )
        self._obs_feedback = registry.counter(
            "react_positive_feedbacks_total", "Completions earning positive feedback"
        )
        self._obs_expired = registry.counter(
            "react_tasks_expired_unassigned_total",
            "Tasks whose deadline lapsed while still queued",
        )
        self._obs_matcher_runs = registry.counter(
            "react_matcher_runs_total", "Matching batches published"
        )
        self._obs_matcher_seconds = registry.counter(
            "react_matcher_simulated_seconds_total",
            "Simulated matcher latency charged across batches",
        )
        self._obs_total_time = registry.histogram(
            "react_task_total_time_seconds",
            "Submission-to-completion time of completed tasks",
        )
        self._obs_worker_time = registry.histogram(
            "react_task_worker_time_seconds",
            "Execution time at the final worker of completed tasks",
        )
        self._obs_received.inc(self.received)
        self._obs_assigned.inc(self.assigned)
        self._obs_reassignments.inc(self.reassignments)
        self._obs_completed.inc(self.completed)
        self._obs_on_time.inc(self.completed_on_time)
        self._obs_feedback.inc(self.positive_feedbacks)
        self._obs_expired.inc(self.expired_unassigned)
        self._obs_matcher_runs.inc(self.matcher_invocations)
        self._obs_matcher_seconds.inc(self.matcher_simulated_seconds)

        gauges = {
            name: registry.gauge(f"react_{name}", f"MetricsCollector.{name}")
            for name in self.ATTRIBUTE_COUNTERS
        }

        def _sync() -> None:
            for name, gauge in gauges.items():
                gauge.set(getattr(self, name))

        registry.add_collect_hook(_sync)

    # ----------------------------------------------------------- recording
    def record_received(self) -> None:
        self.received += 1
        self._obs_received.inc()

    def record_assignment(self, first: bool) -> None:
        self.assigned += 1
        self._obs_assigned.inc()
        if not first:
            self.reassignments += 1
            self._obs_reassignments.inc()

    def record_matcher_run(self, simulated_seconds: float) -> None:
        self.matcher_invocations += 1
        self.matcher_simulated_seconds += simulated_seconds
        self._obs_matcher_runs.inc()
        self._obs_matcher_seconds.inc(simulated_seconds)

    def record_completion(self, outcome: TaskOutcome) -> None:
        self.completed += 1
        self._obs_completed.inc()
        if outcome.met_deadline:
            self.completed_on_time += 1
            self._obs_on_time.inc()
        if outcome.positive_feedback:
            self.positive_feedbacks += 1
            self._obs_feedback.inc()
        if outcome.total_time is not None:
            self._obs_total_time.observe(outcome.total_time)
        if outcome.worker_time is not None:
            self._obs_worker_time.observe(outcome.worker_time)
        self.outcomes.append(outcome)
        self.deadline_series.append((self.received, self.completed_on_time))
        self.feedback_series.append((self.received, self.positive_feedbacks))

    def record_expired_unassigned(self, outcome: TaskOutcome) -> None:
        """A task whose deadline lapsed while still queued (never completed)."""
        self.expired_unassigned += 1
        self._obs_expired.inc()
        self.outcomes.append(outcome)

    # ------------------------------------------------------------ summary
    @property
    def on_time_fraction(self) -> float:
        """Fraction of *received* tasks that finished before their deadline
        (the y-axis of Figs. 9)."""
        return self.completed_on_time / self.received if self.received else 0.0

    @property
    def positive_feedback_fraction(self) -> float:
        """Fraction of received tasks earning positive feedback (Fig. 10)."""
        return self.positive_feedbacks / self.received if self.received else 0.0

    def average_worker_time(self) -> Optional[float]:
        """Fig. 7: mean execution time at the final worker, completed tasks."""
        times = [o.worker_time for o in self.outcomes if o.worker_time is not None]
        return float(np.mean(times)) if times else None

    def average_total_time(self) -> Optional[float]:
        """Fig. 8: mean submission→completion time, completed tasks."""
        times = [o.total_time for o in self.outcomes if o.total_time is not None]
        return float(np.mean(times)) if times else None

    def worker_time_percentiles(self, qs: tuple[float, ...] = (50, 90, 99)) -> Dict[float, float]:
        times = [o.worker_time for o in self.outcomes if o.worker_time is not None]
        if not times:
            return {}
        values = np.percentile(times, qs)
        return dict(zip(qs, (float(v) for v in values)))

    def total_time_percentiles(self, qs: tuple[float, ...] = (50, 95, 99)) -> Dict[float, float]:
        """Submission→completion latency percentiles (retainer comparison)."""
        times = [o.total_time for o in self.outcomes if o.total_time is not None]
        if not times:
            return {}
        values = np.percentile(times, qs)
        return dict(zip(qs, (float(v) for v in values)))

    def check_conservation(self) -> None:
        """Invariant: every received task is completed, expired, or in flight.

        Raises ``AssertionError`` when the accounting does not balance; the
        integration suite calls this after every simulated run.
        """
        finished = self.completed + self.expired_unassigned
        if finished > self.received:
            raise AssertionError(
                f"accounting violation: finished={finished} > received={self.received}"
            )
        if self.completed_on_time > self.completed:
            raise AssertionError("on-time count exceeds completed count")
        if self.positive_feedbacks > self.completed:
            raise AssertionError("positive feedbacks exceed completed count")
        if len(self.deadline_series) != self.completed:
            raise AssertionError("deadline series length mismatch")

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers, used by reporting and EXPERIMENTS.md."""
        return {
            "received": self.received,
            "completed": self.completed,
            "completed_on_time": self.completed_on_time,
            "on_time_fraction": round(self.on_time_fraction, 4),
            "positive_feedbacks": self.positive_feedbacks,
            "positive_feedback_fraction": round(self.positive_feedback_fraction, 4),
            "reassignments": self.reassignments,
            "expired_unassigned": self.expired_unassigned,
            "expiry_returns": self.expiry_returns,
            "avg_worker_time": _round_opt(self.average_worker_time()),
            "avg_total_time": _round_opt(self.average_total_time()),
            "matcher_invocations": self.matcher_invocations,
            "matcher_simulated_seconds": round(self.matcher_simulated_seconds, 3),
            "chaos_faults_injected": self.chaos_faults_injected,
            "chaos_abandonments": self.chaos_abandonments,
            "chaos_no_shows": self.chaos_no_shows,
            "chaos_corrupted_observations": self.chaos_corrupted_observations,
            "matcher_stall_seconds": round(self.matcher_stall_seconds, 3),
            "blackout_orphaned": self.blackout_orphaned,
            "readopted_tasks": self.readopted_tasks,
            "deferred_retries": self.deferred_retries,
            "reassignment_budget_exhausted": self.reassignment_budget_exhausted,
            "degraded_mode_switches": self.degraded_mode_switches,
            "degraded_mode_seconds": round(self.degraded_mode_seconds, 3),
        }


def _round_opt(value: Optional[float], digits: int = 3) -> Optional[float]:
    return None if value is None else round(value, digits)
