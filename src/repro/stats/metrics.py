"""Metrics collection for the end-to-end experiments (Figs. 5-8).

The collector observes every task lifecycle event emitted by the platform
and accumulates exactly the series the paper plots:

* Fig. 5 — cumulative count of tasks finished *before their deadline*,
  indexed by the running count of received tasks;
* Fig. 6 — cumulative count of *positive feedbacks*, same index;
* Fig. 7 — average execution time at the final worker, per technique;
* Fig. 8 — average total time (submission → completion, including queueing
  and any reassignments), per technique.

It also keeps bookkeeping (received / assigned / reassigned / completed /
expired counters) whose conservation laws the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class TaskOutcome:
    """Final record of one task's journey through the platform."""

    task_id: int
    submitted_at: float
    completed_at: Optional[float]
    deadline: float
    met_deadline: bool
    positive_feedback: bool
    assignments: int
    final_worker: Optional[int]
    worker_time: Optional[float]
    total_time: Optional[float]


@dataclass
class MetricsCollector:
    """Accumulates task outcomes and exposes the paper's figure series."""

    received: int = 0
    assigned: int = 0
    reassignments: int = 0
    completed: int = 0
    completed_on_time: int = 0
    expired_unassigned: int = 0
    #: running tasks pulled back by the AMT deadline-expiry rule (§II)
    expiry_returns: int = 0
    positive_feedbacks: int = 0
    matcher_invocations: int = 0
    matcher_simulated_seconds: float = 0.0

    # Chaos / resilience accounting (src/repro/chaos, platform/resilience).
    #: fault activations performed by a FaultInjector
    chaos_faults_injected: int = 0
    #: executions flipped to walk-aways by an AbandonmentWave
    chaos_abandonments: int = 0
    #: assignments converted to no-shows by a NoShowFault
    chaos_no_shows: int = 0
    #: profile observations distorted by a StaleProfileFault
    chaos_corrupted_observations: int = 0
    #: extra matcher latency charged by MatcherStallFaults
    matcher_stall_seconds: float = 0.0
    #: assigned tasks orphaned (re-queued) by region-server blackouts
    blackout_orphaned: int = 0
    #: orphaned tasks still queued — and therefore re-adopted — at recovery
    readopted_tasks: int = 0
    #: withdrawn tasks parked by the retry exponential backoff
    deferred_retries: int = 0
    #: tasks retired because they exhausted the per-task reassignment budget
    reassignment_budget_exhausted: int = 0
    #: degraded-mode (fallback matcher) engagements
    degraded_mode_switches: int = 0
    #: total simulated seconds spent in degraded mode
    degraded_mode_seconds: float = 0.0

    outcomes: List[TaskOutcome] = field(default_factory=list)
    #: (received_so_far, on_time_so_far) appended at every completion — Fig. 5.
    deadline_series: List[tuple[int, int]] = field(default_factory=list)
    #: (received_so_far, positive_so_far) appended at every completion — Fig. 6.
    feedback_series: List[tuple[int, int]] = field(default_factory=list)

    # ----------------------------------------------------------- recording
    def record_received(self) -> None:
        self.received += 1

    def record_assignment(self, first: bool) -> None:
        self.assigned += 1
        if not first:
            self.reassignments += 1

    def record_matcher_run(self, simulated_seconds: float) -> None:
        self.matcher_invocations += 1
        self.matcher_simulated_seconds += simulated_seconds

    def record_completion(self, outcome: TaskOutcome) -> None:
        self.completed += 1
        if outcome.met_deadline:
            self.completed_on_time += 1
        if outcome.positive_feedback:
            self.positive_feedbacks += 1
        self.outcomes.append(outcome)
        self.deadline_series.append((self.received, self.completed_on_time))
        self.feedback_series.append((self.received, self.positive_feedbacks))

    def record_expired_unassigned(self, outcome: TaskOutcome) -> None:
        """A task whose deadline lapsed while still queued (never completed)."""
        self.expired_unassigned += 1
        self.outcomes.append(outcome)

    # ------------------------------------------------------------ summary
    @property
    def on_time_fraction(self) -> float:
        """Fraction of *received* tasks that finished before their deadline
        (the y-axis of Figs. 9)."""
        return self.completed_on_time / self.received if self.received else 0.0

    @property
    def positive_feedback_fraction(self) -> float:
        """Fraction of received tasks earning positive feedback (Fig. 10)."""
        return self.positive_feedbacks / self.received if self.received else 0.0

    def average_worker_time(self) -> Optional[float]:
        """Fig. 7: mean execution time at the final worker, completed tasks."""
        times = [o.worker_time for o in self.outcomes if o.worker_time is not None]
        return float(np.mean(times)) if times else None

    def average_total_time(self) -> Optional[float]:
        """Fig. 8: mean submission→completion time, completed tasks."""
        times = [o.total_time for o in self.outcomes if o.total_time is not None]
        return float(np.mean(times)) if times else None

    def worker_time_percentiles(self, qs: tuple[float, ...] = (50, 90, 99)) -> Dict[float, float]:
        times = [o.worker_time for o in self.outcomes if o.worker_time is not None]
        if not times:
            return {}
        values = np.percentile(times, qs)
        return dict(zip(qs, (float(v) for v in values)))

    def check_conservation(self) -> None:
        """Invariant: every received task is completed, expired, or in flight.

        Raises ``AssertionError`` when the accounting does not balance; the
        integration suite calls this after every simulated run.
        """
        finished = self.completed + self.expired_unassigned
        if finished > self.received:
            raise AssertionError(
                f"accounting violation: finished={finished} > received={self.received}"
            )
        if self.completed_on_time > self.completed:
            raise AssertionError("on-time count exceeds completed count")
        if self.positive_feedbacks > self.completed:
            raise AssertionError("positive feedbacks exceed completed count")
        if len(self.deadline_series) != self.completed:
            raise AssertionError("deadline series length mismatch")

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers, used by reporting and EXPERIMENTS.md."""
        return {
            "received": self.received,
            "completed": self.completed,
            "completed_on_time": self.completed_on_time,
            "on_time_fraction": round(self.on_time_fraction, 4),
            "positive_feedbacks": self.positive_feedbacks,
            "positive_feedback_fraction": round(self.positive_feedback_fraction, 4),
            "reassignments": self.reassignments,
            "expired_unassigned": self.expired_unassigned,
            "expiry_returns": self.expiry_returns,
            "avg_worker_time": _round_opt(self.average_worker_time()),
            "avg_total_time": _round_opt(self.average_total_time()),
            "matcher_invocations": self.matcher_invocations,
            "matcher_simulated_seconds": round(self.matcher_simulated_seconds, 3),
            "chaos_faults_injected": self.chaos_faults_injected,
            "chaos_abandonments": self.chaos_abandonments,
            "chaos_no_shows": self.chaos_no_shows,
            "chaos_corrupted_observations": self.chaos_corrupted_observations,
            "matcher_stall_seconds": round(self.matcher_stall_seconds, 3),
            "blackout_orphaned": self.blackout_orphaned,
            "readopted_tasks": self.readopted_tasks,
            "deferred_retries": self.deferred_retries,
            "reassignment_budget_exhausted": self.reassignment_budget_exhausted,
            "degraded_mode_switches": self.degraded_mode_switches,
            "degraded_mode_seconds": round(self.degraded_mode_seconds, 3),
        }


def _round_opt(value: Optional[float], digits: int = 3) -> Optional[float]:
    return None if value is None else round(value, digits)
