"""Time-series instrumentation of a running REACT server.

The paper explains Fig. 5's Greedy collapse through *queueing* ("the
matching takes too long, causing a lot of queueing for the tasks") but
never shows the queues themselves.  :class:`TimelineRecorder` samples a
server's internal state on a fixed simulated-time grid — unassigned queue
length, tasks in execution, busy/available workers, trained workers,
cumulative matcher busy-time — producing the series that make the collapse
mechanism visible (see ``examples/queue_dynamics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..platform.server import REACTServer


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of server state at a simulated instant."""

    time: float
    unassigned: int
    executing: int
    busy_workers: int
    available_workers: int
    trained_workers: int
    completed: int
    completed_on_time: int
    expired_unassigned: int
    matcher_busy_seconds: float


@dataclass
class Timeline:
    """An ordered collection of samples with column accessors."""

    samples: List[TimelineSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def column(self, name: str) -> List[float]:
        """Extract one field across all samples (e.g. ``"unassigned"``)."""
        if not self.samples:
            return []
        if not hasattr(self.samples[0], name):
            raise KeyError(f"unknown timeline column {name!r}")
        return [getattr(s, name) for s in self.samples]

    def peak(self, name: str) -> float:
        values = self.column(name)
        if not values:
            raise ValueError("empty timeline")
        return max(values)

    def at(self, time: float) -> TimelineSample:
        """The latest sample at or before ``time``."""
        candidates = [s for s in self.samples if s.time <= time]
        if not candidates:
            raise ValueError(f"no sample at or before t={time}")
        return candidates[-1]

    def as_rows(self) -> List[Dict[str, float]]:
        """Dict rows (for CSV export / reporting)."""
        return [vars(s) | {} for s in self.samples]


class TimelineRecorder:
    """Samples a server's state every ``period`` simulated seconds."""

    def __init__(
        self,
        engine: Engine,
        server: "REACTServer",
        period: float = 10.0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._server = server
        self.timeline = Timeline()
        self._process = PeriodicProcess(
            engine, period=period, action=self._sample, kind=EventKind.CALLBACK,
            start=engine.now,
        )

    def _sample(self, now: float) -> None:
        server = self._server
        metrics = server.metrics
        available = len(server.profiling.available_workers())
        total_online = sum(1 for p in server.profiling if p.online)
        self.timeline.samples.append(
            TimelineSample(
                time=now,
                unassigned=server.task_management.unassigned_count,
                executing=server.task_management.assigned_count,
                busy_workers=total_online - available,
                available_workers=available,
                trained_workers=server.profiling.trained_count(
                    server.policy.min_history
                ),
                completed=metrics.completed,
                completed_on_time=metrics.completed_on_time,
                expired_unassigned=metrics.expired_unassigned,
                matcher_busy_seconds=metrics.matcher_simulated_seconds,
            )
        )

    def stop(self) -> None:
        self._process.stop()


def summarize_timeline(timeline: Timeline) -> Dict[str, float]:
    """Headline dynamics: peaks and end-state of the key series."""
    if not timeline.samples:
        return {}
    last = timeline.samples[-1]
    return {
        "samples": len(timeline),
        "peak_unassigned": timeline.peak("unassigned"),
        "peak_executing": timeline.peak("executing"),
        "peak_busy_workers": timeline.peak("busy_workers"),
        "final_completed": last.completed,
        "final_on_time": last.completed_on_time,
        "final_matcher_busy_seconds": round(last.matcher_busy_seconds, 1),
    }
