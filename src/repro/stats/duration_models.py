"""Execution-time distribution models for the deadline estimator.

The paper commits to a power law (§IV-B, citing Ipeirotis' AMT analysis via
Clauset-Shalizi-Newman) but a practitioner would reasonably ask whether the
tail model matters.  This module abstracts "a distribution fitted to a
worker's duration history" behind :class:`DurationModel` and provides three
interchangeable implementations:

* :class:`PowerLawFamily` — the paper's choice (returns
  :class:`repro.stats.powerlaw.PowerLawFit` instances);
* :class:`EmpiricalModel` — the nonparametric alternative: the history's
  own empirical CCDF with a configurable tail floor (without one, the CCDF
  hits exactly 0 at the max observation and Eq. 2 would fire the moment
  ``t`` exceeds the slowest recorded time — sometimes right, but brittle
  for short histories);
* :class:`LogNormalModel` — the usual parametric rival for heavy-ish
  human-latency data.

``ABL-MODEL`` (benchmarks/bench_ablation_model.py) runs the end-to-end
experiment under each and shows how much of REACT's advantage is the
*mechanism* (monitor + reassignment) versus the specific tail family.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Protocol, Sequence

import numpy as np

from .powerlaw import FitMethod, PowerLawFit, fit_power_law


class DurationModel(Protocol):
    """A fitted model of one worker's task-duration distribution.

    Structural: :class:`~repro.stats.powerlaw.PowerLawFit` satisfies it
    without inheriting (it predates this protocol), while the alternative
    families below subclass it explicitly and inherit the scalar helper.
    """

    def ccdf(self, k: np.ndarray) -> np.ndarray:
        """``Pr(Duration >= k)`` for an array of horizons."""
        ...  # pragma: no cover - protocol signature

    def ccdf_scalar(self, k: float) -> float:
        return float(self.ccdf(np.asarray([k], dtype=np.float64))[0])


class DurationModelFamily(abc.ABC):
    """Factory fitting a :class:`DurationModel` to a history."""

    name: str = "abstract"

    @abc.abstractmethod
    def fit(self, samples: Sequence[float]) -> DurationModel:
        """Fit to strictly positive duration samples (non-empty)."""


# --------------------------------------------------------------- power law
class PowerLawFamily(DurationModelFamily):
    """The paper's §IV-B model.

    Returns the :class:`~repro.stats.powerlaw.PowerLawFit` itself — it
    already exposes the vectorized ``ccdf`` this protocol needs, plus the
    fitted parameters (``alpha``, ``k_min``) downstream diagnostics read.
    """

    name = "power-law"

    def __init__(self, method: FitMethod = FitMethod.PAPER_DISCRETE) -> None:
        self.method = method

    def fit(self, samples: Sequence[float]) -> PowerLawFit:
        return fit_power_law(samples, method=self.method)


# --------------------------------------------------------------- empirical
@dataclass(frozen=True)
class EmpiricalModel(DurationModel):
    sorted_samples: np.ndarray
    tail_floor: float

    def ccdf(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        n = len(self.sorted_samples)
        # Pr(D >= k) = #{samples >= k} / n, floored so the model never
        # claims impossibility beyond the observed max.
        at_least = n - np.searchsorted(self.sorted_samples, k, side="left")
        out = at_least / n
        return np.clip(np.maximum(out, self.tail_floor * (k > 0)), 0.0, 1.0)


class EmpiricalFamily(DurationModelFamily):
    """Nonparametric: the history's own CCDF with a tail floor."""

    name = "empirical"

    def __init__(self, tail_floor: float = 0.02) -> None:
        if not (0.0 <= tail_floor < 1.0):
            raise ValueError(f"tail_floor must be in [0,1), got {tail_floor}")
        self.tail_floor = tail_floor

    def fit(self, samples: Sequence[float]) -> EmpiricalModel:
        arr = np.sort(np.asarray(samples, dtype=np.float64))
        if arr.size == 0:
            raise ValueError("cannot fit to an empty sample")
        if arr[0] <= 0:
            raise ValueError("duration samples must be positive")
        return EmpiricalModel(sorted_samples=arr, tail_floor=self.tail_floor)


# --------------------------------------------------------------- lognormal
@dataclass(frozen=True)
class LogNormalModel(DurationModel):
    mu: float
    sigma: float

    def ccdf(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        out = np.ones_like(k)
        positive = k > 0
        z = (np.log(np.where(positive, k, 1.0)) - self.mu) / (
            self.sigma * math.sqrt(2.0)
        )
        from scipy.special import erfc

        out = np.where(positive, 0.5 * erfc(z), 1.0)
        return np.clip(out, 0.0, 1.0)


class LogNormalFamily(DurationModelFamily):
    """Parametric rival: log-durations ~ Normal(mu, sigma)."""

    name = "lognormal"

    def __init__(self, min_sigma: float = 0.05) -> None:
        if min_sigma <= 0:
            raise ValueError(f"min_sigma must be positive, got {min_sigma}")
        self.min_sigma = min_sigma

    def fit(self, samples: Sequence[float]) -> LogNormalModel:
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot fit to an empty sample")
        if np.any(arr <= 0):
            raise ValueError("duration samples must be positive")
        logs = np.log(arr)
        sigma = float(logs.std(ddof=0))
        return LogNormalModel(mu=float(logs.mean()), sigma=max(sigma, self.min_sigma))


def make_family(name: str, **kwargs: Any) -> DurationModelFamily:
    """Factory: power-law | empirical | lognormal."""
    families = {
        "power-law": PowerLawFamily,
        "empirical": EmpiricalFamily,
        "lognormal": LogNormalFamily,
    }
    if name not in families:
        raise KeyError(f"unknown duration model {name!r}; known: {sorted(families)}")
    return families[name](**kwargs)
