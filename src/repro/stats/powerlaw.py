"""Power-law distribution utilities (fit, CCDF, sampling, diagnostics).

Section IV-B of the paper builds its deadline-probability model on the
observation (Ipeirotis 2010, analysed with the tools of Clauset, Shalizi &
Newman 2009) that crowdsourcing task execution times follow a power law:

    p(k) ∝ k^(-α),    k >= k_min > 0

with complementary CDF

    P(k) = Pr(K >= k) = (k / k_min)^(-α + 1)

and maximum-likelihood exponent estimate

    α = 1 + n [ Σ_i ln( k_i / (k_min − ½) ) ]^(-1)          (paper's form)

The ``− ½`` shift is the CSN discrete-data approximation; the exact
continuous MLE omits it.  Both are provided (:data:`FitMethod`); the paper's
form is the default so the reproduction matches its numbers.

Everything here is vectorized NumPy — these functions sit on the hot path of
graph construction, where Eq. (3) is evaluated for every candidate
(worker, task) edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np
import numpy.typing as npt

ArrayLike = Union[np.ndarray, Sequence[float], float]
#: Every probability/quantile accessor returns a float64 array.
FloatArray = npt.NDArray[np.float64]


class FitMethod(enum.Enum):
    """Which MLE variant estimates the scaling exponent α."""

    #: α = 1 + n / Σ ln(k_i / (k_min − ½)) — the paper's (CSN discrete) form.
    PAPER_DISCRETE = "paper-discrete"
    #: α = 1 + n / Σ ln(k_i / k_min) — exact continuous-data MLE.
    CONTINUOUS = "continuous"


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``p(k) ∝ k^(-alpha)`` for ``k >= k_min``.

    Immutable so that a fit captured at edge-construction time cannot be
    perturbed by later history updates.
    """

    alpha: float
    k_min: float
    n_samples: int
    method: FitMethod = FitMethod.PAPER_DISCRETE

    def __post_init__(self) -> None:
        if self.k_min <= 0:
            raise ValueError(f"k_min must be positive, got {self.k_min}")
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if not np.isfinite(self.alpha):
            raise ValueError(f"alpha must be finite, got {self.alpha}")
        if self.alpha <= 1.0:
            raise ValueError(
                f"alpha must exceed 1 for a normalizable tail, got {self.alpha}"
            )

    # ------------------------------------------------------------- P(k)
    def ccdf(self, k: ArrayLike) -> FloatArray:
        """``P(k) = Pr(K >= k) = (k/k_min)^(1-α)``, clamped to [0, 1].

        Values below ``k_min`` are in the non-power-law head where the model
        provides no mass ordering; the paper treats them as "typical or
        faster", i.e. P(k) = 1.
        """
        k_arr = np.asarray(k, dtype=np.float64)
        # Evaluated only on the tail (k > k_min); values at or below k_min
        # are overwritten with 1, so overflow in the head is irrelevant.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            out = np.power(k_arr / self.k_min, 1.0 - self.alpha)
        out = np.where(k_arr <= self.k_min, 1.0, out)
        return np.clip(out, 0.0, 1.0)

    def ccdf_scalar(self, k: float) -> float:
        """Scalar ``P(k)`` (the :class:`~repro.stats.duration_models.
        DurationModel` protocol's convenience accessor)."""
        return float(self.ccdf(np.asarray([k], dtype=np.float64))[0])

    def cdf(self, k: ArrayLike) -> FloatArray:
        """``Pr(K < k) = 1 - P(k)``."""
        return np.asarray(1.0 - self.ccdf(k), dtype=np.float64)

    def pdf(self, k: ArrayLike) -> FloatArray:
        """Normalized density ``(α-1)/k_min (k/k_min)^(-α)`` for k >= k_min."""
        k_arr = np.asarray(k, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            dens = (self.alpha - 1.0) / self.k_min * np.power(k_arr / self.k_min, -self.alpha)
        return np.where(k_arr < self.k_min, 0.0, dens)

    # --------------------------------------------------------- quantiles
    def quantile(self, q: ArrayLike) -> FloatArray:
        """Inverse CDF: the k with ``Pr(K < k) = q``."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr >= 1)):
            raise ValueError("quantile levels must lie in [0, 1)")
        return self.k_min * np.power(1.0 - q_arr, -1.0 / (self.alpha - 1.0))

    def median(self) -> float:
        return float(self.quantile(0.5))

    def mean(self) -> float:
        """Mean of the tail; infinite when α <= 2."""
        if self.alpha <= 2.0:
            return float("inf")
        return self.k_min * (self.alpha - 1.0) / (self.alpha - 2.0)

    # ----------------------------------------------------------- sampling
    def sample(self, rng: np.random.Generator, size: int = 1) -> FloatArray:
        """Inverse-transform sampling: ``k_min (1-U)^(-1/(α-1))``."""
        u = rng.random(size)
        return self.k_min * np.power(1.0 - u, -1.0 / (self.alpha - 1.0))


def fit_power_law(
    samples: ArrayLike,
    k_min: Optional[float] = None,
    method: FitMethod = FitMethod.PAPER_DISCRETE,
) -> PowerLawFit:
    """Fit a power law to positive samples.

    Parameters
    ----------
    samples:
        Observed values (the paper: a worker's recorded execution times).
    k_min:
        Lower cutoff; defaults to ``min(samples)`` — the paper sets "the
        lower bound k_min ... as the worker's lowest measured execution
        time".
    method:
        MLE variant, see :class:`FitMethod`.

    Raises
    ------
    ValueError
        On empty input, non-positive samples, or a degenerate history (all
        samples equal to ``k_min`` with the continuous method, which drives
        α → ∞; we cap it instead, see :data:`ALPHA_CAP`).
    """
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot fit a power law to an empty sample")
    if np.any(arr <= 0):
        raise ValueError("power-law samples must be strictly positive")
    # Narrow the Optional once; everything below works with a plain float
    # (mypy --strict rejects the old reassign-the-parameter pattern, which
    # left `k_min` typed Optional[float] through the arithmetic below).
    if k_min is None:
        cutoff = float(arr.min())
    elif k_min <= 0:
        raise ValueError(f"k_min must be positive, got {k_min}")
    else:
        cutoff = float(k_min)
    tail = arr[arr >= cutoff]
    if tail.size == 0:
        raise ValueError(f"no samples at or above k_min={cutoff}")

    if method is FitMethod.PAPER_DISCRETE:
        shift = cutoff - 0.5
        if shift <= 0:
            # The paper's discrete shift breaks down for sub-unit k_min
            # (log of a non-positive ratio); fall back to the exact form,
            # which the CSN paper itself recommends for continuous data.
            denom = float(np.log(tail / cutoff).sum())
        else:
            denom = float(np.log(tail / shift).sum())
    elif method is FitMethod.CONTINUOUS:
        denom = float(np.log(tail / cutoff).sum())
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown method {method}")

    if denom <= 0:
        alpha = ALPHA_CAP
    else:
        alpha = min(1.0 + tail.size / denom, ALPHA_CAP)
    return PowerLawFit(alpha=alpha, k_min=cutoff, n_samples=int(tail.size), method=method)


#: Cap on the fitted exponent.  A worker whose history is a single repeated
#: value gives denom → 0 and α → ∞; α = 50 already yields P(k) < 1e-13 one
#: decade above k_min, i.e. "this worker never exceeds typical time".
ALPHA_CAP = 50.0


def ks_distance(samples: ArrayLike, fit: PowerLawFit) -> float:
    """Kolmogorov-Smirnov distance between the empirical tail CDF and the fit.

    Goodness-of-fit diagnostic in the spirit of CSN §3; the reproduction uses
    it in tests to confirm that synthetic worker histories really are
    power-law shaped.
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    tail = arr[arr >= fit.k_min]
    if tail.size == 0:
        raise ValueError("no samples in the fitted tail")
    empirical = np.arange(1, tail.size + 1) / tail.size
    model = fit.cdf(tail)
    return float(np.max(np.abs(empirical - model)))
