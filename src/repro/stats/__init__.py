"""Statistics substrate: power-law model, metrics collection, summaries."""

from .duration_models import (
    DurationModel,
    DurationModelFamily,
    EmpiricalFamily,
    LogNormalFamily,
    PowerLawFamily,
    make_family,
)
from .metrics import MetricsCollector, TaskOutcome
from .powerlaw import ALPHA_CAP, FitMethod, PowerLawFit, fit_power_law, ks_distance
from .timeline import Timeline, TimelineRecorder, TimelineSample, summarize_timeline
from .summaries import (
    cumulative_fraction,
    downsample,
    format_series,
    format_table,
    geometric_mean,
)

__all__ = [
    "DurationModel",
    "DurationModelFamily",
    "EmpiricalFamily",
    "LogNormalFamily",
    "PowerLawFamily",
    "make_family",
    "MetricsCollector",
    "TaskOutcome",
    "ALPHA_CAP",
    "FitMethod",
    "PowerLawFit",
    "fit_power_law",
    "ks_distance",
    "Timeline",
    "TimelineRecorder",
    "TimelineSample",
    "summarize_timeline",
    "cumulative_fraction",
    "downsample",
    "format_series",
    "format_table",
    "geometric_mean",
]
