"""Shard descriptions: the unit of work the parallel executor fans out.

A :class:`ShardSpec` is a picklable, self-contained description of one
hermetic simulation — an end-to-end policy run, one chaos twin, one
scalability sweep cell, or one seeded repetition.  Every driver in
:mod:`repro.dist.drivers` compiles its workload down to a list of specs;
:mod:`repro.dist.executor` runs them (in-process or across a process
pool) and :mod:`repro.dist.merge` folds the outcomes back together in
canonical order.

Shards are keyed by a content :func:`fingerprint` so a checkpoint written
by a previous run is only reused when the spec that produced it is
byte-for-byte the same work — a resumed run can never silently mix results
from a different config or seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.registry import Sample


@dataclass(frozen=True)
class ShardSpec:
    """One unit of parallel work.

    ``kind`` selects the handler in :mod:`repro.dist.worker`; ``payload``
    holds that handler's keyword arguments (configs, policies, seeds — all
    frozen dataclasses or primitives, so the spec pickles across a spawn
    boundary and reprs deterministically for fingerprinting).
    """

    shard_id: str
    kind: str
    payload: Dict[str, Any]


@dataclass(frozen=True)
class TelemetrySpec:
    """Per-shard telemetry request: where the worker exports its run.

    Workers own their telemetry end to end: each builds a fresh
    ``Observability``, runs, and writes the exporter files itself — the
    exporters are deterministic in the run, so a shard's files are
    byte-identical no matter which process produced them.
    """

    prefix: str
    trace_dir: Optional[str] = None
    metrics_dir: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return self.trace_dir is not None or self.metrics_dir is not None


@dataclass
class MetricsSnapshot:
    """A shard's metrics registry, frozen into plain samples for transport."""

    label: str
    samples: List[Sample] = field(default_factory=list)
    #: instrument name → kind ("counter" / "gauge" / "histogram"), so the
    #: merge stage can render or re-export the aggregate faithfully.
    kinds: Dict[str, str] = field(default_factory=dict)


@dataclass
class ShardOutcome:
    """What one shard sends back: the result plus optional telemetry."""

    shard_id: str
    kind: str
    result: Any
    snapshot: Optional[MetricsSnapshot] = None
    #: exporter files written by the worker (absolute path strings).
    written: List[str] = field(default_factory=list)
    #: True when the executor restored this outcome from a checkpoint
    #: instead of recomputing the shard.
    from_checkpoint: bool = False


def _canonical(value: Any) -> str:
    """Deterministic repr for fingerprinting (dicts sorted by key)."""
    if isinstance(value, dict):
        items = ", ".join(
            f"{k!r}: {_canonical(value[k])}" for k in sorted(value)
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(_canonical(v) for v in value)
        return ("[%s]" if isinstance(value, list) else "(%s)") % inner
    return repr(value)


def fingerprint(spec: ShardSpec) -> str:
    """Content hash of a spec; gates checkpoint reuse on resume."""
    text = _canonical((spec.kind, spec.shard_id, spec.payload))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def check_unique_ids(specs: List[ShardSpec]) -> None:
    seen: set[str] = set()
    for spec in specs:
        if spec.shard_id in seen:
            raise ValueError(f"duplicate shard id {spec.shard_id!r}")
        seen.add(spec.shard_id)


#: Shard ids must be usable as checkpoint file names on any platform.
_ID_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def safe_id(*parts: Any) -> str:
    """Join id components into a filesystem-safe shard id."""
    raw = "-".join(str(p) for p in parts)
    return "".join(c if c in _ID_SAFE else "_" for c in raw)


def snapshot_key(sample: Sample) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return (sample.name, sample.labels)
