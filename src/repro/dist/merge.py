"""Merge stage: fold shard outcomes back into sequential-shaped results.

Every merge here is pure reassembly — shards are hermetic, so the merged
object is *identical* (not just statistically equivalent) to what the
sequential driver builds, provided outcomes are fed in canonical spec
order.  :func:`repro.dist.executor.execute_shards` guarantees that order,
so the determinism contract (same seed ⇒ bit-identical merged results for
any ``--parallel``) reduces to the hermeticity of each shard.

Metrics registries merge by summing matching ``(name, labels)`` series
(:func:`repro.obs.registry.merge_snapshots`); kinds tables union, with a
conflict check so a counter in one shard can never silently absorb a gauge
of the same name from another.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..experiments.chaos import ChaosRunResult
from ..experiments.config import ScalabilityConfig
from ..experiments.endtoend import EndToEndResult
from ..experiments.scalability import ScalabilityResult
from ..experiments.scenario import ScenarioResult
from ..obs.registry import Sample, merge_snapshots
from .shards import MetricsSnapshot, ShardOutcome


def merge_endtoend(outcomes: Sequence[ShardOutcome]) -> Dict[str, EndToEndResult]:
    """Rebuild the ``run_comparison`` dict, keyed and ordered by policy."""
    results: Dict[str, EndToEndResult] = {}
    for outcome in outcomes:
        result = outcome.result
        if result.policy_name in results:
            raise ValueError(f"duplicate policy name {result.policy_name!r}")
        results[result.policy_name] = result
    return results


def merge_scenario(outcomes: Sequence[ShardOutcome]) -> Dict[str, ScenarioResult]:
    """Rebuild the ``run_scenario_comparison`` dict, ordered by policy."""
    results: Dict[str, ScenarioResult] = {}
    for outcome in outcomes:
        result = outcome.result
        if result.policy_name in results:
            raise ValueError(f"duplicate policy name {result.policy_name!r}")
        results[result.policy_name] = result
    return results


def merge_chaos(
    outcomes: Sequence[ShardOutcome],
) -> Dict[str, Dict[str, ChaosRunResult]]:
    """Rebuild the ``run_chaos_comparison`` nested dict (clean + faulted)."""
    results: Dict[str, Dict[str, ChaosRunResult]] = {}
    for outcome in outcomes:
        result = outcome.result
        variant = "faulted" if result.faulted else "clean"
        pair = results.setdefault(result.policy_name, {})
        if variant in pair:
            raise ValueError(
                f"duplicate {variant!r} run for policy {result.policy_name!r}"
            )
        pair[variant] = result
    for name, pair in results.items():
        missing = {"clean", "faulted"} - set(pair)
        if missing:
            raise ValueError(f"policy {name!r} is missing runs: {sorted(missing)}")
    return results


def merge_scalability(
    config: ScalabilityConfig, outcomes: Sequence[ShardOutcome]
) -> ScalabilityResult:
    """Rebuild the sweep result; outcome order is the sequential sweep order."""
    result = ScalabilityResult(config=config)
    for outcome in outcomes:
        result.points.append(outcome.result)
    return result


def merge_metrics(outcomes: Sequence[ShardOutcome]) -> List[Sample]:
    """Aggregate every shard's registry snapshot into one sample list."""
    return merge_snapshots(
        outcome.snapshot.samples
        for outcome in outcomes
        if outcome.snapshot is not None
    )


def merged_snapshot(
    outcomes: Sequence[ShardOutcome], label: str = "merged"
) -> Optional[MetricsSnapshot]:
    """The fleet-wide snapshot, or None when no shard carried telemetry."""
    snapshots = [o.snapshot for o in outcomes if o.snapshot is not None]
    if not snapshots:
        return None
    kinds: Dict[str, str] = {}
    for snapshot in snapshots:
        for name, kind in snapshot.kinds.items():
            if kinds.setdefault(name, kind) != kind:
                raise ValueError(
                    f"instrument {name!r} has conflicting kinds across shards: "
                    f"{kinds[name]!r} vs {kind!r}"
                )
    return MetricsSnapshot(
        label=label,
        samples=merge_metrics(outcomes),
        kinds=kinds,
    )
