"""Sharded counterparts of the sequential experiment drivers.

Each driver compiles its workload into :class:`~repro.dist.shards.ShardSpec`
lists, hands them to :func:`~repro.dist.executor.execute_shards`, and
merges the outcomes back into the exact object the sequential driver
returns — ``run_comparison_sharded(parallel=1)`` and
``run_comparison(...)`` are interchangeable by construction, and any
``parallel`` value produces the same bytes (the determinism contract in
docs/SCALING.md).

Repetition sweeps (:func:`run_endtoend_repetitions`) seed each repetition
via :func:`repro.sim.rng.spawn_seeds` — ``SeedSequence.spawn`` keying, not
arithmetic on the root seed — so repetitions are statistically independent
and the first ``k`` of them never change when more are added.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..chaos import FaultSchedule
from ..experiments.chaos import ChaosConfig, ChaosRunResult, standard_schedule
from ..experiments.config import EndToEndConfig, ScalabilityConfig
from ..experiments.endtoend import EndToEndResult, default_policies
from ..experiments.scalability import ScalabilityResult
from ..experiments.scenario import ScenarioConfig, ScenarioResult
from ..platform.policies import SchedulingPolicy
from ..scenarios.baselines import scenario_policies
from ..sim.rng import spawn_seeds
from .executor import ExecutionReport, execute_shards
from .merge import (
    merge_chaos,
    merge_endtoend,
    merge_scalability,
    merge_scenario,
    merged_snapshot,
)
from .shards import MetricsSnapshot, ShardOutcome, ShardSpec, TelemetrySpec, safe_id

PathLike = Union[str, Path]


@dataclass
class ShardedRun:
    """A merged sharded experiment: results + fleet telemetry + resume info."""

    results: Any
    outcomes: List[ShardOutcome] = field(default_factory=list)
    snapshot: Optional[MetricsSnapshot] = None
    written: List[str] = field(default_factory=list)
    computed: int = 0
    resumed: int = 0

    @property
    def shard_count(self) -> int:
        return len(self.outcomes)


def _finish(results: Any, report: ExecutionReport) -> ShardedRun:
    written: List[str] = []
    for outcome in report.outcomes:
        written.extend(outcome.written)
    return ShardedRun(
        results=results,
        outcomes=report.outcomes,
        snapshot=merged_snapshot(report.outcomes),
        written=written,
        computed=report.computed,
        resumed=report.resumed,
    )


def _policies(
    policies: Optional[Sequence[SchedulingPolicy]],
) -> Sequence[SchedulingPolicy]:
    chosen = policies if policies is not None else default_policies()
    seen: Dict[str, None] = {}
    for policy in chosen:
        if policy.name in seen:
            raise ValueError(f"duplicate policy name {policy.name!r}")
        seen.setdefault(policy.name)
    return chosen


def run_comparison_sharded(
    config: EndToEndConfig,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    parallel: int = 1,
    checkpoint_dir: Optional[PathLike] = None,
    telemetry: Optional[TelemetrySpec] = None,
) -> ShardedRun:
    """Sharded ``run_comparison``: one shard per policy, same seed each."""
    specs = [
        ShardSpec(
            shard_id=safe_id("endtoend", policy.name),
            kind="endtoend",
            payload={
                "policy": policy,
                "config": config,
                "label": policy.name,
                "telemetry": telemetry,
            },
        )
        for policy in _policies(policies)
    ]
    report = execute_shards(specs, parallel=parallel, checkpoint_dir=checkpoint_dir)
    results: Dict[str, EndToEndResult] = merge_endtoend(report.outcomes)
    return _finish(results, report)


def run_scenario_sharded(
    config: ScenarioConfig,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    parallel: int = 1,
    checkpoint_dir: Optional[PathLike] = None,
    telemetry: Optional[TelemetrySpec] = None,
) -> ShardedRun:
    """Sharded ``run_scenario_comparison``: one shard per policy, same seed.

    Each shard runs the full multi-region scenario hermetically (fresh
    engine, fresh RNG registry, task-id reset), so the merged dict is
    byte-identical to the sequential driver's for any ``parallel``.
    """
    chosen = policies if policies is not None else scenario_policies()
    seen: Dict[str, None] = {}
    for policy in chosen:
        if policy.name in seen:
            raise ValueError(f"duplicate policy name {policy.name!r}")
        seen.setdefault(policy.name)
    specs = [
        ShardSpec(
            shard_id=safe_id("scenario", policy.name),
            kind="scenario",
            payload={
                "policy": policy,
                "config": config,
                "label": policy.name,
                "telemetry": telemetry,
            },
        )
        for policy in chosen
    ]
    report = execute_shards(specs, parallel=parallel, checkpoint_dir=checkpoint_dir)
    results: Dict[str, ScenarioResult] = merge_scenario(report.outcomes)
    return _finish(results, report)


def run_chaos_sharded(
    config: ChaosConfig,
    schedule: Optional[FaultSchedule] = None,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    parallel: int = 1,
    checkpoint_dir: Optional[PathLike] = None,
    telemetry: Optional[TelemetrySpec] = None,
) -> ShardedRun:
    """Sharded ``run_chaos_comparison``: clean + faulted twin per policy.

    Fault-injected runs shard exactly like clean ones — the schedule is a
    frozen dataclass that pickles into the worker, where the injector
    replays it deterministically.
    """
    if schedule is None:
        schedule = standard_schedule(config)
    specs: List[ShardSpec] = []
    for policy in _policies(policies):
        for variant, shard_schedule in (("clean", None), ("faulted", schedule)):
            specs.append(
                ShardSpec(
                    shard_id=safe_id("chaos", policy.name, variant),
                    kind="chaos",
                    payload={
                        "policy": policy,
                        "config": config,
                        "schedule": shard_schedule,
                        "label": f"{policy.name}.{variant}",
                        "telemetry": telemetry,
                    },
                )
            )
    report = execute_shards(specs, parallel=parallel, checkpoint_dir=checkpoint_dir)
    results: Dict[str, Dict[str, ChaosRunResult]] = merge_chaos(report.outcomes)
    return _finish(results, report)


def run_scalability_sharded(
    config: Optional[ScalabilityConfig] = None,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    parallel: int = 1,
    checkpoint_dir: Optional[PathLike] = None,
) -> ShardedRun:
    """Sharded Figs. 9-10 sweep: one shard per (size point, technique)."""
    config = config or ScalabilityConfig()
    specs: List[ShardSpec] = []
    for workers, rate, n_tasks in config.points():
        for policy in _policies(policies):
            specs.append(
                ShardSpec(
                    shard_id=safe_id("scal", workers, rate, n_tasks, policy.name),
                    kind="scalability",
                    payload={
                        "config": config,
                        "workers": workers,
                        "rate": rate,
                        "n_tasks": n_tasks,
                        "policy": policy,
                    },
                )
            )
    report = execute_shards(specs, parallel=parallel, checkpoint_dir=checkpoint_dir)
    results: ScalabilityResult = merge_scalability(config, report.outcomes)
    return _finish(results, report)


def run_endtoend_repetitions(
    policy: SchedulingPolicy,
    config: EndToEndConfig,
    repetitions: int,
    parallel: int = 1,
    checkpoint_dir: Optional[PathLike] = None,
) -> ShardedRun:
    """``repetitions`` independent runs of one policy, spawn-seeded.

    Repetition ``i`` replaces ``config.seed`` with the ``i``-th
    ``SeedSequence.spawn`` child of the root seed; results come back in
    repetition order.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    seeds = spawn_seeds(config.seed, repetitions)
    specs = [
        ShardSpec(
            shard_id=safe_id("rep", index, policy.name),
            kind="endtoend",
            payload={
                "policy": policy,
                "config": dataclasses.replace(config, seed=seed),
                "label": f"{policy.name}.rep{index}",
                "telemetry": None,
            },
        )
        for index, seed in enumerate(seeds)
    ]
    report = execute_shards(specs, parallel=parallel, checkpoint_dir=checkpoint_dir)
    results: List[EndToEndResult] = [outcome.result for outcome in report.outcomes]
    return _finish(results, report)
