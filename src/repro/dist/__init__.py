"""Sharded parallel execution for experiment workloads (docs/SCALING.md).

The package fans hermetic simulation shards — per-policy end-to-end runs,
chaos twins, scalability sweep cells, seeded repetitions — across a
``spawn``-context process pool, checkpoints each finished shard, and
merges the outcomes back into the exact objects the sequential drivers
return.

Determinism contract: for a given config and seed, the merged results and
merged metrics snapshot are bit-identical for every ``parallel`` value
(including 1) and across kill-and-resume runs.  The contract holds because
each shard builds its own engine and ``RngRegistry`` from the config seed
(nothing leaks between shards), and the merge stage reassembles outcomes
in canonical spec order regardless of completion order.
"""

from .drivers import (
    ShardedRun,
    run_chaos_sharded,
    run_comparison_sharded,
    run_endtoend_repetitions,
    run_scalability_sharded,
    run_scenario_sharded,
)
from .executor import (
    ExecutionReport,
    execute_shards,
    load_checkpoint,
    write_checkpoint,
)
from .merge import (
    merge_chaos,
    merge_endtoend,
    merge_metrics,
    merge_scalability,
    merge_scenario,
    merged_snapshot,
)
from .shards import (
    MetricsSnapshot,
    ShardOutcome,
    ShardSpec,
    TelemetrySpec,
    fingerprint,
    safe_id,
)
from .worker import HANDLERS, register_handler, run_shard

__all__ = [
    "ExecutionReport",
    "HANDLERS",
    "MetricsSnapshot",
    "ShardOutcome",
    "ShardSpec",
    "ShardedRun",
    "TelemetrySpec",
    "execute_shards",
    "fingerprint",
    "load_checkpoint",
    "merge_chaos",
    "merge_endtoend",
    "merge_metrics",
    "merge_scalability",
    "merge_scenario",
    "merged_snapshot",
    "register_handler",
    "run_chaos_sharded",
    "run_comparison_sharded",
    "run_endtoend_repetitions",
    "run_scalability_sharded",
    "run_scenario_sharded",
    "run_shard",
    "safe_id",
    "write_checkpoint",
]
