"""Shard executor: inline or process-pool execution with checkpointing.

``parallel <= 1`` runs every shard in-process — the reference path the
determinism contract is stated against.  ``parallel > 1`` fans shards out
over a ``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor`
(``spawn`` so workers never inherit forked interpreter state — module
globals like the task-id counter start clean, exactly as a fresh run
would).

Checkpointing: with ``checkpoint_dir`` set, every completed shard is
pickled to ``<dir>/<shard_id>.pkl`` together with the spec's content
fingerprint, using an atomic write (temp file + ``os.replace``) so a kill
mid-write never leaves a truncated checkpoint behind.  A later run over
the same directory reloads each checkpoint whose fingerprint still matches
its spec and only computes the remainder — the kill-and-resume workflow
the chaos subsystem's blackout drills assume.  A checkpoint whose
fingerprint does not match (config changed, code moved the spec) is
ignored and recomputed; stale results are never merged.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .shards import ShardOutcome, ShardSpec, check_unique_ids, fingerprint
from .worker import run_shard

logger = logging.getLogger(__name__)

#: Checkpoint payload format version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1


@dataclass
class ExecutionReport:
    """Outcomes in spec order, plus how much work the resume skipped."""

    outcomes: List[ShardOutcome] = field(default_factory=list)
    computed: int = 0
    resumed: int = 0


def _checkpoint_path(checkpoint_dir: Path, spec: ShardSpec) -> Path:
    return checkpoint_dir / f"{spec.shard_id}.pkl"


def write_checkpoint(checkpoint_dir: Path, spec: ShardSpec, outcome: ShardOutcome) -> Path:
    """Atomically persist one finished shard."""
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    path = _checkpoint_path(checkpoint_dir, spec)
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint(spec),
        "outcome": outcome,
    }
    tmp = path.with_suffix(".pkl.tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_checkpoint(checkpoint_dir: Path, spec: ShardSpec) -> Optional[ShardOutcome]:
    """The checkpointed outcome for ``spec``, or None if absent/stale."""
    path = _checkpoint_path(checkpoint_dir, spec)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        logger.warning("checkpoint %s unreadable (%s); recomputing", path, exc)
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        logger.warning("checkpoint %s has old version; recomputing", path)
        return None
    if payload.get("fingerprint") != fingerprint(spec):
        logger.warning(
            "checkpoint %s does not match shard %s (config changed?); recomputing",
            path, spec.shard_id,
        )
        return None
    outcome = payload["outcome"]
    if not isinstance(outcome, ShardOutcome):
        return None
    outcome.from_checkpoint = True
    return outcome


def execute_shards(
    specs: Sequence[ShardSpec],
    parallel: int = 1,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> ExecutionReport:
    """Run every shard; returns outcomes in the order of ``specs``.

    The result is independent of ``parallel`` and of pool scheduling: each
    shard is hermetic, and outcomes are reassembled by spec order before
    the merge stage ever sees them.
    """
    specs = list(specs)
    check_unique_ids(specs)
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None

    report = ExecutionReport()
    done: Dict[str, ShardOutcome] = {}
    pending: List[ShardSpec] = []
    for spec in specs:
        outcome = load_checkpoint(ckpt_dir, spec) if ckpt_dir is not None else None
        if outcome is not None:
            done[spec.shard_id] = outcome
            report.resumed += 1
        else:
            pending.append(spec)

    if pending:
        if parallel == 1:
            for spec in pending:
                outcome = run_shard(spec)
                if ckpt_dir is not None:
                    write_checkpoint(ckpt_dir, spec, outcome)
                done[spec.shard_id] = outcome
                report.computed += 1
        else:
            by_id = {spec.shard_id: spec for spec in pending}
            with ProcessPoolExecutor(
                max_workers=min(parallel, len(pending)),
                mp_context=get_context("spawn"),
            ) as pool:
                futures = {
                    pool.submit(run_shard, spec): spec.shard_id for spec in pending
                }
                # Checkpoint each shard the moment it completes, so a kill
                # mid-run preserves every finished shard, not just a batch.
                for future in as_completed(futures):
                    outcome = future.result()
                    spec = by_id[outcome.shard_id]
                    if ckpt_dir is not None:
                        write_checkpoint(ckpt_dir, spec, outcome)
                    done[spec.shard_id] = outcome
                    report.computed += 1

    report.outcomes = [done[spec.shard_id] for spec in specs]
    logger.info(
        "dist: %d shards (%d computed, %d resumed, parallel=%d)",
        len(specs), report.computed, report.resumed, parallel,
    )
    return report
