"""Shard execution: runs one :class:`~repro.dist.shards.ShardSpec`.

:func:`run_shard` is a module-level function so it pickles across the
``spawn`` boundary of a :class:`concurrent.futures.ProcessPoolExecutor`.
Each handler re-creates the same hermetic simulation the sequential driver
would have run — fresh engine, fresh ``RngRegistry`` seeded from the
shard's config, task-id counter reset inside the experiment entry point —
so a shard's result is bit-identical whether it runs inline, in a pool, or
on a different day.

Telemetry is worker-owned: when the spec carries an enabled
:class:`~repro.dist.shards.TelemetrySpec`, the worker builds its own
``Observability``, binds it to the run, exports the trace/metrics files
itself (the exporters are deterministic in the run), and ships the
registry back as a plain-sample :class:`~repro.dist.shards.MetricsSnapshot`
for the merge stage.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..experiments.chaos import run_chaos
from ..experiments.endtoend import run_endtoend
from ..experiments.scalability import evaluate_point
from ..experiments.scenario import run_scenario
from ..obs.runtime import Observability
from .shards import MetricsSnapshot, ShardOutcome, ShardSpec, TelemetrySpec


def _make_observability(
    telemetry: Optional[TelemetrySpec],
) -> Optional[Observability]:
    if telemetry is None or not telemetry.enabled:
        return None
    return Observability()


def _finish_telemetry(
    obs: Optional[Observability],
    telemetry: Optional[TelemetrySpec],
    label: str,
) -> Tuple[Optional[MetricsSnapshot], list]:
    if obs is None or telemetry is None:
        return None, []
    written = obs.export(
        f"{telemetry.prefix}_{label}",
        trace_dir=telemetry.trace_dir,
        metrics_dir=telemetry.metrics_dir,
    )
    snapshot = MetricsSnapshot(
        label=label,
        samples=obs.registry.snapshot(),
        kinds={inst.name: inst.kind for inst in obs.registry.instruments()},
    )
    return snapshot, [str(path) for path in written]


def _run_endtoend_shard(spec: ShardSpec) -> ShardOutcome:
    payload = spec.payload
    telemetry: Optional[TelemetrySpec] = payload.get("telemetry")
    obs = _make_observability(telemetry)
    result = run_endtoend(payload["policy"], payload["config"], observability=obs)
    snapshot, written = _finish_telemetry(obs, telemetry, payload["label"])
    return ShardOutcome(
        shard_id=spec.shard_id,
        kind=spec.kind,
        result=result,
        snapshot=snapshot,
        written=written,
    )


def _run_chaos_shard(spec: ShardSpec) -> ShardOutcome:
    payload = spec.payload
    telemetry: Optional[TelemetrySpec] = payload.get("telemetry")
    obs = _make_observability(telemetry)
    result = run_chaos(
        payload["policy"],
        payload["config"],
        schedule=payload.get("schedule"),
        observability=obs,
    )
    snapshot, written = _finish_telemetry(obs, telemetry, payload["label"])
    return ShardOutcome(
        shard_id=spec.shard_id,
        kind=spec.kind,
        result=result,
        snapshot=snapshot,
        written=written,
    )


def _run_scenario_shard(spec: ShardSpec) -> ShardOutcome:
    payload = spec.payload
    telemetry: Optional[TelemetrySpec] = payload.get("telemetry")
    obs = _make_observability(telemetry)
    result = run_scenario(payload["policy"], payload["config"], observability=obs)
    snapshot, written = _finish_telemetry(obs, telemetry, payload["label"])
    return ShardOutcome(
        shard_id=spec.shard_id,
        kind=spec.kind,
        result=result,
        snapshot=snapshot,
        written=written,
    )


def _run_scalability_shard(spec: ShardSpec) -> ShardOutcome:
    payload = spec.payload
    point = evaluate_point(
        payload["config"],
        payload["workers"],
        payload["rate"],
        payload["n_tasks"],
        payload["policy"],
    )
    return ShardOutcome(shard_id=spec.shard_id, kind=spec.kind, result=point)


ShardHandler = Callable[[ShardSpec], ShardOutcome]

#: kind → handler.  Registered at import time so spawn workers (which
#: import this module fresh) see the same table as the parent process.
HANDLERS: Dict[str, ShardHandler] = {
    "endtoend": _run_endtoend_shard,
    "chaos": _run_chaos_shard,
    "scalability": _run_scalability_shard,
    "scenario": _run_scenario_shard,
}


def register_handler(kind: str, handler: ShardHandler) -> None:
    """Register a shard kind (tests and future drivers).

    Note: a handler registered at runtime exists only in the registering
    process; pool workers import this module fresh and will not see it.
    Custom kinds therefore only run with ``parallel=1`` unless they are
    registered at module import time.
    """
    HANDLERS[kind] = handler


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Execute one shard (the pool's entry point; must stay module-level)."""
    handler = HANDLERS.get(spec.kind)
    if handler is None:
        raise ValueError(f"unknown shard kind {spec.kind!r}")
    return handler(spec)


__all__ = [
    "HANDLERS",
    "ShardHandler",
    "register_handler",
    "run_shard",
]
