"""Scheduling Component (§III-A, §IV-A).

Matches unassigned tasks to available workers: builds the pruned weighted
bipartite graph (Eq. 3 + Eq. 1), runs the policy's matcher, and publishes
the assignments after the matcher's *simulated* latency has elapsed — that
latency, charged by the :mod:`~repro.platform.cost` model, is what lets a
slow matcher starve the queue exactly as in the paper's Fig. 5.

Batching follows §IV-A: "Our solution works in batches, which are initiated
periodically, or if the number of unassigned tasks has exceeded a boundary."
Only one batch runs at a time; tasks arriving mid-batch wait for the next
trigger, and the trigger is re-evaluated as soon as a batch publishes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..core.matching.base import Matcher, MatchingResult
from ..graph.builders import AssignmentGraphBuilder, GraphBuildReport
from ..model.task import Task
from ..model.worker import WorkerProfile
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import SCHEDULER_TRACK
from ..sim.clock import EventClock
from ..sim.events import Event, EventKind
from .cost import BatchShape, CostModel, MeasuredCost
from .policies import SchedulingPolicy
from .profiling import ProfilingComponent
from .task_management import TaskManagementComponent


@dataclass
class BatchRecord:
    """Trace of one matching batch (for tests and reporting)."""

    started_at: float
    published_at: float
    n_workers: int
    n_tasks: int
    n_edges: int
    matched: int
    retired_expired: int
    simulated_seconds: float
    build_report: Optional[GraphBuildReport] = field(default=None, repr=False)


class SchedulingComponent:
    """Batch construction, matching and assignment publication."""

    def __init__(
        self,
        engine: EventClock,
        policy: SchedulingPolicy,
        task_management: TaskManagementComponent,
        profiling: ProfilingComponent,
        builder: AssignmentGraphBuilder,
        matcher: Matcher,
        cost_model: CostModel,
        matcher_rng: np.random.Generator,
        on_assign: Callable[[Task, WorkerProfile], None],
        on_retired: Callable[[List[Task]], None],
        on_batch: Optional[Callable[[BatchRecord], None]] = None,
        observability: Optional[ObservabilityLike] = None,
    ) -> None:
        self._engine = engine
        self._policy = policy
        self._tasks = task_management
        self._profiles = profiling
        self._builder = builder
        self._matcher = matcher
        self._cost = cost_model
        self._rng = matcher_rng
        self._on_assign = on_assign
        self._on_retired = on_retired
        self._on_batch = on_batch
        obs = resolve(observability)
        self._tracer = obs.tracer
        self._obs_latency = obs.registry.histogram(
            "react_batch_latency_seconds",
            "Simulated matcher latency charged per published batch",
            buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0),
        )
        self._obs_aborted = obs.registry.counter(
            "react_batches_aborted_total", "Batches dropped by a blackout suspension"
        )
        self._obs_queue_depth = obs.registry.gauge(
            "react_unassigned_tasks", "Unassigned-task queue depth after last batch"
        )
        self._obs_in_flight = obs.registry.gauge(
            "react_assigned_tasks", "Tasks out with a worker after last batch"
        )
        self._busy = False
        # Coincident BATCH_COMPLETE events (multi-server setups sharing one
        # engine, zero-latency cost models) arrive as one batched dispatch.
        engine.register_cohort_handler(self._publish, self._publish_cohort)
        self.batches: List[BatchRecord] = []
        #: Chaos hook (:class:`repro.chaos.MatcherStallFault`): maps the cost
        #: model's latency to the latency actually charged for this batch.
        self.latency_hook: Optional[Callable[[float], float]] = None
        #: Blackout switch: while True no batch starts and any in-flight
        #: batch publishes nothing (its tasks silently rejoin the queue).
        self.suspended = False
        #: Batches whose publication was dropped by a suspension (blackout).
        self.aborted_batches = 0

    # ------------------------------------------------------------ triggers
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def matcher(self) -> Matcher:
        return self._matcher

    def set_matcher(self, matcher: Matcher) -> None:
        """Hot-swap the matching algorithm (degraded-mode fallback).

        Takes effect from the next batch; a batch already in flight
        publishes the result its original matcher produced.
        """
        self._matcher = matcher

    def maybe_trigger(self) -> bool:
        """Threshold trigger: start a batch when enough tasks queued.

        Called on every task arrival and withdrawal.  Returns True when a
        batch was started.  A batch is pointless (and, with a near-zero
        cost model, a livelock risk) when no worker is available, so the
        trigger also requires at least one free worker.
        """
        if self._busy or self.suspended:
            return False
        if self._tasks.unassigned_count < self._policy.batch_threshold:
            return False
        if not self._profiles.any_available():
            return False
        self._start_batch()
        return True

    def periodic_trigger(self, now: float) -> None:
        """Fallback periodic trigger (drains stragglers below threshold).

        Mirrors :meth:`maybe_trigger`'s free-worker guard: with nobody to
        match, a batch would only burn simulated matcher latency and churn
        the event queue before returning every task to the queue.  Queued
        tasks whose deadline lapses while no worker is around are still
        retired on schedule — just without the pointless batch.
        """
        if self._busy or self.suspended or self._tasks.unassigned_count == 0:
            return
        if not self._profiles.any_available():
            if not self._policy.assign_expired:
                retired = self._tasks.retire_expired(now)
                if retired:
                    self._on_retired(retired)
            return
        self._start_batch()

    def periodic_trigger_cohort(self, now: float, count: int) -> None:
        """Cohort form of ``count`` coincident periodic triggers.

        One evaluation serves all of them: after a first trigger starts a
        batch the rest would observe ``busy`` and return; after one empties
        or retires the queue the rest would observe an empty/unexpired
        queue.  In the no-worker branch, N sequential triggers would rescan
        the queue N times — here :meth:`TaskManagementComponent.retire_expired`
        runs its scan once on behalf of the whole cohort (later scans at the
        same instant provably retire nothing).
        """
        if count <= 0:
            return
        self.periodic_trigger(now)

    # --------------------------------------------------------------- batch
    def _start_batch(self) -> None:
        self._busy = True
        now = self._engine.now
        batch, retired = self._tasks.checkout_batch(
            now, assign_expired=self._policy.assign_expired
        )
        if retired:
            self._on_retired(retired)
        workers = self._profiles.available_workers()

        # Host wall time feeds profiling reports only — except under the
        # opt-in MeasuredCost sensitivity model, which deliberately trades
        # determinism for a calibration check.  Default (analytic-cost)
        # runs stay seed-deterministic, hence the DET001 suppressions.
        wall_start = time.perf_counter()  # reprolint: disable=DET001
        graph, report = self._builder.build(workers, batch, now)
        result = self._matcher.match(graph, self._rng)
        result.validate()
        wall = time.perf_counter() - wall_start  # reprolint: disable=DET001

        if self._policy.charge_region_graph:
            # The paper's O(V·E) accounting for Greedy: the server maintains
            # the *region* graph in real time (§IV-A), and the Greedy scan
            # walks that whole edge list — every in-flight task × every
            # online worker — for each task it matches.  Fig. 3's
            # calibration counts the same way (there the batch is the whole
            # graph).
            region_tasks = self._tasks.in_flight
            region_workers = len(self._profiles)
            cost_tasks = region_tasks
            cost_edges = region_tasks * region_workers
        else:
            cost_tasks = len(batch)
            cost_edges = graph.n_edges
        shape = BatchShape(
            n_workers=len(workers),
            n_tasks=cost_tasks,
            n_edges=cost_edges,
            cycles=getattr(getattr(self._matcher, "params", None), "cycles", 0),
        )
        if isinstance(self._cost, MeasuredCost):
            latency = self._cost.from_measurement(wall)
        else:
            latency = self._cost.seconds(self._matcher.name, shape)
        if self.latency_hook is not None:
            latency = self.latency_hook(latency)

        payload = _PendingBatch(
            started_at=now,
            workers=workers,
            batch=batch,
            result=result,
            report=report,
            retired=len(retired),
            latency=latency,
            matcher_name=self._matcher.name,
            cycles=int(shape.cycles),
        )
        self._engine.schedule(
            latency,
            EventKind.BATCH_COMPLETE,
            self._publish,
            payload=payload,
            transient=True,
        )

    def _publish_cohort(self, now: float, events: List[Event]) -> None:
        """Cohort handler: publish each coincident pending batch in seq order.

        Publication order matters — an earlier batch's assignments change
        the worker availability the next batch's commit checks — so the
        payload array is walked in the exact sequential dispatch order.
        """
        for event in events:
            self._publish(event)

    def _publish(self, event: Event) -> None:
        pending: _PendingBatch = event.payload
        now = self._engine.now
        if self.suspended:
            # The region server blacked out while the matcher ran: the batch
            # result is lost and its tasks rejoin the queue for re-adoption
            # once the server recovers.
            for task in pending.batch:
                self._tasks.return_unmatched(task)
            self.aborted_batches += 1
            self._obs_aborted.inc()
            self._tracer.instant(
                "batch.aborted",
                cat="scheduler",
                tid=SCHEDULER_TRACK,
                n_tasks=len(pending.batch),
            )
            self._busy = False
            return
        # Dense task -> worker row (kernel-precomputed for REACT batches):
        # one list index per task instead of a dict build + lookup.
        assignment = pending.result.task_assignment_dense().tolist()
        matched = 0
        for j, task in enumerate(pending.batch):
            worker_idx = assignment[j]
            if worker_idx < 0:
                self._tasks.return_unmatched(task)
                continue
            worker = pending.workers[worker_idx]
            # A worker may have gone offline (churn) or left this region
            # (split migration) while the matcher ran; his matched task
            # silently rejoins the queue.
            if (
                not worker.online
                or not worker.available
                or worker.worker_id not in self._profiles
            ):
                self._tasks.return_unmatched(task)
                continue
            self._tasks.commit_assignment(task, worker.worker_id, now)
            self._profiles.record_assignment(worker.worker_id, task.task_id)
            matched += 1
            self._on_assign(task, worker)

        record = BatchRecord(
            started_at=pending.started_at,
            published_at=now,
            n_workers=len(pending.workers),
            n_tasks=len(pending.batch),
            n_edges=pending.result.graph.n_edges,
            matched=matched,
            retired_expired=pending.retired,
            simulated_seconds=pending.latency,
            build_report=pending.report,
        )
        self.batches.append(record)
        self._obs_latency.observe(pending.latency)
        self._obs_queue_depth.set(self._tasks.unassigned_count)
        self._obs_in_flight.set(self._tasks.assigned_count)
        self._tracer.complete(
            "batch",
            start=pending.started_at,
            end=now,
            cat="scheduler",
            tid=SCHEDULER_TRACK,
            matcher=pending.matcher_name,
            cycles=pending.cycles,
            n_workers=len(pending.workers),
            n_tasks=len(pending.batch),
            n_edges=pending.result.graph.n_edges,
            matched=matched,
            fitness=round(pending.result.total_weight, 6),
            latency=pending.latency,
        )
        if self._on_batch is not None:
            self._on_batch(record)
        self._busy = False
        # Tasks queued while the matcher was running may already exceed the
        # threshold; chain straight into the next batch — but only when this
        # batch made progress or new work arrived mid-run, otherwise an
        # unmatchable backlog + a near-zero-latency matcher would spin
        # forever at the same simulated instant.
        new_arrivals = self._tasks.unassigned_count > (len(pending.batch) - matched)
        if matched > 0 or new_arrivals:
            self.maybe_trigger()


@dataclass
class _PendingBatch:
    started_at: float
    workers: List[WorkerProfile]
    batch: List[Task]
    result: MatchingResult
    report: GraphBuildReport
    retired: int
    latency: float
    #: Matcher identity captured at batch start: a degraded-mode hot-swap
    #: mid-flight must not relabel the batch its original matcher produced.
    matcher_name: str = "?"
    cycles: int = 0
