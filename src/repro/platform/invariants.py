"""Cross-component runtime invariants.

The four server components share mutable state (tasks, worker profiles)
through well-defined transitions; a bug in any handler tends to show up as
a *relationship* violation long before it corrupts a headline metric.
:func:`check_server_invariants` audits those relationships on demand and
:class:`InvariantMonitor` re-audits them on a simulated-time grid, so
integration tests (and cautious users) can run whole experiments under
continuous verification.

Checked invariants:

I1  Task pools partition: every task is in exactly one of
    unassigned / in-batch / assigned / deferred / finished, and its
    ``phase`` agrees with the pool it sits in.  (The deferred pool holds
    withdrawn tasks parked by the resilience layer's retry backoff; they
    are UNASSIGNED but invisible to the matcher.)
I2  An ASSIGNED task's worker is registered with the Profiling Component.
I3  No double *active* booking: at most one ASSIGNED task per worker may be
    the one his profile currently claims (``current_task``), and a worker
    claiming a task is never marked available.  (Plain "≤ 1 assigned task
    per worker" is deliberately NOT an invariant: an abandoner who walks
    away leaves his task ASSIGNED platform-side — under the traditional
    policy forever — while the scheduler correctly hands him new work.)
I4  A profile with ``current_task`` set points at a task that is ASSIGNED
    to that same worker.
I5  An *available* profile has no ``current_task``.
I6  Metric conservation: completed + expired never exceeds received;
    on-time <= completed; positive feedback <= completed (delegates to
    :meth:`MetricsCollector.check_conservation`).
I7  Metric/pool agreement: received = finished + in-flight (only on
    servers that never adopt migrated tasks; disabled otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..model.task import TaskPhase
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import REACTServer


class InvariantViolation(AssertionError):
    """A cross-component consistency rule was broken."""


def check_server_invariants(server: "REACTServer", strict_accounting: bool = True) -> None:
    """Audit every invariant; raise :class:`InvariantViolation` on failure."""
    tm = server.task_management

    # I1 — pool partition and phase agreement.
    pools = {
        "unassigned": (tm._unassigned, (TaskPhase.UNASSIGNED,)),
        "in_batch": (tm._in_batch, (TaskPhase.UNASSIGNED,)),
        "assigned": (tm._assigned, (TaskPhase.ASSIGNED,)),
        "deferred": (tm._deferred, (TaskPhase.UNASSIGNED,)),
        "finished": (tm._finished, (TaskPhase.COMPLETED, TaskPhase.EXPIRED)),
    }
    seen: dict[int, str] = {}
    for pool_name, (pool, allowed) in pools.items():
        for task_id, task in pool.items():
            if task_id in seen:
                raise InvariantViolation(
                    f"I1: task {task_id} in both {seen[task_id]} and {pool_name}"
                )
            seen[task_id] = pool_name
            if task.phase not in allowed:
                raise InvariantViolation(
                    f"I1: task {task_id} in pool {pool_name} has phase {task.phase}"
                )

    # I2/I3 — assigned tasks vs. workers.
    actively_claimed: dict[int, int] = {}
    for task in tm.assigned_tasks():
        worker_id = task.assigned_worker
        if worker_id is None:
            raise InvariantViolation(f"I2: assigned task {task.task_id} has no worker")
        if worker_id not in server.profiling:
            raise InvariantViolation(
                f"I2: task {task.task_id} assigned to unregistered worker {worker_id}"
            )
        profile = server.profiling.get(worker_id)
        if profile.current_task == task.task_id:
            if worker_id in actively_claimed:
                raise InvariantViolation(
                    f"I3: worker {worker_id} actively claims tasks "
                    f"{actively_claimed[worker_id]} and {task.task_id}"
                )
            actively_claimed[worker_id] = task.task_id

    # I4/I5 — profile-side consistency.
    for profile in server.profiling:
        if profile.current_task is not None:
            try:
                task = tm.get(profile.current_task)
            except KeyError:
                raise InvariantViolation(
                    f"I4: worker {profile.worker_id} references unknown task "
                    f"{profile.current_task}"
                ) from None
            if task.phase is not TaskPhase.ASSIGNED or task.assigned_worker != profile.worker_id:
                raise InvariantViolation(
                    f"I4: worker {profile.worker_id} claims task {task.task_id} "
                    f"(phase={task.phase}, assigned_worker={task.assigned_worker})"
                )
            if profile.available:
                raise InvariantViolation(
                    f"I5: worker {profile.worker_id} is available while on task "
                    f"{profile.current_task}"
                )

    # I6 — metric self-consistency.
    try:
        server.metrics.check_conservation()
    except AssertionError as exc:
        raise InvariantViolation(f"I6: {exc}") from exc

    # I7 — metric/pool agreement (single-origin servers only).
    if strict_accounting:
        finished = server.metrics.completed + server.metrics.expired_unassigned
        total = finished + tm.in_flight
        if total != server.metrics.received:
            raise InvariantViolation(
                f"I7: received={server.metrics.received} but "
                f"finished+in_flight={total}"
            )


@dataclass
class InvariantMonitor:
    """Re-audits a server every ``period`` simulated seconds."""

    engine: Engine
    server: "REACTServer"
    period: float = 1.0
    strict_accounting: bool = True
    audits: int = 0
    _process: Optional[PeriodicProcess] = None

    def start(self) -> "InvariantMonitor":
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self._process is not None:
            raise RuntimeError("monitor already started")
        self._process = PeriodicProcess(
            self.engine, period=self.period, action=self._audit,
            kind=EventKind.CALLBACK,
        )
        return self

    def _audit(self, now: float) -> None:
        self.audits += 1
        check_server_invariants(self.server, strict_accounting=self.strict_accounting)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None
