"""Resilience layer: graceful degradation under injected (or real) faults.

The chaos subsystem (:mod:`repro.chaos`) proves the platform *survives*
misbehaving reality; this module is what makes the survival graceful.
Three mechanisms, all declaratively configured by :class:`ResilienceConfig`
and all off by default (a server built without a config behaves exactly as
the paper's middleware):

* **Retry with exponential backoff** — a task withdrawn from its worker
  (Eq. 2, deadline expiry return) does not instantly rejoin the matcher's
  queue; it is parked for ``base * factor**(assignments-1)`` seconds
  (capped).  A task that keeps bouncing between dawdlers consumes matcher
  slots at a geometrically decreasing rate instead of thrashing.
* **Per-task reassignment budget** — after ``max_reassignments`` handouts
  the platform stops re-matching the task and retires it (counted in
  :attr:`~repro.stats.metrics.MetricsCollector.reassignment_budget_exhausted`),
  bounding the worst-case work amplification any single task can cause.
* **Degraded-mode scheduling** — :class:`DegradedModeController` watches
  every published batch's simulated matcher latency; when it exceeds
  ``latency_budget`` for ``trip_after`` consecutive batches the REACT WBGM
  matcher is swapped for the cheap fallback (Greedy by default), and swapped
  back after ``recover_after`` consecutive batches under budget.  This is
  the classic circuit-breaker shape: correctness of assignments is traded
  for queue drain speed only while the matcher is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.matching.base import Matcher
from ..core.matching.registry import create_matcher
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import SCHEDULER_TRACK
from ..sim.clock import EventClock
from ..stats.metrics import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduling import BatchRecord, SchedulingComponent


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilience layer (all mechanisms optional).

    ``retry_backoff_base <= 0`` disables the backoff (withdrawn tasks
    rejoin the queue immediately, the paper's behaviour);
    ``max_reassignments=None`` disables the budget; ``latency_budget=None``
    disables degraded mode.
    """

    #: First-retry park time in seconds (<= 0 disables backoff).
    retry_backoff_base: float = 2.0
    #: Multiplier applied per additional reassignment.
    retry_backoff_factor: float = 2.0
    #: Upper bound on any single park time.
    retry_backoff_cap: float = 30.0
    #: Total handouts allowed per task before it is retired (None = no cap).
    max_reassignments: Optional[int] = None
    #: Simulated matcher seconds per batch above which the batch counts as
    #: over budget (None disables the degraded-mode controller).
    latency_budget: Optional[float] = None
    #: Consecutive over-budget batches before the fallback engages.
    trip_after: int = 2
    #: Consecutive in-budget batches before the primary matcher returns.
    recover_after: int = 2
    #: Registry name of the fallback matcher.
    fallback_matcher: str = "greedy"

    def __post_init__(self) -> None:
        if self.retry_backoff_factor <= 0:
            raise ValueError("retry_backoff_factor must be positive")
        if self.retry_backoff_cap < 0:
            raise ValueError("retry_backoff_cap must be non-negative")
        if self.max_reassignments is not None and self.max_reassignments < 1:
            raise ValueError("max_reassignments must be >= 1 or None")
        if self.latency_budget is not None and self.latency_budget <= 0:
            raise ValueError("latency_budget must be positive or None")
        if self.trip_after < 1 or self.recover_after < 1:
            raise ValueError("trip_after/recover_after must be >= 1")

    @property
    def backoff_enabled(self) -> bool:
        return self.retry_backoff_base > 0

    def backoff_delay(self, assignments: int) -> float:
        """Park time before retry number ``assignments`` re-queues."""
        exponent = max(0, assignments - 1)
        return min(
            self.retry_backoff_cap,
            self.retry_backoff_base * self.retry_backoff_factor ** exponent,
        )


class DegradedModeController:
    """Latency circuit breaker: REACT WBGM -> fallback matcher and back."""

    def __init__(
        self,
        engine: EventClock,
        scheduling: "SchedulingComponent",
        config: ResilienceConfig,
        metrics: MetricsCollector,
        observability: Optional[ObservabilityLike] = None,
    ) -> None:
        if config.latency_budget is None:
            raise ValueError("DegradedModeController needs a latency_budget")
        self._engine = engine
        self._scheduling = scheduling
        self._config = config
        self._metrics = metrics
        obs = resolve(observability)
        self._tracer = obs.tracer
        self._obs_state = obs.registry.gauge(
            "react_degraded_mode", "1 while the fallback matcher is engaged"
        )
        self._primary: Matcher = scheduling.matcher
        self._fallback: Matcher = create_matcher(config.fallback_matcher)
        self._over = 0
        self._under = 0
        self._engaged_at: Optional[float] = None
        self.degraded = False

    def observe(self, record: "BatchRecord") -> None:
        """Feed one published batch; may trip or reset the breaker."""
        if record.simulated_seconds > self._config.latency_budget:
            self._over += 1
            self._under = 0
        else:
            self._under += 1
            self._over = 0
        if not self.degraded and self._over >= self._config.trip_after:
            self._engage()
        elif self.degraded and self._under >= self._config.recover_after:
            self._disengage()

    def _engage(self) -> None:
        self.degraded = True
        self._engaged_at = self._engine.now
        self._scheduling.set_matcher(self._fallback)
        self._metrics.degraded_mode_switches += 1
        self._obs_state.set(1)
        self._tracer.instant(
            "degraded.engage",
            cat="resilience",
            tid=SCHEDULER_TRACK,
            fallback=self._fallback.name,
        )

    def _disengage(self) -> None:
        self.degraded = False
        self._scheduling.set_matcher(self._primary)
        self._obs_state.set(0)
        duration = 0.0
        if self._engaged_at is not None:
            duration = self._engine.now - self._engaged_at
            self._metrics.degraded_mode_seconds += duration
            self._engaged_at = None
        self._tracer.instant(
            "degraded.disengage",
            cat="resilience",
            tid=SCHEDULER_TRACK,
            degraded_seconds=round(duration, 3),
        )

    def finalize(self) -> None:
        """End-of-run accounting: close an open degraded interval."""
        if self.degraded and self._engaged_at is not None:
            self._metrics.degraded_mode_seconds += self._engine.now - self._engaged_at
            self._engaged_at = self._engine.now
