"""REACT region server (§III-A, Figure 1).

Wires the four components — Profiling, Task Management, Scheduling, Dynamic
Assignment — to the discrete-event engine for one region, and owns the
simulation-side worker ground truth (:class:`WorkerBehavior`): when an
assignment is published the server draws the worker's *actual* duration and
schedules the completion event; the platform components never see that draw,
only its eventual outcome, exactly as the real middleware only observes what
human workers return.

Completion/withdrawal race: a dawdling worker whose task was pulled back by
Eq. (2) still "finishes" at his sampled time — the completion event checks
an assignment generation stamp and, finding the task gone, merely frees the
worker (the human walked away; no result was returned to the platform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.deadline import DeadlineEstimator
from ..graph.builders import AssignmentGraphBuilder, BudgetGate, RewardRange
from ..model.feedback import FeedbackModel
from ..model.task import Task, TaskPhase
from ..model.worker import WorkerBehavior, WorkerProfile
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import worker_track
from ..sim.clock import EventClock
from ..sim.events import Event, EventKind
from ..sim.process import PeriodicProcess
from ..sim.rng import STREAM_FEEDBACK, STREAM_MATCHER, STREAM_WORKER_BEHAVIOR, RngRegistry
from ..stats.duration_models import make_family
from ..stats.metrics import MetricsCollector, TaskOutcome
from .cost import CostModel, PaperCalibratedCost
from .dynamic_assignment import DynamicAssignmentComponent
from .policies import SchedulingPolicy
from .profiling import ProfilingComponent
from .resilience import DegradedModeController, ResilienceConfig
from .scheduling import BatchRecord, SchedulingComponent
from .task_management import TaskManagementComponent


@dataclass
class _Execution:
    """Simulator-side record of one in-flight worker execution."""

    task_id: int
    worker_id: int
    generation: int  # task.assignments stamp at scheduling time
    duration: float
    abandoned: bool = False
    #: handle on the scheduled TASK_COMPLETION event, so chaos injection can
    #: cancel the sampled finish and replace it (mass-abandonment waves)
    completion_event: Optional[Event] = None


class REACTServer:
    """One region's middleware instance driven by the simulation engine."""

    def __init__(
        self,
        engine: EventClock,
        policy: SchedulingPolicy,
        rng: RngRegistry,
        cost_model: Optional[CostModel] = None,
        metrics: Optional[MetricsCollector] = None,
        reward_ranges: Optional[Dict[int, RewardRange]] = None,
        resilience: Optional[ResilienceConfig] = None,
        observability: Optional[ObservabilityLike] = None,
        budget: Optional[BudgetGate] = None,
    ) -> None:
        self.engine = engine
        self.policy = policy
        self.resilience = resilience
        self.obs = resolve(observability)
        self.obs.bind_engine(engine)
        self._tracer = self.obs.tracer
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.metrics.bind_registry(self.obs.registry)
        cost_model = cost_model if cost_model is not None else PaperCalibratedCost()

        self.profiling = ProfilingComponent()
        self.task_management = TaskManagementComponent(budget=budget)
        self.estimator = DeadlineEstimator(
            min_history=policy.min_history,
            family=make_family(policy.duration_model),
        )
        # A departing worker's fit must not linger in the estimator cache
        # (unbounded growth under churn; stale entry if his id is reused).
        self.profiling.add_deregister_hook(self.estimator.evict)
        # Estimator fit-cache effectiveness, pulled at snapshot time (the
        # estimator itself keeps plain int counters; see docs/OBSERVABILITY.md).
        registry = self.obs.registry
        hits = registry.gauge(
            "react_fit_cache_hits", "DeadlineEstimator fit-cache hits"
        )
        misses = registry.gauge(
            "react_fit_cache_misses", "DeadlineEstimator fit-cache misses"
        )
        estimator = self.estimator
        registry.add_collect_hook(
            lambda: (hits.set(estimator.cache_hits), misses.set(estimator.cache_misses))
        )

        # With the probabilistic model off (traditional), edges are never
        # pruned: bound 0 keeps every candidate edge.
        bound = policy.edge_probability_bound if policy.use_probabilistic_model else 0.0
        builder = AssignmentGraphBuilder(
            weight_function=policy.build_weight_function(),
            estimator=self.estimator,
            edge_probability_bound=bound,
            reward_ranges=reward_ranges,
            budget=budget,
        )
        self.scheduling = SchedulingComponent(
            engine=engine,
            policy=policy,
            task_management=self.task_management,
            profiling=self.profiling,
            builder=builder,
            matcher=policy.build_matcher(),
            cost_model=cost_model,
            matcher_rng=rng.stream(STREAM_MATCHER),
            on_assign=self._on_assign,
            on_retired=self._on_retired,
            on_batch=self._on_batch,
            observability=self.obs,
        )
        self.degraded_mode: Optional[DegradedModeController] = None
        if resilience is not None and resilience.latency_budget is not None:
            self.degraded_mode = DegradedModeController(
                engine=engine,
                scheduling=self.scheduling,
                config=resilience,
                metrics=self.metrics,
                observability=self.obs,
            )
        self.dynamic_assignment = DynamicAssignmentComponent(
            engine=engine,
            policy=policy,
            task_management=self.task_management,
            profiling=self.profiling,
            estimator=self.estimator,
            on_withdraw=self._on_withdraw,
            observability=self.obs,
        )
        self._behaviors: Dict[int, WorkerBehavior] = {}
        self._behavior_rng = rng.stream(STREAM_WORKER_BEHAVIOR)
        self._feedback = FeedbackModel(rng.stream(STREAM_FEEDBACK))
        self._batch_timer: Optional[PeriodicProcess] = None
        self._started = False
        #: live executions keyed by (task_id, generation stamp); a task can
        #: have two live executions at once (an abandoner's stale draw plus
        #: the replacement worker's), hence the generation in the key
        self._live: Dict[Tuple[int, int], _Execution] = {}
        #: chaos hook (:class:`repro.chaos.NoShowFault`): may mutate each
        #: freshly drawn execution before its events are scheduled
        self.execution_hook: Optional[
            Callable[[_Execution, Task, WorkerProfile], None]
        ] = None
        #: budget hook (:mod:`repro.scenarios.budget`): called once per
        #: completed task with (task, worker_id) so the requester's ledger
        #: can be charged exactly when the reward is actually owed
        self.completion_hook: Optional[Callable[[Task, int], None]] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Arm the periodic batch trigger and the Eq. 2 monitor."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.dynamic_assignment.start()
        self._batch_timer = PeriodicProcess(
            self.engine,
            period=self.policy.batch_period,
            action=self.scheduling.periodic_trigger,
            kind=EventKind.BATCH_TRIGGER,
            cohort_action=self.scheduling.periodic_trigger_cohort,
        )

    def stop(self) -> None:
        self.dynamic_assignment.stop()
        if self._batch_timer is not None:
            self._batch_timer.stop()
            self._batch_timer = None
        if self.degraded_mode is not None:
            self.degraded_mode.finalize()
        self._started = False

    # -------------------------------------------------------------- workers
    def add_worker(
        self, profile: WorkerProfile, behavior: Optional[WorkerBehavior] = None
    ) -> None:
        if behavior is None:
            raise ValueError(
                "REACTServer simulates worker outcomes and requires a "
                "WorkerBehavior; live workers belong on a LiveRegionServer"
            )
        self.profiling.register(profile)
        self._behaviors[profile.worker_id] = behavior

    def remove_worker(self, worker_id: int) -> None:
        """Worker churn: an online worker leaves the region.

        A task he was executing is withdrawn and re-queued (the paper's
        Dynamic Assignment Component "is able to deal with changes in the
        worker set ... by reassigning the tasks when workers abandon the
        system").
        """
        profile = self.profiling.get(worker_id)
        profile.online = False
        if profile.current_task is not None:
            task = self.task_management.get(profile.current_task)
            if task.phase is TaskPhase.ASSIGNED and task.assigned_worker == worker_id:
                self.task_management.withdraw(task)
                profile.detach_task()
                self._tracer.instant(
                    "task.withdrawn",
                    cat="task",
                    task_id=task.task_id,
                    worker_id=worker_id,
                    reason="worker_departed",
                )
                self._requeue_after_withdrawal(task)
                self.scheduling.maybe_trigger()
        self.profiling.deregister(worker_id)
        self._behaviors.pop(worker_id, None)

    # ---------------------------------------------------------------- tasks
    def submit_task(self, task: Task) -> None:
        """Requester entry point: register the task and poke the scheduler."""
        task.submitted_at = self.engine.now if task.submitted_at == 0.0 else task.submitted_at
        self.metrics.record_received()
        self._tracer.instant(
            "task.submitted", cat="task", task_id=task.task_id, deadline=task.deadline
        )
        if not self.task_management.add_task(task):
            self._record_budget_shed(task)
            return
        self.scheduling.maybe_trigger()

    def adopt_task(self, task: Task) -> None:
        """Take over a task migrated from another server (region split).

        Unlike :meth:`submit_task`, the task was already counted as
        received by its original server, so only the queueing happens here.
        """
        self._tracer.instant("task.adopted", cat="task", task_id=task.task_id)
        if not self.task_management.add_task(task):
            self._record_budget_shed(task)
            return
        self.scheduling.maybe_trigger()

    def _record_budget_shed(self, task: Task) -> None:
        """Load shedding: intake refused the task (requester budget dry).

        Books the same expired-unassigned outcome as a queue retirement so
        ``check_conservation`` still balances (finished = completed + shed).
        """
        self._tracer.instant(
            "task.shed",
            cat="task",
            task_id=task.task_id,
            reason="budget_exhausted",
            requester_id=task.requester_id,
        )
        self.metrics.record_expired_unassigned(
            TaskOutcome(
                task_id=task.task_id,
                submitted_at=task.submitted_at,
                completed_at=None,
                deadline=task.deadline,
                met_deadline=False,
                positive_feedback=False,
                assignments=task.assignments,
                final_worker=None,
                worker_time=None,
                total_time=None,
            )
        )

    # ------------------------------------------------------------ callbacks
    def _on_assign(self, task: Task, worker: WorkerProfile) -> None:
        """Assignment published: draw the true outcome, schedule its events."""
        self.metrics.record_assignment(first=task.assignments == 1)
        self._tracer.instant(
            "task.assigned",
            cat="task",
            task_id=task.task_id,
            worker_id=worker.worker_id,
            generation=task.assignments,
        )
        behavior = self._behaviors[worker.worker_id]
        draw = behavior.sample_outcome(self._behavior_rng)
        execution = _Execution(
            task_id=task.task_id,
            worker_id=worker.worker_id,
            generation=task.assignments,
            duration=draw.duration,
            abandoned=draw.abandoned,
        )
        if self.execution_hook is not None:
            self.execution_hook(execution, task, worker)
        execution.completion_event = self.engine.schedule(
            execution.duration,
            EventKind.TASK_COMPLETION,
            self._on_completion,
            payload=execution,
        )
        self._live[(execution.task_id, execution.generation)] = execution
        # AMT expiry semantics: if the deadline passes while the task is
        # still out with this worker, the platform pulls it back.  Only
        # armed when the deadline is still ahead — a task knowingly handed
        # out late (traditional's assign_expired) runs to completion.
        if self.policy.expire_running_tasks:
            remaining = task.absolute_deadline - self.engine.now
            if remaining > 0:
                self.engine.schedule(
                    remaining,
                    EventKind.CALLBACK,
                    self._on_running_expiry,
                    payload=execution,
                    transient=True,
                )

    def _on_completion(self, event: Event) -> None:
        execution: _Execution = event.payload
        now = self.engine.now
        self._live.pop((execution.task_id, execution.generation), None)
        try:
            task = self.task_management.get(execution.task_id)
        except KeyError:  # pragma: no cover - tasks are never deleted
            task = None
        stale = (
            task is None
            or task.phase is not TaskPhase.ASSIGNED
            or task.assigned_worker != execution.worker_id
            or task.assignments != execution.generation
        )
        if stale:
            # The task was withdrawn (or the worker deregistered) while the
            # human dawdled; his sampled duration just elapsed — free him.
            self.profiling.release_after_dawdle(execution.worker_id)
            self._tracer.instant(
                "worker.dawdle_end",
                cat="task",
                task_id=execution.task_id,
                worker_id=execution.worker_id,
            )
            return
        if execution.abandoned:
            # The worker walks away without informing the platform (§IV-B):
            # he becomes available for other tasks, but the task stays
            # "assigned" until Eq. 2 or the deadline-expiry pulls it back.
            self.profiling.get(execution.worker_id).release()
            self._tracer.instant(
                "task.abandoned",
                cat="task",
                task_id=execution.task_id,
                worker_id=execution.worker_id,
            )
            return

        self.task_management.complete(task, now)
        self._tracer.complete(
            "task.execution",
            start=now - execution.duration,
            end=now,
            cat="task",
            tid=worker_track(execution.worker_id),
            task_id=task.task_id,
            worker_id=execution.worker_id,
            on_time=task.met_deadline,
        )
        on_time = task.met_deadline
        behavior = self._behaviors[execution.worker_id]
        outcome_fb = self._feedback.judge(behavior, on_time, category=task.category)
        self.profiling.record_completion(
            execution.worker_id,
            execution_time=execution.duration,
            category=task.category,
            positive_feedback=outcome_fb.positive,
        )
        self.metrics.record_completion(
            TaskOutcome(
                task_id=task.task_id,
                submitted_at=task.submitted_at,
                completed_at=now,
                deadline=task.deadline,
                met_deadline=on_time,
                positive_feedback=outcome_fb.positive,
                assignments=task.assignments,
                final_worker=execution.worker_id,
                worker_time=task.worker_time,
                total_time=task.total_time,
            )
        )
        if self.completion_hook is not None:
            self.completion_hook(task, execution.worker_id)
        # A completion frees a worker; queued tasks may now be matchable.
        self.scheduling.maybe_trigger()

    def _on_running_expiry(self, event: Event) -> None:
        """AMT semantics: the deadline lapsed while the task was out.

        The task returns to the repository as unassigned (§II).  The worker,
        if he is still nominally on it, keeps dawdling until his sampled
        finish time; an abandoner has already walked away.
        """
        execution: _Execution = event.payload
        try:
            task = self.task_management.get(execution.task_id)
        except KeyError:  # pragma: no cover - tasks are never deleted
            return
        if (
            task.phase is not TaskPhase.ASSIGNED
            or task.assigned_worker != execution.worker_id
            or task.assignments != execution.generation
        ):
            return
        assigned_at = task.assigned_at if task.assigned_at is not None else self.engine.now
        elapsed = self.engine.now - assigned_at
        self.task_management.withdraw(task)
        self.metrics.expiry_returns += 1
        self._tracer.instant(
            "task.expiry_return",
            cat="task",
            task_id=task.task_id,
            worker_id=execution.worker_id,
        )
        profile = self.profiling.get(execution.worker_id)
        if profile.current_task == execution.task_id:
            # Still nominally on it: record the censored hold time and
            # detach (an abandoner who already walked away was released —
            # and his hold recorded — by the completion event).
            profile.record_censored(elapsed)
            profile.detach_task()
            if self.policy.release_on_reassign:
                profile.release()
        self._requeue_after_withdrawal(task)
        self.scheduling.maybe_trigger()

    def _on_withdraw(self, task: Task) -> None:
        self._requeue_after_withdrawal(task)
        self.scheduling.maybe_trigger()

    def _on_batch(self, record: BatchRecord) -> None:
        self.metrics.record_matcher_run(record.simulated_seconds)
        if self.degraded_mode is not None:
            self.degraded_mode.observe(record)

    # ----------------------------------------------------------- resilience
    def _requeue_after_withdrawal(self, task: Task) -> None:
        """Apply the resilience policy to a freshly withdrawn task.

        Without a :class:`ResilienceConfig` this is a no-op and the task —
        already back in the unassigned pool — is immediately matchable, the
        paper's behaviour.  With one, the task is either retired (its
        reassignment budget is spent) or parked for an exponential-backoff
        delay before the matcher may see it again.
        """
        config = self.resilience
        if config is None or task.phase is not TaskPhase.UNASSIGNED:
            return
        if not self.task_management.is_queued(task.task_id):
            return
        if (
            config.max_reassignments is not None
            and task.assignments >= config.max_reassignments
        ):
            self.task_management.retire_unassigned(task)
            self.metrics.reassignment_budget_exhausted += 1
            self._tracer.instant(
                "task.retired",
                cat="resilience",
                task_id=task.task_id,
                reason="reassignment_budget",
                assignments=task.assignments,
            )
            self.metrics.record_expired_unassigned(
                TaskOutcome(
                    task_id=task.task_id,
                    submitted_at=task.submitted_at,
                    completed_at=None,
                    deadline=task.deadline,
                    met_deadline=False,
                    positive_feedback=False,
                    assignments=task.assignments,
                    final_worker=None,
                    worker_time=None,
                    total_time=None,
                )
            )
            return
        if config.backoff_enabled:
            delay = config.backoff_delay(task.assignments)
            if delay > 0:
                self.task_management.defer(task)
                self.metrics.deferred_retries += 1
                self._tracer.instant(
                    "task.deferred",
                    cat="resilience",
                    task_id=task.task_id,
                    delay=delay,
                    assignments=task.assignments,
                )
                self.engine.schedule(
                    delay,
                    EventKind.CALLBACK,
                    self._on_deferred_release,
                    payload=task,
                    transient=True,
                )

    def _on_deferred_release(self, event: Event) -> None:
        task: Task = event.payload
        if self.task_management.release_deferred(task):
            self.scheduling.maybe_trigger()

    # ----------------------------------------------------- chaos interface
    def live_execution(self, task_id: int, generation: int) -> Optional[_Execution]:
        """The in-flight execution for (task, generation), if any."""
        return self._live.get((task_id, generation))

    def inject_abandonment(self, task_id: int) -> bool:
        """Chaos: the worker on ``task_id`` walks away *right now* (§IV-B).

        Cancels his sampled finish and replays the abandonment path
        immediately: the worker is freed without returning a result and the
        task stays ASSIGNED until Eq. 2 or the deadline expiry rescues it —
        exactly the paper's silent-abandonment semantics, just at an
        injected instant.  Returns False when the task has no live
        current-generation execution to corrupt.
        """
        try:
            task = self.task_management.get(task_id)
        except KeyError:
            return False
        if task.phase is not TaskPhase.ASSIGNED:
            return False
        execution = self._live.get((task_id, task.assignments))
        if execution is None:
            return False
        if execution.completion_event is not None:
            self.engine.cancel(execution.completion_event)
        execution.abandoned = True
        execution.completion_event = self.engine.schedule(
            0.0, EventKind.TASK_COMPLETION, self._on_completion, payload=execution
        )
        self.metrics.chaos_abandonments += 1
        return True

    def orphan_assigned_tasks(self) -> List[int]:
        """Chaos: a blackout wipes the server's assignment state.

        Every assigned task is pulled back into the unassigned pool (from
        which recovery re-adopts it) and its worker — if he still claims it
        — is detached and freed; his pending completion becomes a stale
        dawdle via the usual generation/phase check.  Returns the orphaned
        task ids.
        """
        now = self.engine.now
        orphaned: List[int] = []
        for task in self.task_management.assigned_tasks():
            worker_id = task.assigned_worker
            assigned_at = task.assigned_at if task.assigned_at is not None else now
            self.task_management.withdraw(task)
            if worker_id is not None and worker_id in self.profiling:
                self.profiling.record_withdrawal(
                    worker_id,
                    elapsed=now - assigned_at,
                    release=True,
                    task_id=task.task_id,
                )
            orphaned.append(task.task_id)
        self.metrics.blackout_orphaned += len(orphaned)
        return orphaned

    def _on_retired(self, retired: list[Task]) -> None:
        for task in retired:
            self._tracer.instant(
                "task.expired", cat="task", task_id=task.task_id
            )
            self.metrics.record_expired_unassigned(
                TaskOutcome(
                    task_id=task.task_id,
                    submitted_at=task.submitted_at,
                    completed_at=None,
                    deadline=task.deadline,
                    met_deadline=False,
                    positive_feedback=False,
                    assignments=task.assignments,
                    final_worker=None,
                    worker_time=None,
                    total_time=None,
                )
            )

    # -------------------------------------------------------------- summary
    def drain_and_summary(self) -> Dict[str, float]:
        """Metrics summary plus queue state (for end-of-run reporting)."""
        summary = self.metrics.summary()
        summary["pending_unassigned"] = self.task_management.unassigned_count
        summary["pending_assigned"] = self.task_management.assigned_count
        summary["pending_deferred"] = self.task_management.deferred_count
        summary["withdrawals"] = len(self.dynamic_assignment.withdrawals)
        summary["batches"] = len(self.scheduling.batches)
        summary["aborted_batches"] = self.scheduling.aborted_batches
        return summary
