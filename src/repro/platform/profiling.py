"""Profiling Component (§III-A).

"Responsible to keep track of the workers' information and statistics": for
every registered worker it maintains geographic location, availability
status, completion times and per-category feedback accuracy.  This is the
*platform-observable* worker state — the latent ground-truth behaviour lives
with the simulator (:mod:`repro.model.worker`), never here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..model.task import TaskCategory
from ..model.worker import WorkerProfile


class ProfilingComponent:
    """Registry of worker profiles for one REACT server's region."""

    def __init__(self) -> None:
        self._profiles: Dict[int, WorkerProfile] = {}
        #: Chaos hook (:class:`repro.chaos.StaleProfileFault`): maps a raw
        #: ``(worker_id, execution_time)`` observation to the value actually
        #: stored, letting fault injection feed the profiler stale or
        #: corrupted measurements without touching the true outcome.
        self.observation_hook: Optional[Callable[[int, float], float]] = None
        self._deregister_hooks: List[Callable[[int], None]] = []

    # ---------------------------------------------------------- membership
    def register(self, profile: WorkerProfile) -> None:
        if profile.worker_id in self._profiles:
            raise ValueError(f"worker {profile.worker_id} is already registered")
        self._profiles[profile.worker_id] = profile

    def add_deregister_hook(self, hook: Callable[[int], None]) -> None:
        """Subscribe to worker departures (churn / region migration).

        Used to invalidate per-worker caches held elsewhere — notably the
        :class:`~repro.core.deadline.DeadlineEstimator` fit cache, which
        would otherwise retain an entry for every worker that ever trained.
        """
        self._deregister_hooks.append(hook)

    def deregister(self, worker_id: int) -> WorkerProfile:
        """Remove a worker (churn); raises ``KeyError`` if unknown."""
        profile = self._profiles.pop(worker_id)
        for hook in self._deregister_hooks:
            hook(worker_id)
        return profile

    def get(self, worker_id: int) -> WorkerProfile:
        return self._profiles[worker_id]

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[WorkerProfile]:
        return iter(self._profiles.values())

    # ------------------------------------------------------------- queries
    def available_workers(self) -> List[WorkerProfile]:
        """Workers that are online and not executing a task, in a stable
        (registration) order so batch construction is deterministic."""
        return [p for p in self._profiles.values() if p.online and p.available]

    def any_available(self) -> bool:
        """Whether at least one worker is online and free.

        Early-exit form of ``bool(available_workers())`` for the batch
        trigger guards, which run on every arrival/completion and only need
        existence, not the list.
        """
        return any(p.online and p.available for p in self._profiles.values())

    def busy_workers(self) -> List[WorkerProfile]:
        return [p for p in self._profiles.values() if p.online and not p.available]

    # ------------------------------------------------------------- updates
    def record_assignment(self, worker_id: int, task_id: int) -> None:
        self._profiles[worker_id].assign(task_id)

    def record_completion(
        self,
        worker_id: int,
        execution_time: float,
        category: TaskCategory,
        positive_feedback: bool,
    ) -> None:
        """Store a finished task's stats and free the worker."""
        profile = self._profiles[worker_id]
        if self.observation_hook is not None:
            execution_time = self.observation_hook(worker_id, execution_time)
        profile.record_completion(execution_time, category, positive_feedback)
        profile.release()

    def record_withdrawal(
        self,
        worker_id: int,
        elapsed: float,
        release: bool,
        task_id: Optional[int] = None,
    ) -> None:
        """The platform pulled the worker's task after ``elapsed`` seconds.

        The elapsed hold time enters the profile as a *censored* duration
        observation (the worker takes at least that long), so chronic
        dawdlers accumulate a heavy-tailed history and Eq. 3 stops routing
        tasks to them.  ``release`` follows
        :attr:`SchedulingPolicy.release_on_reassign`: when False the worker
        remains unavailable until his sampled finish time (he is presumed
        still dawdling on the withdrawn task).

        ``task_id`` identifies *which* task was withdrawn.  The worker's
        availability is only touched when his profile still claims that very
        task: a worker who silently abandoned it was already released at his
        sampled walk-away time and may since have been matched to a *newer*
        task — blindly detaching would kick him off the task he is actually
        executing, making him matchable a second time while the newer task
        is still assigned to him (the completion/withdrawal generation-stamp
        race; see ``tests/chaos/test_generation_stamp_race.py``).  ``None``
        preserves the legacy unguarded behaviour for direct component use.
        """
        profile = self._profiles[worker_id]
        profile.record_censored(elapsed)
        if task_id is not None and profile.current_task != task_id:
            return
        profile.detach_task()
        if release:
            profile.release()

    def release_after_dawdle(self, worker_id: int) -> None:
        """A dawdling worker's sampled duration elapsed; he is free again."""
        profile = self._profiles.get(worker_id)
        if profile is not None and not profile.available and profile.current_task is None:
            profile.release()

    # ------------------------------------------------------------ summary
    def trained_count(self, min_history: int) -> int:
        return sum(1 for p in self._profiles.values() if p.completed_tasks >= min_history)
