"""Dynamic Assignment Component (§III-A, §IV-B).

Periodically sweeps every assigned task and evaluates Eq. (2) — the
probability that the current worker finishes inside the remaining window,
given that ``t_ij`` seconds have already elapsed — against the worker's
power-law profile.  When the probability drops below the policy threshold
(10% in the paper) the task is withdrawn and handed back to the Scheduling
Component "so as to enable the Scheduling Component to find a better match".

Per §V-C, a worker with fewer than ``z = 3`` completed tasks is never
reassigned (the system is still training his profile), and a task whose
deadline has already passed is left with its worker — no other worker could
beat the deadline either, so reassignment would only waste a second slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.deadline import DeadlineEstimator
from ..model.task import Task
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import MONITOR_TRACK
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import PeriodicProcess
from .policies import SchedulingPolicy
from .profiling import ProfilingComponent
from .task_management import TaskManagementComponent


@dataclass(frozen=True)
class Withdrawal:
    """Trace record of one Eq. 2-triggered reassignment."""

    time: float
    task_id: int
    worker_id: int
    elapsed: float
    probability: float


class DynamicAssignmentComponent:
    """The Eq. (2) monitor loop."""

    def __init__(
        self,
        engine: Engine,
        policy: SchedulingPolicy,
        task_management: TaskManagementComponent,
        profiling: ProfilingComponent,
        estimator: DeadlineEstimator,
        on_withdraw: Callable[[Task], None],
        observability: Optional[ObservabilityLike] = None,
    ) -> None:
        self._engine = engine
        self._policy = policy
        self._tasks = task_management
        self._profiles = profiling
        self._estimator = estimator
        self._on_withdraw = on_withdraw
        self._process: Optional[PeriodicProcess] = None
        obs = resolve(observability)
        self._tracer = obs.tracer
        self._obs_sweeps = obs.registry.counter(
            "react_sweeps_total", "Eq. 2 monitor sweeps that evaluated >= 1 task"
        )
        self._obs_evaluations = obs.registry.counter(
            "react_sweep_evaluations_total", "Assigned tasks evaluated against Eq. 2"
        )
        self._obs_withdrawals = obs.registry.counter(
            "react_sweep_withdrawals_total", "Tasks withdrawn by the Eq. 2 rule"
        )
        self.withdrawals: List[Withdrawal] = []
        #: Chaos switch (:class:`repro.chaos.SweepOutageFault` / blackout):
        #: while True the periodic sweep fires but evaluates nothing, so no
        #: dawdling task is rescued until the outage lifts.
        self.suspended = False

    def start(self) -> None:
        """Begin the periodic sweep (no-op when the model is disabled)."""
        if not self._policy.use_probabilistic_model:
            return
        if self._process is not None:
            raise RuntimeError("monitor already started")
        self._process = PeriodicProcess(
            self._engine,
            period=self._policy.reassign_check_interval,
            action=self.sweep,
            kind=EventKind.REASSIGNMENT_CHECK,
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # --------------------------------------------------------------- sweep
    def sweep(self, now: float) -> int:
        """Evaluate Eq. (2) for every running task; withdraw the hopeless.

        All assigned tasks are evaluated in one batched estimator call
        (stacked power-law parameters, see
        :meth:`~repro.core.deadline.DeadlineEstimator.window_probability_batch`)
        before any withdrawal is materialized; withdrawals then happen in
        the same task order as the original per-task loop.  The one
        sequential dependency is preserved explicitly: a withdrawal feeds a
        censored observation into the worker's history, so in the rare case
        the same worker backs *another* assigned task later in the sweep
        (the silent-abandonment re-match race), that task is re-evaluated
        against the updated profile instead of using the batch value.

        Returns the number of withdrawals performed this sweep.
        """
        if self.suspended:
            return 0
        tasks = self._tasks.assigned_tasks()
        if not tasks:
            return 0
        threshold = self._policy.reassign_threshold
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(f"threshold must be in [0,1], got {threshold}")

        profiles = []
        elapsed = np.empty(len(tasks), dtype=np.float64)
        ttd = np.empty(len(tasks), dtype=np.float64)
        for idx, task in enumerate(tasks):
            worker_id = task.assigned_worker
            assert worker_id is not None and task.assigned_at is not None
            profiles.append(self._profiles.get(worker_id))
            elapsed[idx] = now - task.assigned_at
            # TimeToDeadline_ij is anchored at the assignment instant.
            ttd[idx] = task.absolute_deadline - task.assigned_at
        probs, trained = self._estimator.window_probability_batch(
            profiles, elapsed, ttd
        )

        pulled = 0
        withdrawn_workers: set[int] = set()
        for idx, task in enumerate(tasks):
            worker_id = task.assigned_worker
            assert worker_id is not None
            if worker_id in withdrawn_workers:
                # This worker's history changed earlier in the sweep;
                # re-evaluate sequentially (matches the pre-batch loop).
                estimate = self._estimator.window_probability(
                    profiles[idx], float(elapsed[idx]), float(ttd[idx])
                )
                if not estimate.trained or estimate.probability >= threshold:
                    continue
                probability = estimate.probability
            else:
                if not trained[idx] or probs[idx] >= threshold:
                    continue
                probability = float(probs[idx])
            self._tasks.withdraw(task)
            self._profiles.record_withdrawal(
                worker_id,
                elapsed=float(elapsed[idx]),
                release=self._policy.release_on_reassign,
                task_id=task.task_id,
            )
            self.withdrawals.append(
                Withdrawal(
                    time=now,
                    task_id=task.task_id,
                    worker_id=worker_id,
                    elapsed=float(elapsed[idx]),
                    probability=probability,
                )
            )
            self._tracer.instant(
                "task.withdrawn",
                cat="task",
                tid=MONITOR_TRACK,
                task_id=task.task_id,
                worker_id=worker_id,
                reason="eq2",
                probability=round(probability, 6),
                elapsed=round(float(elapsed[idx]), 3),
            )
            withdrawn_workers.add(worker_id)
            pulled += 1
            self._on_withdraw(task)
        self._obs_sweeps.inc()
        self._obs_evaluations.inc(len(tasks))
        self._obs_withdrawals.inc(pulled)
        self._tracer.instant(
            "sweep",
            cat="monitor",
            tid=MONITOR_TRACK,
            evaluated=len(tasks),
            withdrawn=pulled,
        )
        return pulled
