"""Dynamic Assignment Component (§III-A, §IV-B).

Periodically sweeps every assigned task and evaluates Eq. (2) — the
probability that the current worker finishes inside the remaining window,
given that ``t_ij`` seconds have already elapsed — against the worker's
power-law profile.  When the probability drops below the policy threshold
(10% in the paper) the task is withdrawn and handed back to the Scheduling
Component "so as to enable the Scheduling Component to find a better match".

Per §V-C, a worker with fewer than ``z = 3`` completed tasks is never
reassigned (the system is still training his profile), and a task whose
deadline has already passed is left with its worker — no other worker could
beat the deadline either, so reassignment would only waste a second slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.deadline import DeadlineEstimator
from ..model.task import Task
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import MONITOR_TRACK
from ..sim.clock import EventClock
from ..sim.events import EventKind
from ..sim.process import PeriodicProcess
from .policies import SchedulingPolicy
from .profiling import ProfilingComponent
from .task_management import TaskManagementComponent


@dataclass(frozen=True)
class Withdrawal:
    """Trace record of one Eq. 2-triggered reassignment."""

    time: float
    task_id: int
    worker_id: int
    elapsed: float
    probability: float


class DynamicAssignmentComponent:
    """The Eq. (2) monitor loop."""

    def __init__(
        self,
        engine: EventClock,
        policy: SchedulingPolicy,
        task_management: TaskManagementComponent,
        profiling: ProfilingComponent,
        estimator: DeadlineEstimator,
        on_withdraw: Callable[[Task], None],
        observability: Optional[ObservabilityLike] = None,
    ) -> None:
        self._engine = engine
        self._policy = policy
        self._tasks = task_management
        self._profiles = profiling
        self._estimator = estimator
        self._on_withdraw = on_withdraw
        self._process: Optional[PeriodicProcess] = None
        obs = resolve(observability)
        self._tracer = obs.tracer
        self._obs_sweeps = obs.registry.counter(
            "react_sweeps_total", "Eq. 2 monitor sweeps that evaluated >= 1 task"
        )
        self._obs_evaluations = obs.registry.counter(
            "react_sweep_evaluations_total", "Assigned tasks evaluated against Eq. 2"
        )
        self._obs_withdrawals = obs.registry.counter(
            "react_sweep_withdrawals_total", "Tasks withdrawn by the Eq. 2 rule"
        )
        self.withdrawals: List[Withdrawal] = []
        #: Chaos switch (:class:`repro.chaos.SweepOutageFault` / blackout):
        #: while True the periodic sweep fires but evaluates nothing, so no
        #: dawdling task is rescued until the outage lifts.
        self.suspended = False
        # Crossing-time skip cache: task_id → (worker_id, observation count,
        # assigned_at, horizon, ttd).  While the key fields are unchanged,
        # any sweep with elapsed < horizon provably reports Eq. 2 ≥ threshold
        # (see DeadlineEstimator.withdrawal_skip_horizon), so the row's
        # batch evaluation is skipped without changing any decision.  The TTD
        # rides along because it is constant per (task, assigned_at) and its
        # recomputation (a property chain) showed up in sweep profiles.
        self._skip_horizon: dict[int, tuple[int, int, float, float, float]] = {}
        self._skip_threshold: Optional[float] = None

    def start(self) -> None:
        """Begin the periodic sweep (no-op when the model is disabled)."""
        if not self._policy.use_probabilistic_model:
            return
        if self._process is not None:
            raise RuntimeError("monitor already started")
        self._process = PeriodicProcess(
            self._engine,
            period=self._policy.reassign_check_interval,
            action=self.sweep,
            kind=EventKind.REASSIGNMENT_CHECK,
            cohort_action=self.sweep_cohort,
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # --------------------------------------------------------------- sweep
    def sweep_cohort(self, now: float, count: int) -> int:
        """Cohort entry point: ``count`` coincident monitor events, one call.

        Each coincident monitor event still performs a full sweep pass —
        a withdrawal inside pass *k* changes the assigned set that pass
        *k + 1* must observe, exactly as the sequential dispatch would —
        but the passes arrive as one batched dispatch, and every pass
        evaluates its whole task set through the one stacked Eq. 2 call.
        """
        pulled = 0
        for _ in range(count):
            pulled += self.sweep(now)
        return pulled

    def sweep(self, now: float) -> int:
        """Evaluate Eq. (2) for every running task; withdraw the hopeless.

        Rows that provably cannot be withdrawn yet are skipped outright via
        the crossing-time cache (closed windows, and tasks whose elapsed
        time sits under the conservative horizon from
        :meth:`~repro.core.deadline.DeadlineEstimator.withdrawal_skip_horizon`);
        the remaining rows are evaluated in one batched estimator call
        (stacked power-law parameters, see
        :meth:`~repro.core.deadline.DeadlineEstimator.window_probability_batch`)
        before any withdrawal is materialized.  Withdrawals happen in the
        same task order as the original per-task loop, and the one
        sequential dependency is preserved explicitly: a withdrawal feeds a
        censored observation into the worker's history, so in the rare case
        the same worker backs *another* assigned task later in the sweep
        (the silent-abandonment re-match race), that task is re-evaluated
        against the updated profile — skipped or not — instead of using the
        batch value.  The evaluation counters keep counting every assigned
        task: a skipped row *is* an Eq. 2 decision, just one reached without
        recomputing the probability.

        Returns the number of withdrawals performed this sweep.
        """
        if self.suspended:
            return 0
        tasks = self._tasks.assigned_tasks()
        if not tasks:
            return 0
        threshold = self._policy.reassign_threshold
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(f"threshold must be in [0,1], got {threshold}")

        n = len(tasks)
        get_profile = self._profiles.get
        estimator = self._estimator
        cache = self._skip_horizon
        if threshold != self._skip_threshold:
            # Cached horizons embed the threshold; a mid-run policy change
            # (ablation harnesses mutate policies) invalidates them all.
            cache.clear()
            self._skip_threshold = threshold
        workers_l: List[int] = []
        # Row index into the batch arrays per task, -1 for skipped rows.
        row_of = [-1] * n
        eval_profiles = []
        eval_elapsed: List[float] = []
        eval_ttd: List[float] = []
        for idx, task in enumerate(tasks):
            worker_id = task.assigned_worker
            assigned_at = task.assigned_at
            assert worker_id is not None and assigned_at is not None
            workers_l.append(worker_id)
            elapsed_i = now - assigned_at
            profile = get_profile(worker_id)
            n_obs = len(profile.execution_times)
            entry = cache.get(task.task_id)
            if (
                entry is not None
                and entry[0] == worker_id
                and entry[1] == n_obs
                and entry[2] == assigned_at
            ):
                # Cached TTD is exact: the deadline is fixed per task and the
                # anchor (assigned_at) is part of the cache key.
                ttd_i = entry[4]
                if elapsed_i < entry[3] or ttd_i <= elapsed_i:
                    # Under the horizon, or window closed (Eq. 2 reports
                    # untrained/0.0 — never a withdrawal, and the window
                    # only closes further): skip the batch evaluation.
                    continue
            else:
                # TimeToDeadline_ij is anchored at the assignment instant.
                ttd_i = task.absolute_deadline - assigned_at
                if ttd_i <= elapsed_i:
                    continue
                horizon = estimator.withdrawal_skip_horizon(profile, ttd_i, threshold)
                cache[task.task_id] = (worker_id, n_obs, assigned_at, horizon, ttd_i)
                if elapsed_i < horizon:
                    continue
            row_of[idx] = len(eval_profiles)
            eval_profiles.append(profile)
            eval_elapsed.append(elapsed_i)
            eval_ttd.append(ttd_i)

        if eval_profiles:
            probs, trained = estimator.window_probability_batch(
                eval_profiles,
                np.asarray(eval_elapsed, dtype=np.float64),
                np.asarray(eval_ttd, dtype=np.float64),
            )
        else:
            probs = trained = ()

        pulled = 0
        withdrawn_workers: set[int] = set()
        for idx, task in enumerate(tasks):
            worker_id = workers_l[idx]
            if worker_id in withdrawn_workers:
                # This worker's history changed earlier in the sweep;
                # re-evaluate sequentially (matches the pre-batch loop).
                assigned_at = task.assigned_at
                assert assigned_at is not None
                elapsed_i = now - assigned_at
                estimate = estimator.window_probability(
                    get_profile(worker_id),
                    elapsed_i,
                    task.absolute_deadline - assigned_at,
                )
                if not estimate.trained or estimate.probability >= threshold:
                    continue
                probability = estimate.probability
            else:
                row = row_of[idx]
                if row < 0 or not trained[row] or probs[row] >= threshold:
                    continue
                probability = float(probs[row])
                elapsed_i = eval_elapsed[row]
            self._tasks.withdraw(task)
            self._profiles.record_withdrawal(
                worker_id,
                elapsed=elapsed_i,
                release=self._policy.release_on_reassign,
                task_id=task.task_id,
            )
            self.withdrawals.append(
                Withdrawal(
                    time=now,
                    task_id=task.task_id,
                    worker_id=worker_id,
                    elapsed=elapsed_i,
                    probability=probability,
                )
            )
            self._tracer.instant(
                "task.withdrawn",
                cat="task",
                tid=MONITOR_TRACK,
                task_id=task.task_id,
                worker_id=worker_id,
                reason="eq2",
                probability=round(probability, 6),
                elapsed=round(elapsed_i, 3),
            )
            withdrawn_workers.add(worker_id)
            pulled += 1
            self._on_withdraw(task)
        if len(cache) > 2 * n + 256:
            live = {task.task_id for task in tasks}
            for dead in [tid for tid in cache if tid not in live]:
                del cache[dead]
        self._obs_sweeps.inc()
        self._obs_evaluations.inc(n)
        self._obs_withdrawals.inc(pulled)
        self._tracer.instant(
            "sweep",
            cat="monitor",
            tid=MONITOR_TRACK,
            evaluated=n,
            withdrawn=pulled,
        )
        return pulled
