"""Multi-region coordinator (§III-A spatial decomposition; §V-D remedy).

Routes each worker and task to the REACT server owning its geographic
region, and implements the overload remedy the paper proposes for its
scalability limits: "One possible solution for that problem is to split the
regions so that each of the servers would contain sufficient workers and
tasks without being overloaded."

Splitting re-partitions an overloaded region's *future* arrivals between two
child servers; workers currently registered are re-routed by their location,
while in-flight tasks finish on their original server (a live migration
protocol is out of the paper's scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..model.region import Region
from ..model.task import Task
from ..model.worker import WorkerBehavior, WorkerProfile
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import PLATFORM_TRACK
from ..sim.clock import EventClock
from ..sim.rng import RngRegistry
from .cost import CostModel
from .policies import SchedulingPolicy
from .server import REACTServer

#: Builds one region server.  The default constructs a :class:`REACTServer`
#: (simulation mode); the live gateway injects a factory producing
#: ``repro.service.bridge.LiveRegionServer`` instead — any object with the
#: REACTServer routing surface (``start``/``submit_task``/``adopt_task``/
#: ``add_worker``/``remove_worker``/``task_management``/``profiling``/
#: ``drain_and_summary``) works.  Typed ``Any`` because the platform layer
#: must not import the service layer (KER001).
ServerFactory = Callable[
    [EventClock, SchedulingPolicy, RngRegistry, Optional[CostModel]], Any
]


@dataclass
class RegionEntry:
    region: Region
    server: REACTServer
    #: Monotonically unique id; also the RNG fork offset for this server, so
    #: no two servers — including ones created by later splits — ever share
    #: a stream derivation.
    server_id: int
    rng: RngRegistry


class Coordinator:
    """Owns the region → server map and the split-on-overload policy."""

    def __init__(
        self,
        engine: EventClock,
        policy: SchedulingPolicy,
        regions: List[Region],
        rng: RngRegistry,
        cost_model: Optional[CostModel] = None,
        overload_queue_limit: Optional[int] = None,
        observability: Optional[ObservabilityLike] = None,
        server_factory: Optional[ServerFactory] = None,
        max_splits_per_submit: int = 4,
    ) -> None:
        if not regions:
            raise ValueError("at least one region is required")
        if overload_queue_limit is not None and overload_queue_limit < 1:
            raise ValueError("overload_queue_limit must be >= 1")
        if max_splits_per_submit < 1:
            raise ValueError("max_splits_per_submit must be >= 1")
        self._engine = engine
        self._policy = policy
        self._rng = rng
        self._cost_model = cost_model
        self._server_factory = server_factory
        self._overload_limit = overload_queue_limit
        self._max_splits_per_submit = max_splits_per_submit
        # Split telemetry only: child servers are built without observability
        # because several MetricsCollectors binding one registry would fight
        # over the same counters.  Per-server obs belongs to single-server
        # drivers.
        obs = resolve(observability)
        self._tracer = obs.tracer
        self._obs_splits = obs.registry.counter(
            "react_region_splits_total", "Region splits performed by the coordinator"
        )
        self._obs_regions = obs.registry.gauge(
            "react_regions", "Regions (= servers) currently managed"
        )
        self._entries: List[RegionEntry] = []
        self._splits = 0
        self._tasks_migrated = 0
        self._workers_migrated = 0
        self._next_server_id = 0
        for region in regions:
            self._entries.append(self._make_entry(region))
        self._obs_regions.set(len(self._entries))

    def _make_entry(self, region: Region) -> RegionEntry:
        """Build a server for ``region`` under a monotonically unique id.

        Servers used to be numbered by list position, so a server created by
        a later split could reuse an earlier server's index-derived RNG
        streams (correlating e.g. their matcher edge-flip draws).  A single
        counter that only ever increments makes every fork offset — and with
        it every stream spawn key — unique for the coordinator's lifetime.
        """
        server_id = self._next_server_id
        self._next_server_id += 1
        rng = self._rng.fork(server_id)
        if self._server_factory is not None:
            server = self._server_factory(
                self._engine, self._policy, rng, self._cost_model
            )
        else:
            server = REACTServer(
                engine=self._engine,
                policy=self._policy,
                rng=rng,
                cost_model=self._cost_model,
            )
        server.start()
        return RegionEntry(
            region=region, server=server, server_id=server_id, rng=rng
        )

    # ------------------------------------------------------------- routing
    @property
    def servers(self) -> List[REACTServer]:
        return [entry.server for entry in self._entries]

    @property
    def regions(self) -> List[Region]:
        return [entry.region for entry in self._entries]

    @property
    def server_ids(self) -> List[int]:
        return [entry.server_id for entry in self._entries]

    @property
    def splits_performed(self) -> int:
        return self._splits

    @property
    def tasks_migrated(self) -> int:
        """Queued tasks handed to a freshly split-off server, cumulative."""
        return self._tasks_migrated

    @property
    def workers_migrated(self) -> int:
        """Idle workers re-routed to a freshly split-off server, cumulative."""
        return self._workers_migrated

    def _entry_for(self, latitude: float, longitude: float) -> RegionEntry:
        for entry in self._entries:
            if entry.region.contains(latitude, longitude):
                return entry
        raise ValueError(
            f"point ({latitude}, {longitude}) is outside every region"
        )

    def server_for(self, latitude: float, longitude: float) -> REACTServer:
        return self._entry_for(latitude, longitude).server

    def add_worker(
        self, profile: WorkerProfile, behavior: Optional[WorkerBehavior] = None
    ) -> None:
        """Register the worker with the server owning his location (§IV-A:
        "Each worker is registered to the server related to the area where
        he belongs").  ``behavior`` carries the simulated ground truth and
        is None for live (service-mode) workers."""
        self._entry_for(profile.latitude, profile.longitude).server.add_worker(
            profile, behavior
        )

    def submit_task(self, task: Task) -> None:
        """Route by the task's coordinates, then check for overload.

        Splitting cascades: one split halves a region but migrates only the
        queued tasks of the *new* half, so either half can still sit above
        ``overload_queue_limit`` — both are re-checked (and re-split) until
        every resulting server is under the limit, its region is too thin to
        split further, or ``max_splits_per_submit`` splits have been spent
        on this submission.
        """
        entry = self._entry_for(task.latitude, task.longitude)
        entry.server.submit_task(task)
        if self._overload_limit is None:
            return
        budget = self._max_splits_per_submit
        pending = [entry]
        while pending and budget > 0:
            candidate = pending.pop(0)
            queue = candidate.server.task_management.unassigned_count
            if queue <= self._overload_limit or not candidate.region.splittable:
                continue
            kept, created = self._split(candidate)
            budget -= 1
            pending.extend((kept, created))

    # --------------------------------------------------------------- split
    def _split(self, entry: RegionEntry) -> Tuple[RegionEntry, RegionEntry]:
        """Split an overloaded region in half (§V-D).

        The existing server keeps one half (with all its in-flight work and
        history); a fresh server takes the other half, inheriting (a) the
        idle workers located there and (b) the queued — not yet batched or
        assigned — tasks whose coordinates fall inside it.  Workers who are
        mid-execution stay on the old server regardless of location: a live
        hand-off protocol is outside the paper's scope.

        Returns the (kept-half, new-half) entries so the submit-path cascade
        can re-check both for residual overload.
        """
        half_keep, half_new = entry.region.split()
        idx = self._entries.index(entry)
        old = entry.server
        new_entry = self._make_entry(half_new)
        new_server = new_entry.server
        keep_entry = RegionEntry(
            region=half_keep,
            server=old,
            server_id=entry.server_id,
            rng=entry.rng,
        )
        self._entries[idx : idx + 1] = [keep_entry, new_entry]
        self._splits += 1

        # Migrate idle workers located in the new half.  Live servers keep
        # no simulated ground truth, so the behaviour lookup is conditional:
        # a simulation server skips profiles with no behaviour record, a
        # live server migrates every idle profile with behavior=None.
        behaviors = getattr(old, "_behaviors", None)
        for profile in list(old.profiling):
            if not profile.available or profile.current_task is not None:
                continue
            if not half_new.contains(profile.latitude, profile.longitude):
                continue
            behavior = behaviors.get(profile.worker_id) if behaviors is not None else None
            if behaviors is not None and behavior is None:
                continue
            old.remove_worker(profile.worker_id)
            # remove_worker marks the profile offline; revive it for the
            # new region it now belongs to.
            profile.online = True
            new_server.add_worker(profile, behavior)
            self._workers_migrated += 1

        # Migrate the queued tasks belonging to the new half — this is the
        # actual load relief the paper's remedy is after.
        migrated = old.task_management.extract_unassigned(
            lambda task: half_new.contains(task.latitude, task.longitude)
        )
        for task in migrated:
            new_server.adopt_task(task)
        self._tasks_migrated += len(migrated)

        self._obs_splits.inc()
        self._obs_regions.set(len(self._entries))
        self._tracer.instant(
            "region.split",
            cat="coordinator",
            tid=PLATFORM_TRACK,
            regions=len(self._entries),
            migrated_tasks=len(migrated),
        )
        return keep_entry, new_entry

    # -------------------------------------------------------------- summary
    def aggregate_summary(self) -> Dict[str, float]:
        """Combine the headline metrics across all servers.

        Counters are summed; fractions are recomputed over the combined
        counts; the two time averages are weighted by each server's
        completed-task count (summing averages would overstate them).
        """
        totals: Dict[str, float] = {}
        average_keys = ("avg_worker_time", "avg_total_time")
        fraction_keys = ("on_time_fraction", "positive_feedback_fraction")
        summaries = [server.drain_and_summary() for server in self.servers]
        for summary in summaries:
            for key, value in summary.items():
                if value is None or key in average_keys or key in fraction_keys:
                    continue
                totals[key] = totals.get(key, 0) + value
        received = totals.get("received", 0)
        if received:
            totals["on_time_fraction"] = round(
                totals.get("completed_on_time", 0) / received, 4
            )
            totals["positive_feedback_fraction"] = round(
                totals.get("positive_feedbacks", 0) / received, 4
            )
        for key in average_keys:
            weighted = [
                (summary[key], summary["completed"])
                for summary in summaries
                if summary.get(key) is not None and summary.get("completed")
            ]
            weight = sum(n for _, n in weighted)
            if weight:
                totals[key] = round(
                    sum(v * n for v, n in weighted) / weight, 3
                )
        return totals
