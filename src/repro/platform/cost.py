"""Matcher-latency cost models and retainer payment accounting.

The paper's end-to-end results (Figs. 5-10) are driven by the *time the
matching algorithm takes on the server*: while Greedy grinds through its
O(V·E) scan, arriving tasks queue and their deadlines burn (Fig. 5's
collapse).  Our Python matchers have different absolute constants than the
authors' Java middleware, so the simulation charges matcher latency through
an explicit cost model instead of wall-clock:

* :class:`PaperCalibratedCost` — analytic costs whose coefficients are fit
  to the paper's own Fig. 3 measurements:

  - Greedy, O(V·E): 99.7 s at V = 1000 tasks, E = 10⁶ edges
    → κ_greedy = 99.7 / (1000·10⁶) ≈ 9.97·10⁻⁸ s per (task·edge).
  - REACT / Metropolis, O(c·E): 12 s at c·E = 10⁹ and 45 s at 3·10⁹
    (1000 and 3000 cycles on the full 1000×1000 graph).  The two points are
    not proportional, so we use the piecewise-linear interpolation through
    (0, 0), (10⁹, 12 s), (3·10⁹, 45 s) in the c·E product — exact on both
    published measurements and zero for an empty graph.
  - Uniform (Traditional): O(V) — AMT-style self-selection has no matching
    computation worth modelling.
  - Hungarian O(n³) and sorted-greedy O(E log E) coefficients are
    order-of-magnitude placements for the reference algorithms (the paper
    reports no timings for them).

  ``hardware_factor`` rescales everything for slower/faster testbeds and
  ``batch_overhead`` adds a fixed per-invocation cost (RPC, graph
  marshalling).

* :class:`ZeroCost` — instantaneous matching, for pure-algorithm studies.
* :class:`MeasuredCost` — charges this process's real wall-clock times a
  scale factor, for sensitivity checks of the calibration itself.

The second half of the module is the platform's *economic* ledger
(:class:`RetainerCostConfig` / :class:`RetainerLedger`): retainer-pool
recruiting (docs/RETAINER.md) pays workers a wage while they idle on
retainer plus a flat payment per executed assignment.  The ledger keeps a
per-worker account so experiment reports can attribute spend, and its
invariants — cost monotone in time on retainer, zero-duration assignments
cost zero, totals equal the sum of the per-worker accounts — are
property-tested in ``tests/platform/test_cost_properties.py``.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BatchShape:
    """Size descriptors of one matching invocation."""

    n_workers: int
    n_tasks: int
    n_edges: int
    cycles: int = 0

    def __post_init__(self) -> None:
        if min(self.n_workers, self.n_tasks, self.n_edges, self.cycles) < 0:
            raise ValueError(f"negative batch dimension: {self}")


class CostModel(abc.ABC):
    """Maps a matcher invocation to simulated seconds of server latency."""

    @abc.abstractmethod
    def seconds(self, algorithm: str, shape: BatchShape) -> float:
        """Simulated latency of running ``algorithm`` on ``shape``."""


class ZeroCost(CostModel):
    """Matching is free (isolates algorithm quality from latency)."""

    def seconds(self, algorithm: str, shape: BatchShape) -> float:
        return 0.0


#: Fig. 3 calibration points, documented in the module docstring.
KAPPA_GREEDY = 99.7 / (1000 * 1_000_000)  # s per task·edge
_RANDOMIZED_KNOTS = ((0.0, 0.0), (1e9, 12.0), (3e9, 45.0))  # (cycles·edges, s)
KAPPA_UNIFORM = 1e-6  # s per task: negligible by construction
KAPPA_HUNGARIAN = 1e-8  # s per n³
KAPPA_SORTED_GREEDY = 2e-8  # s per edge·log2(edge)


def _interp_knots(u: float) -> float:
    """Piecewise-linear through the Fig. 3 knots; extrapolates the last slope."""
    knots = _RANDOMIZED_KNOTS
    for (x0, y0), (x1, y1) in zip(knots, knots[1:]):
        if u <= x1:
            return y0 + (u - x0) * (y1 - y0) / (x1 - x0)
    (x0, y0), (x1, y1) = knots[-2], knots[-1]
    return y1 + (u - x1) * (y1 - y0) / (x1 - x0)


@dataclass(frozen=True)
class PaperCalibratedCost(CostModel):
    """Analytic latency model calibrated to the paper's Fig. 3."""

    hardware_factor: float = 1.0
    batch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.hardware_factor <= 0:
            raise ValueError(f"hardware_factor must be positive, got {self.hardware_factor}")
        if self.batch_overhead < 0:
            raise ValueError(f"batch_overhead must be non-negative, got {self.batch_overhead}")

    def seconds(self, algorithm: str, shape: BatchShape) -> float:
        if shape.n_edges == 0 and algorithm != "uniform":
            return self.batch_overhead * self.hardware_factor
        if algorithm in ("react", "metropolis"):
            base = _interp_knots(float(shape.cycles) * shape.n_edges)
        elif algorithm == "greedy":
            base = KAPPA_GREEDY * shape.n_tasks * shape.n_edges
        elif algorithm == "uniform":
            base = KAPPA_UNIFORM * shape.n_tasks
        elif algorithm == "hungarian":
            n = max(shape.n_workers, shape.n_tasks)
            base = KAPPA_HUNGARIAN * float(n) ** 3
        elif algorithm in ("sorted-greedy", "threshold"):
            # The threshold matcher is a sorted-greedy sweep with an early
            # exit at the quality bar; same O(E log E) sort dominates.
            base = KAPPA_SORTED_GREEDY * shape.n_edges * math.log2(shape.n_edges + 1)
        else:
            raise KeyError(f"no calibrated cost for algorithm {algorithm!r}")
        return (base + self.batch_overhead) * self.hardware_factor


@dataclass(frozen=True)
class MeasuredCost(CostModel):
    """Charges simulated latency = measured wall-clock × ``scale``.

    The platform measures the matcher call with ``time.perf_counter`` and
    reports it here; useful for checking how sensitive the end-to-end
    results are to the analytic calibration.
    """

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError(f"scale must be non-negative, got {self.scale}")

    def seconds(self, algorithm: str, shape: BatchShape) -> float:
        raise NotImplementedError(
            "MeasuredCost is applied by the scheduler via from_measurement()"
        )

    def from_measurement(self, wall_seconds: float) -> float:
        return wall_seconds * self.scale


# =====================================================================
# Retainer payment accounting (docs/RETAINER.md)
# =====================================================================
@dataclass(frozen=True)
class RetainerCostConfig:
    """Payment schedule of a retainer pool.

    ``wage_per_second`` is paid to a worker for every second he is *held*
    idle on retainer (the Bernstein et al. "small payment to be on call");
    ``task_payment`` is the flat price of one executed assignment.
    """

    wage_per_second: float = 0.01
    task_payment: float = 0.05

    def __post_init__(self) -> None:
        if self.wage_per_second < 0:
            raise ValueError(
                f"wage_per_second must be non-negative, got {self.wage_per_second}"
            )
        if self.task_payment < 0:
            raise ValueError(
                f"task_payment must be non-negative, got {self.task_payment}"
            )


@dataclass
class WorkerAccount:
    """One worker's running totals in a :class:`RetainerLedger`."""

    retainer_seconds: float = 0.0
    retainer_cost: float = 0.0
    assignments_paid: int = 0
    assignment_cost: float = 0.0

    @property
    def total(self) -> float:
        return self.retainer_cost + self.assignment_cost


class RetainerLedger:
    """Per-worker account book for retainer wages and task payments.

    All mutation goes through :meth:`accrue_hold` (idle-on-retainer wage)
    and :meth:`charge_assignment` (flat payment per non-empty execution);
    totals are derived, never stored, so they cannot drift from the
    per-worker accounts.
    """

    def __init__(self, config: RetainerCostConfig) -> None:
        self.config = config
        self._accounts: Dict[int, WorkerAccount] = {}

    # ----------------------------------------------------------- mutation
    def accrue_hold(self, worker_id: int, seconds: float) -> float:
        """Charge the retainer wage for ``seconds`` of idle hold time.

        Returns the cost charged.  Monotone: a longer hold never costs
        less, and zero seconds cost zero.
        """
        if seconds < 0:
            raise ValueError(f"hold seconds must be non-negative, got {seconds}")
        account = self._accounts.setdefault(worker_id, WorkerAccount())
        cost = self.config.wage_per_second * seconds
        account.retainer_seconds += seconds
        account.retainer_cost += cost
        return cost

    def charge_assignment(self, worker_id: int, duration: float) -> float:
        """Charge the flat task payment for one executed assignment.

        A zero-duration assignment performed no work and costs zero (the
        worker never held the task); negative durations are rejected.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        account = self._accounts.setdefault(worker_id, WorkerAccount())
        if duration == 0:
            return 0.0
        account.assignments_paid += 1
        account.assignment_cost += self.config.task_payment
        return self.config.task_payment

    # ------------------------------------------------------------ queries
    def account(self, worker_id: int) -> WorkerAccount:
        """The (possibly empty) account of one worker."""
        return self._accounts.get(worker_id, WorkerAccount())

    def accounts(self) -> Dict[int, WorkerAccount]:
        """Per-worker accounts keyed by worker id (a live view is not given)."""
        return dict(self._accounts)

    @property
    def retainer_cost(self) -> float:
        return sum(a.retainer_cost for a in self._accounts.values())

    @property
    def retainer_seconds(self) -> float:
        return sum(a.retainer_seconds for a in self._accounts.values())

    @property
    def assignment_cost(self) -> float:
        return sum(a.assignment_cost for a in self._accounts.values())

    @property
    def assignments_paid(self) -> int:
        return sum(a.assignments_paid for a in self._accounts.values())

    @property
    def total_cost(self) -> float:
        """Grand total — by construction the sum of per-worker totals."""
        return sum(a.total for a in self._accounts.values())

    def cost_per_task(self, completed_tasks: int) -> float:
        """Total spend attributed to each of ``completed_tasks`` tasks."""
        if completed_tasks <= 0:
            return 0.0
        return self.total_cost / completed_tasks
