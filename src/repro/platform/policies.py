"""Scheduling policies: the three techniques compared in §V-C.

A :class:`SchedulingPolicy` bundles every knob of the REACT server so the
experiment harnesses can swap techniques declaratively:

* :func:`react_policy` — REACT WBGM matcher (1000 cycles), probabilistic
  model on (Eq. 3 edge pruning at 0.1, Eq. 2 reassignment at 0.1, z = 3).
* :func:`greedy_policy` — Greedy matcher, *with* the probabilistic model
  ("When we use the Greedy matching we also use the online probabilistic
  model to reassign the tasks, as in the REACT algorithm").
* :func:`traditional_policy` — AMT-like: uniform matching, no probabilistic
  model, expired tasks still get handed to workers (nothing in a
  traditional platform stops a worker from picking up a stale task).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from ..core.matching.base import Matcher
from ..core.matching.registry import create_matcher
from ..core.weights import WeightFunction, make_weight_function
from .cost import CostModel, PaperCalibratedCost, RetainerCostConfig


@dataclass(frozen=True)
class RetainerSpec:
    """Retainer-pool recruiting attached to a scheduling policy.

    When set on a :class:`SchedulingPolicy`, the end-to-end harness runs a
    marketplace (workers arrive over time instead of pre-connecting) and
    holds up to ``size`` of them on paid retainer ahead of the matcher —
    the Bernstein et al. model implemented in :mod:`repro.retainer`.
    """

    #: Pool capacity c; ``repro.retainer.analytic.optimal_pool_size`` gives
    #: the budget-optimal choice for a given (lam, mu, wage, wait-cost).
    size: int = 20
    wage_per_second: float = 0.01
    task_payment: float = 0.05
    #: Seconds between a release alert and the worker rejoining the matcher
    #: (the "come back to the tab" delay).
    release_latency: float = 0.5
    #: Period of the recruiter sweep (re-pooling, patience culls).
    sweep_interval: float = 1.0
    #: Periodically retune ``size`` from a live EWMA arrival-rate estimate
    #: (:mod:`repro.retainer.adaptive`); needs ``wage_per_second > 0``.
    adaptive: bool = False
    #: Seconds between adaptive retunes.
    adaptive_interval: float = 30.0
    #: Requester-side cost of one task-second of queueing, fed to
    #: ``optimal_pool_size`` by the adaptive sizer.
    wait_cost_per_second: float = 0.05

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"retainer size must be >= 1, got {self.size}")
        if self.wage_per_second < 0 or self.task_payment < 0:
            raise ValueError("retainer payments must be non-negative")
        if self.release_latency < 0:
            raise ValueError("release_latency must be non-negative")
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if self.adaptive and self.wage_per_second <= 0:
            raise ValueError("adaptive sizing requires wage_per_second > 0")
        if self.adaptive_interval <= 0:
            raise ValueError("adaptive_interval must be positive")
        if self.wait_cost_per_second < 0:
            raise ValueError("wait_cost_per_second must be non-negative")

    def cost_config(self) -> RetainerCostConfig:
        return RetainerCostConfig(
            wage_per_second=self.wage_per_second, task_payment=self.task_payment
        )


@dataclass(frozen=True)
class SchedulingPolicy:
    """Complete configuration of a REACT server's scheduling behaviour.

    Attributes mirror the experimental setup of §V-C; see the module
    docstring for the three presets.
    """

    name: str
    matcher_name: str = "react"
    cycles: int = 1000
    k_constant: float = 0.05
    adaptive_cycles: bool = False
    weight_function_name: str = "accuracy"
    #: Constructor kwargs for the weight function, as a tuple of
    #: ``(name, value)`` pairs so the frozen policy stays hashable — e.g.
    #: ``(("speed_kmh", 25.0),)`` for the travel-time weight.  ``None``
    #: (the default) builds the weight with its defaults.
    weight_params: Optional[Tuple[Tuple[str, float], ...]] = None
    #: Enables Eq. 3 edge pruning and the Eq. 2 reassignment monitor.
    use_probabilistic_model: bool = True
    #: Lower bound on Eq. 3 below which edges are pruned.
    edge_probability_bound: float = 0.1
    #: Eq. 2 threshold under which a running task is pulled back (10%).
    reassign_threshold: float = 0.1
    #: Period of the Dynamic Assignment Component's monitor sweep.
    reassign_check_interval: float = 1.0
    #: Completed tasks required before the model activates for a worker (z).
    min_history: int = 3
    #: Duration-distribution family for Eqs. 2-3: "power-law" (the paper's
    #: §IV-B choice), "empirical", or "lognormal" (ABL-MODEL ablation).
    duration_model: str = "power-law"
    #: Batch trigger: run the matcher once this many tasks are unassigned.
    batch_threshold: int = 10
    #: Fallback periodic batch trigger so stragglers are not starved.
    batch_period: float = 5.0
    #: Whether tasks whose deadline lapsed in the queue may still be handed
    #: to workers (True for the traditional baseline) or are retired.
    assign_expired: bool = False
    #: Release a worker immediately when his task is pulled back (True) or
    #: keep him marked busy until his sampled finish time (False).  The
    #: default releases: the platform controls its own availability flag,
    #: and the worker's censored withdrawal history already steers Eq. 3 /
    #: Eq. 1 away from him, so freeing the slot does not re-feed dawdlers.
    release_on_reassign: bool = True
    #: AMT semantics (§II): "If the deadline expires while being executed,
    #: the task returns to the tasks repository as unassigned."  All three
    #: techniques inherit this platform behaviour; it is the only way an
    #: *abandoned* task ever resurfaces under the traditional baseline.
    expire_running_tasks: bool = True
    #: Charge the matcher's latency against the full region graph (every
    #: in-flight task × every online worker) instead of the batch subgraph.
    #: This reproduces the paper's O(V·E) accounting for Greedy, whose
    #: implementation scans the region's maintained edge list per task; the
    #: randomized matchers only ever touch the batch subgraph they flip
    #: edges in, so they stay charged on the batch (Fig. 3 calibration).
    charge_region_graph: bool = False
    #: Retainer-pool recruiting (docs/RETAINER.md); None = on-demand only.
    #: Policies with a retainer require the harness's marketplace mode
    #: (``EndToEndConfig.worker_arrival_rate``).
    retainer: Optional[RetainerSpec] = None

    def __post_init__(self) -> None:
        if self.batch_threshold < 1:
            raise ValueError(f"batch_threshold must be >= 1, got {self.batch_threshold}")
        if self.batch_period <= 0:
            raise ValueError(f"batch_period must be positive, got {self.batch_period}")
        if not (0.0 <= self.edge_probability_bound <= 1.0):
            raise ValueError("edge_probability_bound must be in [0,1]")
        if not (0.0 <= self.reassign_threshold <= 1.0):
            raise ValueError("reassign_threshold must be in [0,1]")
        if self.reassign_check_interval <= 0:
            raise ValueError("reassign_check_interval must be positive")
        if self.min_history < 0:
            raise ValueError("min_history must be >= 0")
        if self.duration_model not in ("power-law", "empirical", "lognormal"):
            raise ValueError(f"unknown duration_model {self.duration_model!r}")

    # ------------------------------------------------------------ factories
    def build_matcher(self) -> Matcher:
        if self.matcher_name in ("react", "metropolis"):
            return create_matcher(
                self.matcher_name,
                cycles=self.cycles,
                k_constant=self.k_constant,
                adaptive_cycles=self.adaptive_cycles,
            )
        return create_matcher(self.matcher_name)

    def build_weight_function(self) -> WeightFunction:
        return make_weight_function(
            self.weight_function_name, **dict(self.weight_params or ())
        )

    def with_overrides(self, **kwargs: Any) -> "SchedulingPolicy":
        """Derived policy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)


def react_policy(
    cycles: int = 1000,
    reassign_threshold: float = 0.1,
    min_history: int = 3,
    **overrides: Any,
) -> SchedulingPolicy:
    """The REACT technique exactly as configured in §V-C."""
    return SchedulingPolicy(
        name="react",
        matcher_name="react",
        cycles=cycles,
        reassign_threshold=reassign_threshold,
        min_history=min_history,
        **overrides,
    )


def greedy_policy(**overrides: Any) -> SchedulingPolicy:
    """Greedy matching + the probabilistic reassignment model (§V-C).

    Per the paper's §V-B Discussion, Greedy does not need to gather a batch:
    "the Greedy one can be either triggered for each unassigned task or wait
    for a number of tasks" — its natural configuration (and the one whose
    queueing behaviour Fig. 5 exhibits) triggers per task, paying the region
    edge-list scan on every invocation.
    """
    overrides.setdefault("charge_region_graph", True)
    overrides.setdefault("batch_threshold", 1)
    return SchedulingPolicy(
        name="greedy",
        matcher_name="greedy",
        **overrides,
    )


def traditional_policy(**overrides: Any) -> SchedulingPolicy:
    """AMT-like baseline: uniform assignment, no probabilistic model.

    "It does not react when the user delays a task" (§V-C): once handed to
    a worker, a task stays with him — no Eq. 2 monitor and no deadline
    pull-back — so slow workers deliver late results and abandoned tasks
    are simply lost.  This is what produces the paper's traditional-curve
    numbers (≈51% on-time, worst execution times in Figs. 7-8).
    """
    overrides.setdefault("expire_running_tasks", False)
    return SchedulingPolicy(
        name="traditional",
        matcher_name="uniform",
        weight_function_name="constant",
        use_probabilistic_model=False,
        assign_expired=True,
        **overrides,
    )


def react_retainer_policy(
    retainer: Optional[RetainerSpec] = None,
    cycles: int = 1000,
    **overrides: Any,
) -> SchedulingPolicy:
    """REACT plus a retainer pool ahead of the matcher.

    Identical scheduling behaviour to :func:`react_policy`; the difference
    is supply-side — arriving workers are banked on paid retainer and
    released to demand within ``retainer.release_latency`` seconds instead
    of browsing off if nothing is queued.
    """
    return SchedulingPolicy(
        name="react_retainer",
        matcher_name="react",
        cycles=cycles,
        retainer=retainer if retainer is not None else RetainerSpec(),
        **overrides,
    )


def metropolis_policy(cycles: int = 1000, **overrides: Any) -> SchedulingPolicy:
    """Metropolis matching with the probabilistic model (for ablations)."""
    return SchedulingPolicy(
        name="metropolis",
        matcher_name="metropolis",
        cycles=cycles,
        **overrides,
    )


def default_cost_model() -> CostModel:
    """The paper-calibrated latency model used by all figure experiments."""
    return PaperCalibratedCost()
