"""Task Management Component (§III-A).

"Responsible to provide information about all the available tasks in the
REACT platform": remaining time until expiry, current assignment and elapsed
time.  Concretely it owns the three task pools — unassigned (the matcher's
input), assigned (the Eq. 2 monitor's input) and finished — and the
transitions between them.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..graph.builders import BudgetGate
from ..model.task import Task, TaskPhase


class TaskManagementComponent:
    """Task pools and lifecycle transitions for one REACT server."""

    def __init__(self, budget: Optional[BudgetGate] = None) -> None:
        # Insertion-ordered dicts double as FIFO queues with O(1) removal.
        self._unassigned: Dict[int, Task] = {}
        self._assigned: Dict[int, Task] = {}
        self._finished: Dict[int, Task] = {}
        #: tasks currently locked inside a running matching batch
        self._in_batch: Dict[int, Task] = {}
        #: withdrawn tasks parked by the resilience layer's retry backoff;
        #: invisible to the matcher until their backoff delay elapses
        self._deferred: Dict[int, Task] = {}
        #: per-requester budget gate (budget-constrained scenarios); tasks
        #: of an exhausted requester are shed at intake instead of queued
        self._budget = budget
        #: tasks shed at intake because the requester's budget ran dry
        self.shed_by_budget = 0

    # -------------------------------------------------------------- intake
    def add_task(self, task: Task) -> bool:
        """Queue a new task; returns False when it was budget-shed instead.

        A shed task moves straight to the finished pool with phase EXPIRED
        (mirroring the expired-at-checkout path): the requester can no
        longer fund its reward, so queueing it would only let the matcher
        waste batch capacity on a column the budget gate will clear anyway.
        The caller records the expired-unassigned outcome.
        """
        if task.phase is not TaskPhase.UNASSIGNED:
            raise ValueError(f"task {task.task_id} is not unassigned")
        if task.task_id in self._unassigned or task.task_id in self._assigned:
            raise ValueError(f"task {task.task_id} already known")
        if self._budget is not None and not self._budget.allows(task):
            task.mark_expired()
            self._finished[task.task_id] = task
            self.shed_by_budget += 1
            return False
        self._unassigned[task.task_id] = task
        return True

    # -------------------------------------------------------------- counts
    @property
    def unassigned_count(self) -> int:
        return len(self._unassigned)

    @property
    def assigned_count(self) -> int:
        return len(self._assigned)

    @property
    def finished_count(self) -> int:
        return len(self._finished)

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    @property
    def in_flight(self) -> int:
        return (
            len(self._unassigned)
            + len(self._assigned)
            + len(self._in_batch)
            + len(self._deferred)
        )

    def unassigned_tasks(self) -> List[Task]:
        return list(self._unassigned.values())

    def assigned_tasks(self) -> List[Task]:
        return list(self._assigned.values())

    def get(self, task_id: int) -> Task:
        for pool in (
            self._unassigned,
            self._assigned,
            self._in_batch,
            self._deferred,
            self._finished,
        ):
            if task_id in pool:
                return pool[task_id]
        raise KeyError(f"unknown task {task_id}")

    def is_queued(self, task_id: int) -> bool:
        """True while the task waits (queued or backoff-deferred) for a match."""
        return task_id in self._unassigned or task_id in self._deferred

    # --------------------------------------------------------------- batch
    def checkout_batch(
        self, now: float, assign_expired: bool
    ) -> tuple[List[Task], List[Task]]:
        """Move the unassigned pool into a locked batch for the matcher.

        Returns ``(batch, retired)``: ``batch`` is the matcher's input;
        ``retired`` are tasks whose deadline already lapsed in the queue and
        which the policy chooses not to hand out (``assign_expired=False``)
        — they leave the system as expired-unassigned.
        """
        batch: List[Task] = []
        retired: List[Task] = []
        for task in self._unassigned.values():
            if not assign_expired and task.is_expired(now):
                task.mark_expired()
                retired.append(task)
            else:
                batch.append(task)
        self._unassigned.clear()
        for task in batch:
            self._in_batch[task.task_id] = task
        for task in retired:
            self._finished[task.task_id] = task
        return batch, retired

    def retire_expired(self, now: float) -> List[Task]:
        """Expire overdue queued tasks in place, without a batch checkout.

        Used by the periodic trigger when no worker is available: the
        expired-at-checkout retirement still has to happen on schedule, but
        starting a matcher batch just to run it would burn simulated latency
        on an empty worker set.
        """
        retired = [t for t in self._unassigned.values() if t.is_expired(now)]
        for task in retired:
            del self._unassigned[task.task_id]
            task.mark_expired()
            self._finished[task.task_id] = task
        return retired

    def commit_assignment(self, task: Task, worker_id: int, now: float) -> None:
        """A batch result assigned ``task`` to ``worker_id``."""
        if task.task_id not in self._in_batch:
            raise ValueError(f"task {task.task_id} is not checked out")
        del self._in_batch[task.task_id]
        task.mark_assigned(worker_id, now)
        self._assigned[task.task_id] = task

    def return_unmatched(self, task: Task) -> None:
        """A batch result left ``task`` unmatched; it rejoins the queue."""
        if task.task_id not in self._in_batch:
            raise ValueError(f"task {task.task_id} is not checked out")
        del self._in_batch[task.task_id]
        self._unassigned[task.task_id] = task

    # ----------------------------------------------------------- lifecycle
    def complete(self, task: Task, now: float) -> None:
        if task.task_id not in self._assigned:
            raise ValueError(f"task {task.task_id} is not assigned")
        del self._assigned[task.task_id]
        task.mark_completed(now)
        self._finished[task.task_id] = task

    def withdraw(self, task: Task) -> None:
        """Eq. 2 pulled the task back from its worker; it becomes unassigned."""
        if task.task_id not in self._assigned:
            raise ValueError(f"task {task.task_id} is not assigned")
        del self._assigned[task.task_id]
        task.mark_unassigned()
        self._unassigned[task.task_id] = task

    # ---------------------------------------------------------- resilience
    def defer(self, task: Task) -> None:
        """Park an unassigned task until its retry backoff elapses."""
        if task.task_id not in self._unassigned:
            raise ValueError(f"task {task.task_id} is not unassigned")
        del self._unassigned[task.task_id]
        self._deferred[task.task_id] = task

    def release_deferred(self, task: Task) -> bool:
        """Backoff elapsed: the task rejoins the matcher's queue.

        Returns False (no-op) when the task is no longer deferred — e.g. it
        was retired while parked.
        """
        if task.task_id not in self._deferred:
            return False
        del self._deferred[task.task_id]
        self._unassigned[task.task_id] = task
        return True

    def retire_unassigned(self, task: Task) -> None:
        """A queued task leaves the system unserved (reassignment budget).

        Mirrors the expired-at-checkout path: the task moves straight from
        the unassigned pool to finished with phase EXPIRED.
        """
        if task.task_id not in self._unassigned:
            raise ValueError(f"task {task.task_id} is not unassigned")
        del self._unassigned[task.task_id]
        task.mark_expired()
        self._finished[task.task_id] = task

    def extract_unassigned(self, predicate: Callable[[Task], bool]) -> List[Task]:
        """Remove and return queued tasks matching ``predicate``.

        Used by the multi-region coordinator when a region splits: queued
        (not yet batched or assigned) tasks whose coordinates fall in the
        new half migrate to the new server.
        """
        extracted = [t for t in self._unassigned.values() if predicate(t)]
        for task in extracted:
            del self._unassigned[task.task_id]
        return extracted

    def finished_tasks(self) -> List[Task]:
        return list(self._finished.values())

    def __iter__(self) -> Iterator[Task]:
        yield from self._unassigned.values()
        yield from self._in_batch.values()
        yield from self._assigned.values()
        yield from self._deferred.values()
        yield from self._finished.values()
