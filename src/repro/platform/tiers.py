"""Tiered region coordination with task escalation (§III-A).

The paper organises regions into *tiers* — "ranging from small local areas
at the lowest tier, to the entire network area at the highest tier; this
allows the system to collect task information from all the users in a
scalable manner".  This module turns that sketch into a working mechanism:

* the service area is decomposed into a ``2^depth × 2^depth`` grid of leaf
  regions, each owned by a REACT server (workers register locally);
* leaves sharing a parent cell at the next tier form a *sibling group*;
* a periodic escalation monitor watches each leaf's unassigned queue: a
  task that has waited longer than ``escalate_after`` seconds (and still
  has deadline budget) is handed to the sibling leaf with the most
  available workers — first within the immediate parent cell, then, if the
  whole group is starved, anywhere in the grid (the "entire network" tier).

Escalation moves only *queued* tasks (never batched or assigned ones), so
it composes safely with the scheduling machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model.region import RegionGrid
from ..model.task import Task
from ..model.worker import WorkerBehavior, WorkerProfile
from ..sim.clock import EventClock
from ..sim.events import EventKind
from ..sim.process import PeriodicProcess
from ..sim.rng import RngRegistry
from .cost import CostModel
from .policies import SchedulingPolicy
from .server import REACTServer


@dataclass(frozen=True)
class EscalationRecord:
    """One task hand-off between sibling regions."""

    time: float
    task_id: int
    from_cell: Tuple[int, int]
    to_cell: Tuple[int, int]
    waited: float
    network_wide: bool


class TieredCoordinator:
    """A quad-tree-tiered deployment of REACT servers with escalation."""

    def __init__(
        self,
        engine: EventClock,
        policy: SchedulingPolicy,
        rng: RngRegistry,
        lat_min: float = 0.0,
        lat_max: float = 1.0,
        lon_min: float = 0.0,
        lon_max: float = 1.0,
        depth: int = 2,
        escalate_after: float = 15.0,
        check_interval: float = 5.0,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if escalate_after <= 0 or check_interval <= 0:
            raise ValueError("escalate_after and check_interval must be positive")
        self._engine = engine
        self._escalate_after = escalate_after
        side = 2**depth
        self._side = side
        self._grid = RegionGrid(lat_min, lat_max, lon_min, lon_max, rows=side, cols=side)
        self._servers: Dict[Tuple[int, int], REACTServer] = {}
        self._cell_of_region: Dict[int, Tuple[int, int]] = {}
        for index, region in enumerate(self._grid.regions):
            cell = (index // side, index % side)
            server = REACTServer(
                engine=engine,
                policy=policy,
                rng=rng.fork(index),
                cost_model=cost_model,
            )
            server.start()
            self._servers[cell] = server
            self._cell_of_region[region.region_id] = cell
        self.escalations: List[EscalationRecord] = []
        self._monitor = PeriodicProcess(
            engine, period=check_interval, action=self._sweep, kind=EventKind.CALLBACK
        )

    # ------------------------------------------------------------- routing
    @property
    def servers(self) -> List[REACTServer]:
        return list(self._servers.values())

    def cell_for(self, latitude: float, longitude: float) -> Tuple[int, int]:
        region = self._grid.locate(latitude, longitude)
        return self._cell_of_region[region.region_id]

    def server_at(self, cell: Tuple[int, int]) -> REACTServer:
        return self._servers[cell]

    def add_worker(self, profile: WorkerProfile, behavior: WorkerBehavior) -> None:
        cell = self.cell_for(profile.latitude, profile.longitude)
        self._servers[cell].add_worker(profile, behavior)

    def submit_task(self, task: Task) -> None:
        cell = self.cell_for(task.latitude, task.longitude)
        self._servers[cell].submit_task(task)

    # ---------------------------------------------------------- escalation
    def siblings(self, cell: Tuple[int, int]) -> List[Tuple[int, int]]:
        """The other leaves under the same parent cell (tier above)."""
        pr, pc = cell[0] // 2, cell[1] // 2
        return [
            (r, c)
            for r in (2 * pr, 2 * pr + 1)
            for c in (2 * pc, 2 * pc + 1)
            if (r, c) != cell and (r, c) in self._servers
        ]

    def _best_target(
        self, candidates: List[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        best, best_free = None, 0
        for cell in candidates:
            free = len(self._servers[cell].profiling.available_workers())
            if free > best_free:
                best, best_free = cell, free
        return best

    def _sweep(self, now: float) -> None:
        for cell, server in self._servers.items():
            stale = server.task_management.extract_unassigned(
                lambda t: (now - t.submitted_at) >= self._escalate_after
                and not t.is_expired(now)
            )
            if not stale:
                continue
            target = self._best_target(self.siblings(cell))
            network_wide = False
            if target is None:
                # the parent cell is starved too: go network-wide
                target = self._best_target(
                    [c for c in self._servers if c != cell]
                )
                network_wide = True
            if target is None:
                # nobody anywhere has a free worker; requeue locally
                for task in stale:
                    server.adopt_task(task)
                continue
            for task in stale:
                self._servers[target].adopt_task(task)
                self.escalations.append(
                    EscalationRecord(
                        time=now,
                        task_id=task.task_id,
                        from_cell=cell,
                        to_cell=target,
                        waited=now - task.submitted_at,
                        network_wide=network_wide,
                    )
                )

    def stop(self) -> None:
        self._monitor.stop()
        for server in self._servers.values():
            server.stop()

    # -------------------------------------------------------------- totals
    def aggregate_summary(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for server in self._servers.values():
            for key, value in server.drain_and_summary().items():
                if value is None or key in ("avg_worker_time", "avg_total_time",
                                            "on_time_fraction",
                                            "positive_feedback_fraction"):
                    continue
                totals[key] = totals.get(key, 0) + value
        if totals.get("received"):
            totals["on_time_fraction"] = round(
                totals.get("completed_on_time", 0) / totals["received"], 4
            )
        totals["escalations"] = len(self.escalations)
        return totals
