"""REACT middleware: the four server components, policies, cost models,
and the multi-region coordinator."""

from .coordinator import Coordinator
from .cost import (
    BatchShape,
    CostModel,
    MeasuredCost,
    PaperCalibratedCost,
    ZeroCost,
)
from .dynamic_assignment import DynamicAssignmentComponent, Withdrawal
from .policies import (
    SchedulingPolicy,
    default_cost_model,
    greedy_policy,
    metropolis_policy,
    react_policy,
    traditional_policy,
)
from .profiling import ProfilingComponent
from .resilience import DegradedModeController, ResilienceConfig
from .scheduling import BatchRecord, SchedulingComponent
from .server import REACTServer
from .task_management import TaskManagementComponent
from .invariants import InvariantMonitor, InvariantViolation, check_server_invariants
from .tiers import EscalationRecord, TieredCoordinator

__all__ = [
    "Coordinator",
    "BatchShape",
    "CostModel",
    "MeasuredCost",
    "PaperCalibratedCost",
    "ZeroCost",
    "DynamicAssignmentComponent",
    "Withdrawal",
    "SchedulingPolicy",
    "default_cost_model",
    "greedy_policy",
    "metropolis_policy",
    "react_policy",
    "traditional_policy",
    "ProfilingComponent",
    "DegradedModeController",
    "ResilienceConfig",
    "BatchRecord",
    "SchedulingComponent",
    "REACTServer",
    "TaskManagementComponent",
    "InvariantMonitor",
    "InvariantViolation",
    "check_server_invariants",
    "EscalationRecord",
    "TieredCoordinator",
]
