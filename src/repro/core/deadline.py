"""Probabilistic deadline model (paper §IV-B, Eqs. 2-3).

For a worker with execution-time history ``k_1..k_n`` the Profiling
Component fits a power law (``k_min`` = the worker's fastest recorded time,
α via the CSN MLE — see :mod:`repro.stats.powerlaw`).  With CCDF
``P(k) = Pr(K >= k)`` the two decision probabilities are:

* **Edge instantiation** (Eq. 3), evaluated at graph-construction time:

      Pr(ExecTime < TimeToDeadline) = 1 − P(TimeToDeadline)

  The Scheduling Component only creates the edge when this exceeds an
  application-defined lower bound.

* **Mid-flight reassignment** (Eq. 2), evaluated by the Dynamic Assignment
  Component for a task that has been running ``t`` seconds:

      Pr(t < ExecTime < TTD) = 1 − (P(TTD) + (1 − P(t))) = P(t) − P(TTD)

  When it drops below the reassignment threshold (10% in the paper) the
  task is pulled back and rescheduled — "the probabilities for these
  distributions decrease rapidly after they exceed the typical values", so
  the remaining time may still suffice for a faster worker.

Workers with fewer than ``min_history`` completed tasks have no usable fit;
the paper trains each worker on his first ``z = 3`` tasks, during which both
probabilities are treated as certain (edges always instantiated, no
reassignment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..model.worker import WorkerProfile
from ..stats.duration_models import DurationModel, DurationModelFamily, PowerLawFamily
from ..stats.powerlaw import FitMethod, PowerLawFit
from .kernels.deadline import powerlaw_ccdf_grid, powerlaw_ccdf_values


@dataclass(frozen=True)
class DeadlineEstimate:
    """One Eq. 2/3 evaluation, kept for tracing and tests."""

    probability: float
    fit: Optional[PowerLawFit]
    trained: bool

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability out of [0,1]: {self.probability}")


class DeadlineEstimator:
    """Evaluates Eqs. (2) and (3) against worker histories.

    Parameters
    ----------
    min_history:
        The paper's ``z``: minimum completed tasks before the probabilistic
        model activates for a worker (3 in the experiments).
    fit_method:
        Which MLE variant estimates α (paper's discrete form by default).
    """

    def __init__(
        self,
        min_history: int = 3,
        fit_method: FitMethod = FitMethod.PAPER_DISCRETE,
        family: Optional[DurationModelFamily] = None,
    ) -> None:
        if min_history < 0:
            raise ValueError(f"min_history must be >= 0, got {min_history}")
        self.min_history = min_history
        self.fit_method = fit_method
        # The distribution family is pluggable (ABL-MODEL ablation); the
        # paper's power law is the default.
        self.family = family if family is not None else PowerLawFamily(fit_method)
        # Fit cache keyed by worker id; worker histories are append-only, so
        # a cached fit stays valid until the completed-task count changes.
        # This matters: graph construction re-fits every worker every batch.
        self._fit_cache: dict[int, tuple[int, DurationModel]] = {}
        # Slim power-law parameter cache for the batch paths: worker id →
        # (observation count, alpha, k_min).  The batch methods run every
        # sweep and every graph build over mostly-unchanged workers; reading
        # two floats from this dict skips the fit-object round trip
        # (property access + isinstance + attribute loads) per worker.
        self._param_cache: dict[int, tuple[int, float, float]] = {}
        # Cache effectiveness tallies, exported by the observability layer
        # (plain ints here — core must not depend on repro.obs).  A miss is
        # any trained fit_worker call that had to run the MLE.
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------- fitting
    def fit_worker(self, worker: WorkerProfile) -> Optional[DurationModel]:
        """Fitted duration model for the worker, or None while untrained."""
        n_obs = len(worker.execution_times)
        if n_obs < self.min_history or n_obs == 0:
            return None
        cached = self._fit_cache.get(worker.worker_id)
        if cached is not None and cached[0] == n_obs:
            self.cache_hits += 1
            return cached[1]
        self.cache_misses += 1
        fit = self.family.fit(worker.execution_times)
        self._fit_cache[worker.worker_id] = (n_obs, fit)
        if isinstance(fit, PowerLawFit):
            self._param_cache[worker.worker_id] = (n_obs, fit.alpha, fit.k_min)
        else:
            self._param_cache.pop(worker.worker_id, None)
        return fit

    def evict(self, worker_id: int) -> None:
        """Drop a worker's cached fit (called when he leaves the region).

        Without eviction the cache grows monotonically under churn — every
        worker who ever completed ``min_history`` tasks stays resident
        forever.  :class:`~repro.platform.profiling.ProfilingComponent`
        invokes this from its deregister hook.
        """
        self._fit_cache.pop(worker_id, None)
        self._param_cache.pop(worker_id, None)

    def _powerlaw_params(self, worker: WorkerProfile) -> Optional[tuple[float, float]]:
        """(alpha, k_min) of the worker's current power-law fit, or None.

        Batch-path fast lane: a parameter-cache hit reads two floats and
        never touches the fit object.  Returns None for untrained workers
        *and* for non-power-law fits — callers fall back to
        :meth:`fit_worker` to disambiguate.
        """
        n_obs = len(worker.execution_times)
        if n_obs < self.min_history or n_obs == 0:
            return None
        entry = self._param_cache.get(worker.worker_id)
        if entry is not None and entry[0] == n_obs:
            self.cache_hits += 1
            return (entry[1], entry[2])
        return None

    # ------------------------------------------------------------- Eq. (3)
    def completion_probability(
        self, worker: WorkerProfile, time_to_deadline: float
    ) -> DeadlineEstimate:
        """Eq. (3): Pr(ExecTime < TimeToDeadline) for a fresh assignment."""
        if time_to_deadline <= 0:
            return DeadlineEstimate(probability=0.0, fit=None, trained=False)
        fit = self.fit_worker(worker)
        if fit is None:
            # Untrained worker: the paper instantiates all edges for the
            # first z assignments, i.e. treats completion as certain.
            return DeadlineEstimate(probability=1.0, fit=None, trained=False)
        prob = 1.0 - float(fit.ccdf(time_to_deadline))
        return DeadlineEstimate(probability=min(max(prob, 0.0), 1.0), fit=fit, trained=True)

    def completion_probability_matrix(
        self,
        workers: Sequence[WorkerProfile],
        time_to_deadline: np.ndarray,
    ) -> np.ndarray:
        """Vectorized Eq. (3): (len(workers), len(ttd)) probabilities.

        This is the graph-construction hot path.  Power-law fits (the
        paper's model, and the overwhelmingly common case) are stacked into
        per-worker ``alpha`` / ``k_min`` arrays and evaluated as a single
        broadcasted power over the worker × TTD grid; any other fitted
        family falls back to one vectorized ``ccdf`` call per worker.  Both
        paths are bit-identical to the scalar :meth:`completion_probability`
        (NumPy applies the same elementwise ``pow`` either way).
        """
        ttd = np.asarray(time_to_deadline, dtype=np.float64)
        out = np.empty((len(workers), len(ttd)), dtype=np.float64)
        powerlaw_rows: list[int] = []
        powerlaw_alpha: list[float] = []
        powerlaw_kmin: list[float] = []
        # The gather loop below is the per-batch hot path (every available
        # worker, every batch): the parameter-cache lookup is inlined rather
        # than routed through _powerlaw_params so a hit costs one dict read,
        # and untrained workers short-circuit without a fit_worker call.
        min_history = self.min_history
        param_cache = self._param_cache
        hits = 0
        for i, worker in enumerate(workers):
            n_obs = len(worker.execution_times)
            if n_obs < min_history or n_obs == 0:
                out[i, :] = 1.0
                continue
            entry = param_cache.get(worker.worker_id)
            if entry is not None and entry[0] == n_obs:
                hits += 1
                powerlaw_rows.append(i)
                powerlaw_alpha.append(entry[1])
                powerlaw_kmin.append(entry[2])
                continue
            fit = self.fit_worker(worker)
            if fit is None:
                out[i, :] = 1.0
            elif isinstance(fit, PowerLawFit):
                powerlaw_rows.append(i)
                powerlaw_alpha.append(fit.alpha)
                powerlaw_kmin.append(fit.k_min)
            else:
                out[i, :] = 1.0 - fit.ccdf(ttd)
        self.cache_hits += hits
        if powerlaw_rows:
            alpha = np.asarray(powerlaw_alpha, dtype=np.float64)
            k_min = np.asarray(powerlaw_kmin, dtype=np.float64)
            out[powerlaw_rows, :] = 1.0 - powerlaw_ccdf_grid(alpha, k_min, ttd)
        # Expired deadlines can never be met, trained or not.
        out[:, ttd <= 0] = 0.0
        return np.clip(out, 0.0, 1.0)

    # ------------------------------------------------------------- Eq. (2)
    def window_probability(
        self,
        worker: WorkerProfile,
        elapsed: float,
        time_to_deadline: float,
    ) -> DeadlineEstimate:
        """Eq. (2): Pr(t < ExecTime < TimeToDeadline) mid-execution.

        ``elapsed`` is ``t_ij`` (seconds since assignment); ``time_to_deadline``
        is measured from the *assignment* instant, so the window is
        ``(elapsed, time_to_deadline)``.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed}")
        if time_to_deadline <= elapsed:
            # Deadline already inside the elapsed window: no chance left.
            return DeadlineEstimate(probability=0.0, fit=None, trained=False)
        fit = self.fit_worker(worker)
        if fit is None:
            return DeadlineEstimate(probability=1.0, fit=None, trained=False)
        # 1 - (P(TTD) + (1 - P(t))) = P(t) - P(TTD); clamp guards the tiny
        # negative values the formula yields when t < k_min (both CCDFs 1).
        prob = float(fit.ccdf(elapsed)) - float(fit.ccdf(time_to_deadline))
        return DeadlineEstimate(probability=min(max(prob, 0.0), 1.0), fit=fit, trained=True)

    def window_probability_batch(
        self,
        workers: Sequence[WorkerProfile],
        elapsed: np.ndarray,
        time_to_deadline: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Eq. (2): one probability per (worker, window) row.

        ``workers[i]`` has been executing for ``elapsed[i]`` seconds against
        window ``time_to_deadline[i]``; this is the Dynamic Assignment sweep
        shape — all assigned tasks evaluated in one batch call.

        Returns ``(probabilities, trained)``.  Rows with ``trained`` False
        (untrained worker, or window already closed) carry the same
        probability the scalar :meth:`window_probability` reports (1.0 and
        0.0 respectively); power-law rows are evaluated with stacked
        ``alpha`` / ``k_min`` arrays, bit-identically to the scalar path.
        """
        elapsed = np.asarray(elapsed, dtype=np.float64)
        ttd = np.asarray(time_to_deadline, dtype=np.float64)
        n = len(workers)
        if elapsed.shape != (n,) or ttd.shape != (n,):
            raise ValueError(
                f"elapsed/time_to_deadline must be ({n},) arrays, "
                f"got {elapsed.shape} and {ttd.shape}"
            )
        if n and elapsed.min() < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed.min()}")

        probs = np.ones(n, dtype=np.float64)
        trained = np.zeros(n, dtype=bool)
        closed = ttd <= elapsed
        probs[closed] = 0.0

        powerlaw_rows: list[int] = []
        powerlaw_alpha: list[float] = []
        powerlaw_kmin: list[float] = []
        closed_list = closed.tolist()
        # Same inlined parameter-cache gather as completion_probability_matrix
        # (this is the per-sweep hot path).
        min_history = self.min_history
        param_cache = self._param_cache
        hits = 0
        for i, worker in enumerate(workers):
            if closed_list[i]:
                continue
            n_obs = len(worker.execution_times)
            if n_obs < min_history or n_obs == 0:
                continue
            entry = param_cache.get(worker.worker_id)
            if entry is not None and entry[0] == n_obs:
                hits += 1
                powerlaw_rows.append(i)
                powerlaw_alpha.append(entry[1])
                powerlaw_kmin.append(entry[2])
                continue
            fit = self.fit_worker(worker)
            if fit is None:
                continue
            if isinstance(fit, PowerLawFit):
                powerlaw_rows.append(i)
                powerlaw_alpha.append(fit.alpha)
                powerlaw_kmin.append(fit.k_min)
            else:
                p = float(fit.ccdf(elapsed[i])) - float(fit.ccdf(ttd[i]))
                probs[i] = min(max(p, 0.0), 1.0)
                trained[i] = True
        self.cache_hits += hits
        if powerlaw_rows:
            rows = np.asarray(powerlaw_rows, dtype=np.int64)
            alpha = np.asarray(powerlaw_alpha, dtype=np.float64)
            k_min = np.asarray(powerlaw_kmin, dtype=np.float64)
            p = powerlaw_ccdf_values(alpha, k_min, elapsed[rows]) - powerlaw_ccdf_values(
                alpha, k_min, ttd[rows]
            )
            probs[rows] = np.clip(p, 0.0, 1.0)
            trained[rows] = True
        return probs, trained

    def withdrawal_skip_horizon(
        self,
        worker: WorkerProfile,
        time_to_deadline: float,
        threshold: float,
    ) -> float:
        """Conservative elapsed-time horizon below which Eq. (2) stays ≥ threshold.

        For a power-law fit the Eq. (2) probability ``P(t) − P(TTD)`` is
        nonincreasing in the elapsed time ``t``, so there is a crossing time
        before which the withdrawal rule *cannot* fire.  Solving
        ``(t/k_min)^{1−α} = threshold + P(TTD)`` for ``t`` and keeping 0.1%
        of safety margin (many orders of magnitude above ``pow`` rounding)
        gives a horizon with the guarantee: while the worker's observation
        count is unchanged, any sweep with ``elapsed < horizon`` would
        evaluate a probability ≥ threshold — i.e. no withdrawal.  The sweep
        uses this to skip the batch evaluation of provably-safe rows without
        changing a single withdrawal decision.

        Returns ``inf`` for untrained workers (never withdrawn until their
        fit activates, which changes the observation count and invalidates
        the caller's cache) and ``0.0`` (never skip) for non-power-law
        duration families, whose CCDF shape this closed form does not cover.
        """
        n_obs = len(worker.execution_times)
        if n_obs < self.min_history or n_obs == 0:
            return math.inf
        entry = self._param_cache.get(worker.worker_id)
        if entry is not None and entry[0] == n_obs:
            self.cache_hits += 1
            alpha = entry[1]
            k_min = entry[2]
        else:
            fit = self.fit_worker(worker)
            if not isinstance(fit, PowerLawFit):
                return 0.0
            alpha = fit.alpha
            k_min = fit.k_min
        if time_to_deadline <= k_min:
            p_ttd = 1.0
        else:
            p_ttd = min(max((time_to_deadline / k_min) ** (1.0 - alpha), 0.0), 1.0)
        target = threshold + p_ttd
        if target <= 0.0:
            # threshold 0 against a fully-decayed window: probability can
            # never go strictly below 0, so the rule never fires.
            return math.inf
        if target > 1.0:
            # Even an instant evaluation (P(t) = 1) sits under threshold:
            # the task is withdrawn at the very next sweep, never skip.
            return 0.0
        if alpha <= 1.0:
            # Degenerate fit: the CCDF head clamp keeps P(t) = 1 everywhere.
            return math.inf
        log_ratio = -math.log(target) / (alpha - 1.0)
        if log_ratio > 700.0:  # exp would overflow; the horizon is unreachable
            return math.inf
        return 0.999 * k_min * math.exp(log_ratio)

    def should_reassign(
        self,
        worker: WorkerProfile,
        elapsed: float,
        time_to_deadline: float,
        threshold: float,
    ) -> bool:
        """Reassignment rule: pull the task when Eq. (2) < ``threshold``.

        Untrained workers are never reassigned (the paper: "the first 3
        tasks in every worker are not going to be reassigned so as to train
        the system about his performance").
        """
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(f"threshold must be in [0,1], got {threshold}")
        estimate = self.window_probability(worker, elapsed, time_to_deadline)
        if not estimate.trained:
            return False
        return estimate.probability < threshold
