"""The paper's primary contribution: matching algorithms, Eq. 1 weights,
and the Eq. 2/3 probabilistic deadline model."""

from .deadline import DeadlineEstimate, DeadlineEstimator
from .matching import (
    GreedyMatcher,
    HungarianMatcher,
    Matcher,
    MatchingError,
    MatchingResult,
    MetropolisMatcher,
    MetropolisParameters,
    ReactMatcher,
    ReactParameters,
    SortedGreedyMatcher,
    UniformMatcher,
    available_matchers,
    create_matcher,
)
from .weights import (
    AccuracyWeight,
    ConstantWeight,
    DistanceWeight,
    HybridWeight,
    WeightFunction,
    make_weight_function,
)

__all__ = [
    "DeadlineEstimate",
    "DeadlineEstimator",
    "GreedyMatcher",
    "HungarianMatcher",
    "Matcher",
    "MatchingError",
    "MatchingResult",
    "MetropolisMatcher",
    "MetropolisParameters",
    "ReactMatcher",
    "ReactParameters",
    "SortedGreedyMatcher",
    "UniformMatcher",
    "available_matchers",
    "create_matcher",
    "AccuracyWeight",
    "ConstantWeight",
    "DistanceWeight",
    "HybridWeight",
    "WeightFunction",
    "make_weight_function",
]
