"""Edge weight functions ``F(worker_i, task_j)`` (paper §IV-A).

The paper's experiments use the worker-"quality" weight of Eq. (1):

    F(worker_i, task_j) = Σ PositiveTask_ij / Σ FinishedTask_ij ∈ [0, 1]

i.e. the fraction of positive feedbacks the worker has earned on tasks in
the same category.  §IV-A also sketches a distance-based weight for
location-critical applications ("we could use their geographical distance on
the weight in order to get the nearest worker"); both are implemented, plus
a hybrid combination, behind a common callable protocol so the Scheduling
Component is weight-agnostic.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..model.region import haversine_km, haversine_km_matrix
from ..model.task import Task
from ..model.worker import WorkerProfile


def _pairwise_km(
    workers: Sequence[WorkerProfile], tasks: Sequence[Task]
) -> np.ndarray:
    """(workers × tasks) great-circle distance matrix, one broadcast call."""
    wlat = np.array([w.latitude for w in workers], dtype=np.float64)
    wlon = np.array([w.longitude for w in workers], dtype=np.float64)
    tlat = np.array([t.latitude for t in tasks], dtype=np.float64)
    tlon = np.array([t.longitude for t in tasks], dtype=np.float64)
    return haversine_km_matrix(
        wlat[:, None], wlon[:, None], tlat[None, :], tlon[None, :]
    )


class WeightFunction(abc.ABC):
    """Computes ``w_ij`` for worker/task pairs.

    ``matrix`` is the vectorized entry point used during graph construction
    (one call per batch instead of one per edge); ``single`` exists for
    tests and ad-hoc inspection and must agree with ``matrix``.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def matrix(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        """(len(workers), len(tasks)) array of weights in [0, 1]."""

    def single(self, worker: WorkerProfile, task: Task) -> float:
        return float(self.matrix([worker], [task])[0, 0])


class AccuracyWeight(WeightFunction):
    """Eq. (1): per-category positive-feedback fraction.

    Workers with no finished tasks in the category get weight 0 — the
    cold-start rule in :mod:`repro.graph.builders` separately overrides the
    weight to the maximum for a new worker's first ``z`` assignments ("to
    train him"), so this function stays a pure mirror of Eq. (1).
    """

    name = "accuracy"

    def matrix(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        out = np.empty((len(workers), len(tasks)), dtype=np.float64)
        # Group the per-worker accuracy lookups by the distinct categories in
        # the batch: one pass per category instead of one per (i, j) cell.
        categories = {}
        for j, task in enumerate(tasks):
            categories.setdefault(task.category, []).append(j)
        for category, cols in categories.items():
            # Read the profile's pushed accuracy mirror directly: one dict
            # lookup per worker in this per-batch loop (see
            # WorkerProfile.accuracy_by_category).
            col_accuracy = np.array(
                [w.accuracy_by_category.get(category, 0.0) for w in workers],
                dtype=np.float64,
            )
            out[:, cols] = col_accuracy[:, None]
        return out


class DistanceWeight(WeightFunction):
    """Proximity weight: 1 at zero distance, 0 at/after ``max_km``.

    The paper suggests using the worker-task geographical distance so that
    "a worker who is physically located on the requested location would
    provide accurate results"; we map distance to [0, 1] with a linear decay
    so it composes with Eq. (1) weights.
    """

    name = "distance"

    def __init__(self, max_km: float = 10.0) -> None:
        if max_km <= 0:
            raise ValueError(f"max_km must be positive, got {max_km}")
        self.max_km = max_km

    def matrix(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        km = _pairwise_km(workers, tasks)
        return np.maximum(0.0, 1.0 - km / self.max_km)

    def matrix_scalar(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        """Pre-vectorization reference path (one scalar haversine per cell).

        Kept as the bit-equivalence oracle for :meth:`matrix` and as the
        baseline side of the ``distance_weight`` perf benchmark; not used
        on any hot path.
        """
        out = np.empty((len(workers), len(tasks)), dtype=np.float64)
        for i, worker in enumerate(workers):
            for j, task in enumerate(tasks):
                km = haversine_km(
                    worker.latitude, worker.longitude, task.latitude, task.longitude
                )
                out[i, j] = max(0.0, 1.0 - km / self.max_km)
        return out


class TravelTimeWeight(WeightFunction):
    """Travel-time-aware spatial weight (Liu & Xu-style edge utility).

    Converts the worker→task great-circle distance into a travel time at
    ``speed_kmh`` and maps it linearly onto [0, 1]: weight 1 for a worker
    already on site, 0 once the trip alone would eat ``horizon_s`` seconds
    — i.e. the worker could not plausibly reach the task within a typical
    deadline, so the edge is worthless to every matcher.
    """

    name = "travel-time"

    def __init__(self, speed_kmh: float = 30.0, horizon_s: float = 600.0) -> None:
        if speed_kmh <= 0:
            raise ValueError(f"speed_kmh must be positive, got {speed_kmh}")
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        self.speed_kmh = speed_kmh
        self.horizon_s = horizon_s

    def matrix(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        km = _pairwise_km(workers, tasks)
        travel_s = km / self.speed_kmh * 3600.0
        return np.clip(1.0 - travel_s / self.horizon_s, 0.0, 1.0)


class HybridWeight(WeightFunction):
    """Convex combination ``β·accuracy + (1−β)·distance``."""

    name = "hybrid"

    def __init__(self, beta: float = 0.5, max_km: float = 10.0) -> None:
        if not (0.0 <= beta <= 1.0):
            raise ValueError(f"beta must be in [0,1], got {beta}")
        self.beta = beta
        self._accuracy = AccuracyWeight()
        self._distance = DistanceWeight(max_km=max_km)

    def matrix(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        return self.beta * self._accuracy.matrix(workers, tasks) + (
            1.0 - self.beta
        ) * self._distance.matrix(workers, tasks)


class ConstantWeight(WeightFunction):
    """All edges share one weight (testing / uniform-baseline helper)."""

    name = "constant"

    def __init__(self, value: float = 1.0) -> None:
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"value must be in [0,1], got {value}")
        self.value = value

    def matrix(
        self, workers: Sequence[WorkerProfile], tasks: Sequence[Task]
    ) -> np.ndarray:
        return np.full((len(workers), len(tasks)), self.value, dtype=np.float64)


def make_weight_function(name: str, **kwargs: float) -> WeightFunction:
    """Factory by name: accuracy | distance | travel-time | hybrid | constant."""
    factories = {
        "accuracy": AccuracyWeight,
        "distance": DistanceWeight,
        "travel-time": TravelTimeWeight,
        "hybrid": HybridWeight,
        "constant": ConstantWeight,
    }
    if name not in factories:
        raise KeyError(f"unknown weight function {name!r}; known: {sorted(factories)}")
    return factories[name](**kwargs)
