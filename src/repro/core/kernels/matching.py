"""Pure-Python optimized matching kernels.

Same algorithms as :mod:`repro.core.kernels.reference`, restructured for
CPython speed without changing a single decision:

* the loop only ever touches the edge picked this cycle or an edge already
  in the matching, so instead of converting the full O(E) edge arrays the
  kernels gather the picked edges' endpoints and weights with one vectorized
  fancy-index (O(cycles)) and read them from plain lists (~20 ns per access
  versus ~100+ ns for NumPy scalar indexing);
* a matched edge's endpoints and weight are carried in the per-vertex state
  (``worker_edge_task``, ``worker_edge_w``, …), so conflict eviction needs
  no random access into the edge arrays at all;
* state lives in a ``bytearray`` / plain lists, ``math.exp`` is hoisted to a
  local, and the per-cycle stream is consumed through one ``zip`` unpack
  instead of five indexed list reads.

``ndarray.tolist()`` preserves exact float64 values and ``math.exp`` of the
same double yields the same double, so every comparison sees identical bits;
the equivalence suite (``tests/core_matching/test_kernel_equivalence``)
asserts selected edges, counters and RNG consumption match the reference.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from .reference import NO_EDGE


def _matched_indices(worker_edge: list) -> np.ndarray:
    """Ascending int64 indices of the matched edges.

    Every selected edge is registered at its worker endpoint exactly once,
    so collecting from the O(|U|) vertex state and sorting is equivalent to
    ``np.flatnonzero`` over the O(E) selection mask, just cheaper.
    """
    matched = sorted(e for e in worker_edge if e != NO_EDGE)
    return np.asarray(matched, dtype=np.int64)


def react_match(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Algorithm 1 cycle loop over plain-list state."""
    stream = zip(
        picks.tolist(),
        ew[picks].tolist(),
        et[picks].tolist(),
        wt[picks].tolist(),
        alphas.tolist(),
    )
    exp = math.exp

    selected = bytearray(len(wt))
    worker_edge = [NO_EDGE] * n_workers
    worker_edge_task = [NO_EDGE] * n_workers
    worker_edge_w = [0.0] * n_workers
    task_edge = [NO_EDGE] * n_tasks
    task_edge_worker = [NO_EDGE] * n_tasks
    task_edge_w = [0.0] * n_tasks

    accepted_add = accepted_evict = accepted_remove = rejected = 0

    for e, wi, tj, w_new, alpha in stream:
        if selected[e]:
            # Flip removes edge e: g(x') = g - w_e <= g.
            if w_new <= 0.0 or alpha <= exp(-w_new * inv_k):
                selected[e] = 0
                worker_edge[wi] = NO_EDGE
                task_edge[tj] = NO_EDGE
                accepted_remove += 1
            else:
                rejected += 1
            continue

        conflict_w = worker_edge[wi]
        conflict_t = task_edge[tj]
        if conflict_w == NO_EDGE and conflict_t == NO_EDGE:
            # Conflict-free addition: always accept (non-negative weights).
            accepted_add += 1
        else:
            # Conflict branch: accept only if the new edge outweighs every
            # matched edge it collides with (at most two, found by lookup).
            if conflict_w != NO_EDGE and worker_edge_w[wi] >= w_new:
                rejected += 1
                continue
            if conflict_t != NO_EDGE and task_edge_w[tj] >= w_new:
                rejected += 1
                continue
            if conflict_w != NO_EDGE:
                selected[conflict_w] = 0
                task_edge[worker_edge_task[wi]] = NO_EDGE
                worker_edge[wi] = NO_EDGE
            if conflict_t != NO_EDGE:
                selected[conflict_t] = 0
                worker_edge[task_edge_worker[tj]] = NO_EDGE
                task_edge[tj] = NO_EDGE
            accepted_evict += 1
        selected[e] = 1
        worker_edge[wi] = e
        worker_edge_task[wi] = tj
        worker_edge_w[wi] = w_new
        task_edge[tj] = e
        task_edge_worker[tj] = wi
        task_edge_w[tj] = w_new

    stats = {
        "accepted_add": accepted_add,
        "accepted_evict": accepted_evict,
        "accepted_remove": accepted_remove,
        "rejected": rejected,
    }
    return _matched_indices(worker_edge), stats


def metropolis_match(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Metropolis cycle loop over plain-list state.

    The running fitness ``g`` is accumulated in the same order as the
    reference, so the collapse-acceptance comparisons see identical doubles.
    """
    stream = zip(
        picks.tolist(),
        ew[picks].tolist(),
        et[picks].tolist(),
        wt[picks].tolist(),
        alphas.tolist(),
    )
    n_edges = len(wt)
    exp = math.exp

    selected = bytearray(n_edges)
    worker_edge = [NO_EDGE] * n_workers
    task_edge = [NO_EDGE] * n_tasks
    g = 0.0

    accepted_add = accepted_remove = collapses = rejected = 0

    for e, wi, tj, w, alpha in stream:
        if selected[e]:
            if w <= 0.0 or alpha <= exp(-w * inv_k):
                selected[e] = 0
                worker_edge[wi] = NO_EDGE
                task_edge[tj] = NO_EDGE
                g = max(0.0, g - w)
                accepted_remove += 1
            else:
                rejected += 1
            continue

        if worker_edge[wi] == NO_EDGE and task_edge[tj] == NO_EDGE:
            selected[e] = 1
            worker_edge[wi] = e
            task_edge[tj] = e
            g += w
            accepted_add += 1
            continue

        # Conflicting addition: g(x') = 0, accept with exp((0 - g)/K).
        if g > 0.0 and alpha > exp(-g * inv_k):
            rejected += 1
            continue
        # Zero-fitness state accepted: collapse to the single new edge.
        selected = bytearray(n_edges)
        worker_edge = [NO_EDGE] * n_workers
        task_edge = [NO_EDGE] * n_tasks
        selected[e] = 1
        worker_edge[wi] = e
        task_edge[tj] = e
        g = w
        collapses += 1

    stats = {
        "accepted_add": accepted_add,
        "accepted_remove": accepted_remove,
        "collapses": collapses,
        "rejected": rejected,
    }
    return _matched_indices(worker_edge), stats
