"""Batched power-law CCDF kernels for the Eq. (2)/(3) hot paths.

:class:`~repro.stats.powerlaw.PowerLawFit.ccdf` evaluates one fitted worker
at a time.  Graph construction (Eq. 3) needs the whole worker × deadline
grid and the reassignment sweep (Eq. 2) needs one probability per assigned
task; both previously looped over workers in Python.  These helpers stack
the per-worker parameters (``alpha``, ``k_min``) into arrays and evaluate a
single broadcasted ``np.power``.

Elementwise the computation is identical to the scalar path —
``(k / k_min) ** (1 - alpha)``, head values (``k <= k_min``) forced to 1,
clipped to [0, 1] — and NumPy applies the same scalar ``pow`` kernel per
element either way, so results are bit-identical to per-fit calls.
"""

from __future__ import annotations

import numpy as np


def powerlaw_ccdf_grid(
    alpha: np.ndarray, k_min: np.ndarray, k: np.ndarray
) -> np.ndarray:
    """CCDF grid for many fits over a shared horizon vector.

    Parameters are ``(W,)`` arrays of per-worker fit parameters and a
    ``(T,)`` horizon vector; the result is the ``(W, T)`` matrix with
    ``out[i, j] = P_i(k_j)``.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    k_min = np.asarray(k_min, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = np.power(k[None, :] / k_min[:, None], 1.0 - alpha[:, None])
    out = np.where(k[None, :] <= k_min[:, None], 1.0, out)
    return np.clip(out, 0.0, 1.0)


def powerlaw_ccdf_values(
    alpha: np.ndarray, k_min: np.ndarray, k: np.ndarray
) -> np.ndarray:
    """Pointwise CCDF: fit ``i`` evaluated at its own horizon ``k[i]``.

    All three arguments are ``(N,)`` arrays; the result is ``(N,)`` with
    ``out[i] = P_i(k_i)``.  This is the Eq. (2) sweep shape: one assigned
    task per row, each with its own worker fit and elapsed/deadline horizon.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    k_min = np.asarray(k_min, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = np.power(k / k_min, 1.0 - alpha)
    out = np.where(k <= k_min, 1.0, out)
    return np.clip(out, 0.0, 1.0)
