"""Optional numba JIT backend for the matching kernels.

Importing this module requires numba; the kernels package only does so after
a successful auto-detection, so environments without numba never touch it.
Compilation is lazy (first call per signature) and cached on disk where
numba's cache directory is writable.

The loops mirror :mod:`repro.core.kernels.reference` operation for
operation: same comparisons on the same float64 values, same pre-drawn
random sequences, so the JIT path is bit-equivalent to the reference and
pure-Python paths (``math.exp`` lowers to the same libm call CPython uses).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np
from numba import njit

from .reference import NO_EDGE


@njit(cache=True)
def _react_loop(ew, et, wt, n_workers, n_tasks, picks, alphas, inv_k):
    n_edges = wt.shape[0]
    budget = picks.shape[0]
    selected = np.zeros(n_edges, dtype=np.uint8)
    worker_edge = np.full(n_workers, NO_EDGE, dtype=np.int64)
    task_edge = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    stats = np.zeros(4, dtype=np.int64)  # add, evict, remove, rejected

    for cycle in range(budget):
        e = picks[cycle]
        if selected[e]:
            w = wt[e]
            if w <= 0.0:
                selected[e] = 0
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                stats[2] += 1
            elif alphas[cycle] <= math.exp(-w * inv_k):
                selected[e] = 0
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                stats[2] += 1
            else:
                stats[3] += 1
            continue

        wi = ew[e]
        tj = et[e]
        conflict_w = worker_edge[wi]
        conflict_t = task_edge[tj]
        if conflict_w == NO_EDGE and conflict_t == NO_EDGE:
            selected[e] = 1
            worker_edge[wi] = e
            task_edge[tj] = e
            stats[0] += 1
            continue

        w_new = wt[e]
        if conflict_w != NO_EDGE and wt[conflict_w] >= w_new:
            stats[3] += 1
            continue
        if conflict_t != NO_EDGE and wt[conflict_t] >= w_new:
            stats[3] += 1
            continue
        if conflict_w != NO_EDGE:
            selected[conflict_w] = 0
            worker_edge[ew[conflict_w]] = NO_EDGE
            task_edge[et[conflict_w]] = NO_EDGE
        if conflict_t != NO_EDGE:
            selected[conflict_t] = 0
            worker_edge[ew[conflict_t]] = NO_EDGE
            task_edge[et[conflict_t]] = NO_EDGE
        selected[e] = 1
        worker_edge[wi] = e
        task_edge[tj] = e
        stats[1] += 1

    return selected, stats


@njit(cache=True)
def _wbgm_loop(ew, et, wt, n_workers, n_tasks, picks, alphas, inv_k):
    n_edges = wt.shape[0]
    budget = picks.shape[0]
    selected = np.zeros(n_edges, dtype=np.uint8)
    worker_edge = np.full(n_workers, NO_EDGE, dtype=np.int64)
    task_edge = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    stats = np.zeros(4, dtype=np.int64)  # add, evict, remove, rejected

    for cycle in range(budget):
        e = picks[cycle]
        if selected[e]:
            w = wt[e]
            if w <= 0.0:
                selected[e] = 0
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                stats[2] += 1
            elif alphas[cycle] <= math.exp(-w * inv_k):
                selected[e] = 0
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                stats[2] += 1
            else:
                stats[3] += 1
            continue

        wi = ew[e]
        tj = et[e]
        conflict_w = worker_edge[wi]
        conflict_t = task_edge[tj]
        if conflict_w == NO_EDGE and conflict_t == NO_EDGE:
            selected[e] = 1
            worker_edge[wi] = e
            task_edge[tj] = e
            stats[0] += 1
            continue

        w_new = wt[e]
        if conflict_w != NO_EDGE and wt[conflict_w] >= w_new:
            stats[3] += 1
            continue
        if conflict_t != NO_EDGE and wt[conflict_t] >= w_new:
            stats[3] += 1
            continue
        if conflict_w != NO_EDGE:
            selected[conflict_w] = 0
            worker_edge[ew[conflict_w]] = NO_EDGE
            task_edge[et[conflict_w]] = NO_EDGE
        if conflict_t != NO_EDGE:
            selected[conflict_t] = 0
            worker_edge[ew[conflict_t]] = NO_EDGE
            task_edge[et[conflict_t]] = NO_EDGE
        selected[e] = 1
        worker_edge[wi] = e
        task_edge[tj] = e
        stats[1] += 1

    # Dense task -> worker extraction from the vertex-index state: one-to-one
    # by construction, no per-edge rescan in Python afterwards.
    task_assignment = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    for tj in range(n_tasks):
        e = task_edge[tj]
        if e != NO_EDGE:
            task_assignment[tj] = ew[e]

    return selected, task_assignment, stats


@njit(cache=True)
def _metropolis_loop(ew, et, wt, n_workers, n_tasks, picks, alphas, inv_k):
    n_edges = wt.shape[0]
    cycles = picks.shape[0]
    selected = np.zeros(n_edges, dtype=np.uint8)
    worker_edge = np.full(n_workers, NO_EDGE, dtype=np.int64)
    task_edge = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    stats = np.zeros(4, dtype=np.int64)  # add, remove, collapses, rejected
    g = 0.0

    for cycle in range(cycles):
        e = picks[cycle]
        if selected[e]:
            w = wt[e]
            if w <= 0.0 or alphas[cycle] <= math.exp(-w * inv_k):
                selected[e] = 0
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                g = max(0.0, g - w)
                stats[1] += 1
            else:
                stats[3] += 1
            continue

        wi = ew[e]
        tj = et[e]
        if worker_edge[wi] == NO_EDGE and task_edge[tj] == NO_EDGE:
            selected[e] = 1
            worker_edge[wi] = e
            task_edge[tj] = e
            g += wt[e]
            stats[0] += 1
            continue

        if g > 0.0 and alphas[cycle] > math.exp(-g * inv_k):
            stats[3] += 1
            continue
        selected[:] = 0
        worker_edge[:] = NO_EDGE
        task_edge[:] = NO_EDGE
        selected[e] = 1
        worker_edge[wi] = e
        task_edge[tj] = e
        g = wt[e]
        stats[2] += 1

    return selected, stats


def react_match(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, Dict[str, int]]:
    selected, s = _react_loop(
        ew, et, wt, np.int64(n_workers), np.int64(n_tasks), picks, alphas, inv_k
    )
    stats = {
        "accepted_add": int(s[0]),
        "accepted_evict": int(s[1]),
        "accepted_remove": int(s[2]),
        "rejected": int(s[3]),
    }
    return np.flatnonzero(selected), stats


def wbgm_accept_loop(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, np.ndarray, Dict[str, int]]:
    selected, task_assignment, s = _wbgm_loop(
        ew, et, wt, np.int64(n_workers), np.int64(n_tasks), picks, alphas, inv_k
    )
    stats = {
        "accepted_add": int(s[0]),
        "accepted_evict": int(s[1]),
        "accepted_remove": int(s[2]),
        "rejected": int(s[3]),
    }
    return np.flatnonzero(selected), task_assignment, stats


def metropolis_match(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, Dict[str, int]]:
    selected, s = _metropolis_loop(
        ew, et, wt, np.int64(n_workers), np.int64(n_tasks), picks, alphas, inv_k
    )
    stats = {
        "accepted_add": int(s[0]),
        "accepted_remove": int(s[1]),
        "collapses": int(s[2]),
        "rejected": int(s[3]),
    }
    return np.flatnonzero(selected), stats
