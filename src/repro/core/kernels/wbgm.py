"""Full WBGM accept/conflict kernels: cycle loop + assignment extraction.

The plain :func:`~repro.core.kernels.react_match` kernel returns the selected
edge indices and leaves the task → worker mapping to Python: the matcher's
``MatchingResult.task_assignment()`` re-scanned the matched edges per batch
and ``validate()`` re-proved one-to-one-ness that the kernel's vertex-index
state already guarantees.  ``wbgm_accept_loop`` is the *full* Algorithm 1
step — the identical accept/evict/remove/reject cycle loop followed by a
dense task-assignment extraction — so downstream consumers get

``(edge_indices, task_assignment, stats)``

where ``task_assignment[j]`` is the matched worker index of task ``j`` (or
:data:`~repro.core.kernels.reference.NO_EDGE`) and is one-to-one *by
construction*: each entry comes from the kernel's ``task_edge`` index, which
holds at most one edge per task, and each worker appears at most once because
``worker_edge`` holds at most one edge per worker.

The reference backend delegates to the seed loop verbatim and derives the
assignment with NumPy, anchoring behaviour; the optimized backends must
match it bit for bit (same cycle decisions, same pre-drawn RNG consumption —
see ``tests/core_matching/test_kernel_equivalence.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from . import reference as _reference
from .reference import NO_EDGE

WbgmReturn = Tuple[np.ndarray, np.ndarray, Dict[str, int]]


def wbgm_accept_loop_reference(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> WbgmReturn:
    """Seed cycle loop + NumPy assignment extraction (behavioural anchor)."""
    edge_indices, stats = _reference.react_match(
        ew, et, wt, n_workers, n_tasks, picks, alphas, inv_k
    )
    task_assignment = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    task_assignment[et[edge_indices]] = ew[edge_indices]
    return edge_indices, task_assignment, stats


def wbgm_accept_loop_python(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> WbgmReturn:
    """Plain-list cycle loop with direct assignment extraction.

    Identical decision sequence to :func:`repro.core.kernels.matching.
    react_match` (``tolist`` round-trips preserve float64 bits and
    ``math.exp`` of the same double is the same double); the task → worker
    mapping falls out of the per-vertex state the loop maintains anyway, so
    no post-hoc edge scan is needed.
    """
    stream = zip(
        picks.tolist(),
        ew[picks].tolist(),
        et[picks].tolist(),
        wt[picks].tolist(),
        alphas.tolist(),
    )
    exp = math.exp

    selected = bytearray(len(wt))
    worker_edge = [NO_EDGE] * n_workers
    worker_edge_task = [NO_EDGE] * n_workers
    worker_edge_w = [0.0] * n_workers
    task_edge = [NO_EDGE] * n_tasks
    task_edge_worker = [NO_EDGE] * n_tasks
    task_edge_w = [0.0] * n_tasks

    accepted_add = accepted_evict = accepted_remove = rejected = 0

    for e, wi, tj, w_new, alpha in stream:
        if selected[e]:
            # Flip removes edge e: g(x') = g - w_e <= g.
            if w_new <= 0.0 or alpha <= exp(-w_new * inv_k):
                selected[e] = 0
                worker_edge[wi] = NO_EDGE
                task_edge[tj] = NO_EDGE
                accepted_remove += 1
            else:
                rejected += 1
            continue

        conflict_w = worker_edge[wi]
        conflict_t = task_edge[tj]
        if conflict_w == NO_EDGE and conflict_t == NO_EDGE:
            # Conflict-free addition: always accept (non-negative weights).
            accepted_add += 1
        else:
            # Conflict branch: accept only if the new edge outweighs every
            # matched edge it collides with (at most two, found by lookup).
            if conflict_w != NO_EDGE and worker_edge_w[wi] >= w_new:
                rejected += 1
                continue
            if conflict_t != NO_EDGE and task_edge_w[tj] >= w_new:
                rejected += 1
                continue
            if conflict_w != NO_EDGE:
                selected[conflict_w] = 0
                task_edge[worker_edge_task[wi]] = NO_EDGE
                worker_edge[wi] = NO_EDGE
            if conflict_t != NO_EDGE:
                selected[conflict_t] = 0
                worker_edge[task_edge_worker[tj]] = NO_EDGE
                task_edge[tj] = NO_EDGE
            accepted_evict += 1
        selected[e] = 1
        worker_edge[wi] = e
        worker_edge_task[wi] = tj
        worker_edge_w[wi] = w_new
        task_edge[tj] = e
        task_edge_worker[tj] = wi
        task_edge_w[tj] = w_new

    matched = sorted(e for e in worker_edge if e != NO_EDGE)
    edge_indices = np.asarray(matched, dtype=np.int64)
    # ``task_edge_worker`` entries are only authoritative while the task's
    # ``task_edge`` slot is occupied (removal leaves them stale on purpose).
    task_assignment = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    for tj, e in enumerate(task_edge):
        if e != NO_EDGE:
            task_assignment[tj] = task_edge_worker[tj]

    stats = {
        "accepted_add": accepted_add,
        "accepted_evict": accepted_evict,
        "accepted_remove": accepted_remove,
        "rejected": rejected,
    }
    return edge_indices, task_assignment, stats
