"""Optimized hot-path kernels (matching inner loops, batched Eq. 2/3).

The reproduction's three hottest paths — the REACT/Metropolis cycle loops
(Algorithm 1), the Eq. (3) edge-instantiation matrix and the Eq. (2)
reassignment sweep — were originally written as per-item Python loops over
NumPy arrays, so the Fig. 3/9/10 scalability benchmarks measured interpreter
overhead (NumPy *scalar* indexing costs ~100 ns per access) rather than
algorithmic cost.  This package holds drop-in kernels for those loops:

* :mod:`~repro.core.kernels.reference` — the seed implementations, kept
  verbatim as the behavioural anchor.  Every optimized kernel is gated by a
  seeded bit-equivalence suite (``tests/core_matching/
  test_kernel_equivalence.py``) against these.
* :mod:`~repro.core.kernels.matching` — pure-Python kernels: plain-list
  state, vectorized gathers of the picked edges and hoisted attribute
  lookups.  No dependencies beyond the stdlib; 3-4× the reference
  throughput (see ``BENCH_matching.json``).
* :mod:`~repro.core.kernels.numba_backend` — optional ``@njit`` kernels,
  auto-detected at import time and compiled lazily on first use.  Absent
  numba (or with ``REPRO_DISABLE_NUMBA=1`` in the environment) the package
  falls back to the pure-Python kernels with no behaviour change.
* :mod:`~repro.core.kernels.deadline` — broadcasted power-law CCDF
  evaluation used by the vectorized Eq. (2)/(3) paths in
  :class:`~repro.core.deadline.DeadlineEstimator`.

All matching kernels consume *pre-drawn* random sequences (one edge pick and
one uniform acceptance draw per cycle), so RNG stream consumption is
identical across backends by construction; the equivalence suite asserts the
selected edges, stats counters and post-call RNG state all match bit for
bit.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import numpy as np

from . import matching as _matching
from . import reference as _reference
from . import wbgm as _wbgm
from .deadline import powerlaw_ccdf_grid, powerlaw_ccdf_values

__all__ = [
    "NUMBA_AVAILABLE",
    "available_backends",
    "active_backend",
    "set_backend",
    "react_match",
    "metropolis_match",
    "wbgm_accept_loop",
    "powerlaw_ccdf_grid",
    "powerlaw_ccdf_values",
]


def _numba_disabled_by_env() -> bool:
    return os.environ.get("REPRO_DISABLE_NUMBA", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


#: True when the numba JIT backend can be used (numba importable and not
#: disabled via ``REPRO_DISABLE_NUMBA``).  Detected once at import.
NUMBA_AVAILABLE = False
if not _numba_disabled_by_env():
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401

        NUMBA_AVAILABLE = True
    except ImportError:
        NUMBA_AVAILABLE = False


#: Backend registry: name → (react kernel, metropolis kernel).  The numba
#: entry is registered lazily below when available.
_BACKENDS: Dict[str, Tuple[object, object]] = {
    "reference": (_reference.react_match, _reference.metropolis_match),
    "python": (_matching.react_match, _matching.metropolis_match),
}

#: WBGM full-loop registry: name → wbgm_accept_loop kernel.  Kept parallel to
#: ``_BACKENDS`` (same names, same default resolution) rather than widening
#: its tuples, so existing two-kernel consumers keep unpacking cleanly.
_WBGM_BACKENDS: Dict[str, object] = {
    "reference": _wbgm.wbgm_accept_loop_reference,
    "python": _wbgm.wbgm_accept_loop_python,
}

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    from . import numba_backend as _numba_backend

    _BACKENDS["numba"] = (
        _numba_backend.react_match,
        _numba_backend.metropolis_match,
    )
    _WBGM_BACKENDS["numba"] = _numba_backend.wbgm_accept_loop

_active_backend = "numba" if NUMBA_AVAILABLE else "python"


def available_backends() -> Tuple[str, ...]:
    """Registered kernel backend names, in registration order."""
    return tuple(_BACKENDS)


def active_backend() -> str:
    """The backend used when a matcher does not request one explicitly."""
    return _active_backend


def set_backend(name: str) -> str:
    """Select the default backend; returns the previous one.

    Intended for tests and the perf harness; production code leaves the
    auto-detected default in place.
    """
    global _active_backend
    if name not in _BACKENDS:
        raise KeyError(f"unknown kernel backend {name!r}; known: {sorted(_BACKENDS)}")
    previous = _active_backend
    _active_backend = name
    return previous


def _resolve(backend: str | None) -> Tuple[object, object]:
    name = _active_backend if backend is None else backend
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {name!r}; known: {sorted(_BACKENDS)}"
        ) from None


def react_match(
    edge_workers: np.ndarray,
    edge_tasks: np.ndarray,
    edge_weights: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
    backend: str | None = None,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Run the REACT (Algorithm 1) cycle loop on the selected backend.

    Returns ``(edge_indices, stats)`` where ``edge_indices`` is the sorted
    ``int64`` array of selected edges and ``stats`` the acceptance counters
    (``accepted_add`` / ``accepted_evict`` / ``accepted_remove`` /
    ``rejected``).
    """
    kernel, _ = _resolve(backend)
    return kernel(
        edge_workers, edge_tasks, edge_weights, n_workers, n_tasks, picks, alphas, inv_k
    )


def metropolis_match(
    edge_workers: np.ndarray,
    edge_tasks: np.ndarray,
    edge_weights: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
    backend: str | None = None,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Run the Metropolis baseline cycle loop on the selected backend.

    Returns ``(edge_indices, stats)`` with counters ``accepted_add`` /
    ``accepted_remove`` / ``collapses`` / ``rejected``.
    """
    _, kernel = _resolve(backend)
    return kernel(
        edge_workers, edge_tasks, edge_weights, n_workers, n_tasks, picks, alphas, inv_k
    )


def wbgm_accept_loop(
    edge_workers: np.ndarray,
    edge_tasks: np.ndarray,
    edge_weights: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
    backend: str | None = None,
) -> Tuple[np.ndarray, np.ndarray, Dict[str, int]]:
    """Run the *full* WBGM step on the selected backend.

    Identical cycle-loop decisions to :func:`react_match`, plus a dense
    task-assignment extraction performed inside the kernel: returns
    ``(edge_indices, task_assignment, stats)`` where ``task_assignment[j]``
    is the matched worker index of task ``j`` or ``-1``, one-to-one by
    construction of the kernel's vertex-index state (see
    :mod:`repro.core.kernels.wbgm`).
    """
    name = _active_backend if backend is None else backend
    try:
        kernel = _WBGM_BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel backend {name!r}; known: {sorted(_WBGM_BACKENDS)}"
        ) from None
    return kernel(  # type: ignore[operator]
        edge_workers, edge_tasks, edge_weights, n_workers, n_tasks, picks, alphas, inv_k
    )
