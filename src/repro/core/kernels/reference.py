"""Seed (reference) implementations of the matching cycle loops.

These are the inner loops exactly as the matchers shipped them before the
kernels layer existed: per-cycle NumPy scalar indexing on the edge arrays.
They are deliberately kept verbatim — slow, but the behavioural ground truth
that every optimized backend must match bit for bit (same selected edges,
same stats counters, same consumption of the pre-drawn random sequences).
The equivalence suite and the perf-regression harness both run them.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

#: Sentinel for "vertex currently unmatched" in the index arrays.
NO_EDGE = -1


def react_match(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Algorithm 1 cycle loop as in the seed ``ReactMatcher.match``."""
    n_edges = len(wt)
    budget = len(picks)
    selected = np.zeros(n_edges, dtype=bool)
    worker_edge = np.full(n_workers, NO_EDGE, dtype=np.int64)
    task_edge = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    g = 0.0

    accepted_add = accepted_evict = accepted_remove = rejected = 0

    for cycle in range(budget):
        e = int(picks[cycle])
        if selected[e]:
            # Flip removes edge e: g(x') = g - w_e <= g.
            w = wt[e]
            if w <= 0.0:
                # g(x') == g(x): accept (the >= branch of Algorithm 1).
                selected[e] = False
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                accepted_remove += 1
            elif alphas[cycle] <= math.exp(-w * inv_k):
                selected[e] = False
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                g -= w
                accepted_remove += 1
            else:
                rejected += 1
            continue

        wi = ew[e]
        tj = et[e]
        conflict_w = worker_edge[wi]
        conflict_t = task_edge[tj]
        if conflict_w == NO_EDGE and conflict_t == NO_EDGE:
            # Conflict-free addition: g(x') = g + w >= g, always accept.
            selected[e] = True
            worker_edge[wi] = e
            task_edge[tj] = e
            g += wt[e]
            accepted_add += 1
            continue

        # g(x') = 0 branch: new edge collides with one or two matched
        # edges.  Accept only if it outweighs *every* one of them.
        w_new = wt[e]
        beats = True
        if conflict_w != NO_EDGE and wt[conflict_w] >= w_new:
            beats = False
        if beats and conflict_t != NO_EDGE and wt[conflict_t] >= w_new:
            beats = False
        if not beats:
            rejected += 1
            continue
        for old in {int(conflict_w), int(conflict_t)}:
            if old == NO_EDGE:
                continue
            selected[old] = False
            worker_edge[ew[old]] = NO_EDGE
            task_edge[et[old]] = NO_EDGE
            g -= wt[old]
        selected[e] = True
        worker_edge[wi] = e
        task_edge[tj] = e
        g += w_new
        accepted_evict += 1

    stats = {
        "accepted_add": accepted_add,
        "accepted_evict": accepted_evict,
        "accepted_remove": accepted_remove,
        "rejected": rejected,
    }
    return np.flatnonzero(selected), stats


def metropolis_match(
    ew: np.ndarray,
    et: np.ndarray,
    wt: np.ndarray,
    n_workers: int,
    n_tasks: int,
    picks: np.ndarray,
    alphas: np.ndarray,
    inv_k: float,
) -> Tuple[np.ndarray, Dict[str, int]]:
    """Metropolis cycle loop as in the seed ``MetropolisMatcher.match``."""
    n_edges = len(wt)
    cycles = len(picks)
    selected = np.zeros(n_edges, dtype=bool)
    worker_edge = np.full(n_workers, NO_EDGE, dtype=np.int64)
    task_edge = np.full(n_tasks, NO_EDGE, dtype=np.int64)
    g = 0.0

    accepted_add = accepted_remove = collapses = rejected = 0

    for cycle in range(cycles):
        e = int(picks[cycle])
        if selected[e]:
            w = wt[e]
            if w <= 0.0 or alphas[cycle] <= math.exp(-w * inv_k):
                selected[e] = False
                worker_edge[ew[e]] = NO_EDGE
                task_edge[et[e]] = NO_EDGE
                g = max(0.0, g - w)
                accepted_remove += 1
            else:
                rejected += 1
            continue

        wi = ew[e]
        tj = et[e]
        if worker_edge[wi] == NO_EDGE and task_edge[tj] == NO_EDGE:
            selected[e] = True
            worker_edge[wi] = e
            task_edge[tj] = e
            g += wt[e]
            accepted_add += 1
            continue

        # Conflicting addition: g(x') = 0, accept with exp((0 - g)/K).
        if g > 0.0 and alphas[cycle] > math.exp(-g * inv_k):
            rejected += 1
            continue
        # Accepted a zero-fitness state: the matching collapses to the
        # single new edge (all previously selected edges are dropped so
        # the state is a valid matching again).
        selected[:] = False
        worker_edge[:] = NO_EDGE
        task_edge[:] = NO_EDGE
        selected[e] = True
        worker_edge[wi] = e
        task_edge[tj] = e
        g = float(wt[e])
        collapses += 1

    stats = {
        "accepted_add": accepted_add,
        "accepted_remove": accepted_remove,
        "collapses": collapses,
        "rejected": rejected,
    }
    return np.flatnonzero(selected), stats
