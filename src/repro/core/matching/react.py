"""REACT Weighted Bipartite Graph Matching — Algorithm 1 of the paper.

A randomized local search over matching states.  The state ``x`` is a subset
of edges; each cycle flips one uniformly random edge and the move is judged
by the fitness ``g(x) = Σ w_ij x_ij`` (with ``g = 0`` for states where two
selected edges share a vertex):

* ``g(x') >= g(x)``            → accept (always true when adding a
  conflict-free edge, since weights are non-negative);
* ``g(x') = 0`` (conflict)     → compare the new edge's weight against every
  already-matched edge sharing one of its endpoints; if it beats *all* of
  them, evict them and accept, otherwise reject — this eviction rule is the
  paper's improvement over plain Metropolis matching;
* ``g(x') < g(x)`` (removal)   → accept with probability
  ``exp((g(x') − g(x)) / K)`` — the simulated-annealing escape hatch.

Complexity: the paper reports O(c·E) because its implementation scans the
edge list to find conflicting matched edges.  This implementation keeps
``matched-edge-of-worker`` / ``matched-edge-of-task`` indices, making every
cycle O(1) (so O(c) total); a candidate edge conflicts with at most two
matched edges, both found by direct lookup.  The simulated *latency* of the
paper's implementation is modelled separately by
:mod:`repro.platform.cost`, keeping algorithmic behaviour and testbed cost
calibration orthogonal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...graph.bipartite import BipartiteGraph
from .. import kernels
from ..kernels.reference import NO_EDGE  # noqa: F401  (re-exported sentinel)
from .base import Matcher, MatchingResult, empty_result


@dataclass(frozen=True)
class ReactParameters:
    """Tunables of Algorithm 1.

    Attributes
    ----------
    cycles:
        Iteration budget ``c``.  The paper runs 1000 in the end-to-end
        experiments and 1000/3000 in the matching micro-benchmarks, noting
        the speed/quality trade-off.
    k_constant:
        The acceptance temperature ``K`` in ``exp((g(x')-g(x))/K)``.  The
        paper never states its value; the default 0.05 keeps the
        probability of dropping a typical-weight edge (w ~ 0.5-1.0)
        negligible (e^-10 .. e^-20) while still admitting escapes from
        near-zero-weight local choices — see the ABL-K ablation bench.
    adaptive_cycles:
        §IV-A suggests "an adaptive cycles parameter based on the graph's
        order of magnitude could be selected".  When enabled the budget
        becomes ``max(cycles, adaptive_factor × E)``.
    adaptive_factor:
        Cycles per edge used by the adaptive rule.
    """

    cycles: int = 1000
    k_constant: float = 0.05
    adaptive_cycles: bool = False
    adaptive_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {self.cycles}")
        if self.k_constant <= 0:
            raise ValueError(f"K must be positive, got {self.k_constant}")
        if self.adaptive_factor <= 0:
            raise ValueError(
                f"adaptive_factor must be positive, got {self.adaptive_factor}"
            )

    def budget_for(self, n_edges: int) -> int:
        if self.adaptive_cycles:
            return max(self.cycles, int(math.ceil(self.adaptive_factor * n_edges)))
        return self.cycles


class ReactMatcher(Matcher):
    """Algorithm 1: randomized matching with conflict eviction.

    The cycle loop runs on a kernel backend (``reference`` / ``python`` /
    ``numba``, see :mod:`repro.core.kernels`); all backends are
    bit-equivalent, so the choice only affects wall-clock speed.  ``backend``
    pins one explicitly (the perf harness compares them); by default the
    auto-detected fastest backend is used.
    """

    name = "react"

    def __init__(
        self,
        params: Optional[ReactParameters] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.params = params or ReactParameters()
        self.backend = backend

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        rng = self._rng(rng)
        params = self.params
        budget = params.budget_for(graph.n_edges)

        # Pre-draw the random sequences in bulk: one edge choice and one
        # uniform acceptance draw per cycle (guide idiom — vectorize the RNG
        # even when the loop itself is state-dependent).  Every kernel
        # backend consumes exactly these two draws, so the stream position
        # after a match is backend-independent.
        picks = rng.integers(0, graph.n_edges, size=budget)
        alphas = rng.random(budget)

        edge_indices, task_worker, stats = kernels.wbgm_accept_loop(
            graph.edge_workers,
            graph.edge_tasks,
            graph.edge_weights,
            graph.n_workers,
            graph.n_tasks,
            picks,
            alphas,
            1.0 / params.k_constant,
            backend=self.backend,
        )
        return MatchingResult(
            graph=graph,
            edge_indices=edge_indices,
            algorithm=self.name,
            cycles_used=budget,
            stats=stats,
            task_worker=task_worker,
        )
