"""Metropolis matching baseline (Shih 2008, as characterised in the paper).

Markov-chain Monte Carlo over matching states: each cycle flips a uniformly
random edge and the move is accepted with the Metropolis rule on the fitness
``g(x) = Σ w_ij x_ij``.  The paper's stated difference from REACT is that
Metropolis "do[es] not consider the case for g(x') = 0 at all": when the
flipped edge conflicts with the current matching, the state ``x'`` has
fitness 0, so the acceptance probability ``exp((0 − g)/K)`` is negligible
for any non-trivial matching and the move is effectively always rejected —
there is no weight-comparison eviction.  (We evaluate the rule literally: in
the measure-zero event that the draw accepts a zero-fitness state, the
conflicting matching collapses to just the new edge, which is the honest
reading of "accept x'".)

The consequence, visible in Fig. 4, is that Metropolis can only *remove then
re-add* to replace a poor edge — two lucky moves — where REACT evicts in
one, so at equal cycles REACT reaches higher output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...graph.bipartite import BipartiteGraph
from .. import kernels
from .base import Matcher, MatchingResult, empty_result


@dataclass(frozen=True)
class MetropolisParameters:
    """Tunables: iteration budget ``cycles`` and temperature ``K``."""

    cycles: int = 1000
    k_constant: float = 0.05

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {self.cycles}")
        if self.k_constant <= 0:
            raise ValueError(f"K must be positive, got {self.k_constant}")


class MetropolisMatcher(Matcher):
    """MCMC matcher without conflict eviction.

    Like :class:`~repro.core.matching.react.ReactMatcher`, the cycle loop
    runs on a bit-equivalent kernel backend (:mod:`repro.core.kernels`);
    ``backend`` pins one explicitly, the default is auto-detected.
    """

    name = "metropolis"

    def __init__(
        self,
        params: Optional[MetropolisParameters] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.params = params or MetropolisParameters()
        self.backend = backend

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        rng = self._rng(rng)
        params = self.params

        picks = rng.integers(0, graph.n_edges, size=params.cycles)
        alphas = rng.random(params.cycles)

        edge_indices, stats = kernels.metropolis_match(
            graph.edge_workers,
            graph.edge_tasks,
            graph.edge_weights,
            graph.n_workers,
            graph.n_tasks,
            picks,
            alphas,
            1.0 / params.k_constant,
            backend=self.backend,
        )
        return MatchingResult(
            graph=graph,
            edge_indices=edge_indices,
            algorithm=self.name,
            cycles_used=params.cycles,
            stats=stats,
        )
