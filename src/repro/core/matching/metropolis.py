"""Metropolis matching baseline (Shih 2008, as characterised in the paper).

Markov-chain Monte Carlo over matching states: each cycle flips a uniformly
random edge and the move is accepted with the Metropolis rule on the fitness
``g(x) = Σ w_ij x_ij``.  The paper's stated difference from REACT is that
Metropolis "do[es] not consider the case for g(x') = 0 at all": when the
flipped edge conflicts with the current matching, the state ``x'`` has
fitness 0, so the acceptance probability ``exp((0 − g)/K)`` is negligible
for any non-trivial matching and the move is effectively always rejected —
there is no weight-comparison eviction.  (We evaluate the rule literally: in
the measure-zero event that the draw accepts a zero-fitness state, the
conflicting matching collapses to just the new edge, which is the honest
reading of "accept x'".)

The consequence, visible in Fig. 4, is that Metropolis can only *remove then
re-add* to replace a poor edge — two lucky moves — where REACT evicts in
one, so at equal cycles REACT reaches higher output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...graph.bipartite import BipartiteGraph
from .base import Matcher, MatchingResult, empty_result
from .react import NO_EDGE


@dataclass(frozen=True)
class MetropolisParameters:
    """Tunables: iteration budget ``cycles`` and temperature ``K``."""

    cycles: int = 1000
    k_constant: float = 0.05

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {self.cycles}")
        if self.k_constant <= 0:
            raise ValueError(f"K must be positive, got {self.k_constant}")


class MetropolisMatcher(Matcher):
    """MCMC matcher without conflict eviction."""

    name = "metropolis"

    def __init__(self, params: Optional[MetropolisParameters] = None) -> None:
        self.params = params or MetropolisParameters()

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        rng = self._rng(rng)
        params = self.params

        ew = graph.edge_workers
        et = graph.edge_tasks
        wt = graph.edge_weights

        selected = np.zeros(graph.n_edges, dtype=bool)
        worker_edge = np.full(graph.n_workers, NO_EDGE, dtype=np.int64)
        task_edge = np.full(graph.n_tasks, NO_EDGE, dtype=np.int64)
        g = 0.0

        picks = rng.integers(0, graph.n_edges, size=params.cycles)
        alphas = rng.random(params.cycles)
        inv_k = 1.0 / params.k_constant

        accepted_add = accepted_remove = collapses = rejected = 0

        for cycle in range(params.cycles):
            e = int(picks[cycle])
            if selected[e]:
                w = wt[e]
                if w <= 0.0 or alphas[cycle] <= math.exp(-w * inv_k):
                    selected[e] = False
                    worker_edge[ew[e]] = NO_EDGE
                    task_edge[et[e]] = NO_EDGE
                    g = max(0.0, g - w)
                    accepted_remove += 1
                else:
                    rejected += 1
                continue

            wi = ew[e]
            tj = et[e]
            if worker_edge[wi] == NO_EDGE and task_edge[tj] == NO_EDGE:
                selected[e] = True
                worker_edge[wi] = e
                task_edge[tj] = e
                g += wt[e]
                accepted_add += 1
                continue

            # Conflicting addition: g(x') = 0, accept with exp((0 - g)/K).
            if g > 0.0 and alphas[cycle] > math.exp(-g * inv_k):
                rejected += 1
                continue
            # Accepted a zero-fitness state: the matching collapses to the
            # single new edge (all previously selected edges are dropped so
            # the state is a valid matching again).
            selected[:] = False
            worker_edge[:] = NO_EDGE
            task_edge[:] = NO_EDGE
            selected[e] = True
            worker_edge[wi] = e
            task_edge[tj] = e
            g = float(wt[e])
            collapses += 1

        return MatchingResult(
            graph=graph,
            edge_indices=np.flatnonzero(selected),
            algorithm=self.name,
            cycles_used=params.cycles,
            stats={
                "accepted_add": accepted_add,
                "accepted_remove": accepted_remove,
                "collapses": collapses,
                "rejected": rejected,
            },
        )
