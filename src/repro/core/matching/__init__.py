"""Weighted bipartite graph matching algorithms (paper §IV-A, §V-B)."""

from .base import Matcher, MatchingError, MatchingResult, empty_result
from .greedy import GreedyMatcher, SortedGreedyMatcher
from .hungarian import HungarianMatcher
from .metropolis import MetropolisMatcher, MetropolisParameters
from .react import ReactMatcher, ReactParameters
from .registry import available_matchers, create_matcher, register
from .uniform import UniformMatcher

__all__ = [
    "Matcher",
    "MatchingError",
    "MatchingResult",
    "empty_result",
    "GreedyMatcher",
    "SortedGreedyMatcher",
    "HungarianMatcher",
    "MetropolisMatcher",
    "MetropolisParameters",
    "ReactMatcher",
    "ReactParameters",
    "available_matchers",
    "create_matcher",
    "register",
    "UniformMatcher",
]
