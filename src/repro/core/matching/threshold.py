"""Threshold ("ratio") matching baseline for heterogeneous tasks.

Assadi, Hsu & Jabbari study online task assignment with heterogeneous
tasks and derive competitive-ratio guarantees for *threshold* rules: an
edge is only usable when the worker's (estimated) skill on the task's type
clears a quality bar, and among usable edges the highest-quality ones are
taken first.  :class:`ThresholdMatcher` is the batch analogue: discard
every edge whose weight falls below ``threshold``, then run the
``sorted-greedy`` descending-weight sweep over what survives.

Against REACT's WBGM this trades throughput for per-assignment quality —
with per-type skills on the weight, a specialist keeps his slot for his
specialty even when a generalist would have matched first, but tasks with
no qualified worker in the batch go unassigned rather than to a weak match.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graph.bipartite import BipartiteGraph
from .base import Matcher, MatchingResult, empty_result


class ThresholdMatcher(Matcher):
    """Descending-weight sweep over edges at or above a quality bar."""

    name = "threshold"

    def __init__(self, threshold: float = 0.5) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = threshold

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        ew = graph.edge_workers
        et = graph.edge_tasks
        wt = graph.edge_weights
        order = np.argsort(-wt, kind="stable")

        worker_free = np.ones(graph.n_workers, dtype=bool)
        task_free = np.ones(graph.n_tasks, dtype=bool)
        chosen: list[int] = []
        for e in order:
            if wt[e] < self.threshold:
                # Descending order: every remaining edge is below the bar.
                break
            w, t = ew[e], et[e]
            if worker_free[w] and task_free[t]:
                worker_free[w] = False
                task_free[t] = False
                chosen.append(int(e))

        return MatchingResult(
            graph=graph,
            edge_indices=np.asarray(chosen, dtype=np.int64),
            algorithm=self.name,
            stats={"tasks_matched": len(chosen)},
        )
