"""Traditional (AMT-like) uniform assignment baseline.

Section V-C: "in the traditional approach we try to simulate the traditional
non real-time crowdsourcing systems, such as the AMT.  Hence, we use uniform
matching for the assignment and the probabilistic model that we developed is
not being used."

Workers on AMT self-select tasks without regard to skill or deadline;
uniform random matching over the available edges models that.  Each task is
given a uniformly random still-free neighbouring worker, in random task
order (so neither early tasks nor early workers are systematically
favoured).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graph.bipartite import BipartiteGraph
from .base import Matcher, MatchingResult, empty_result


class UniformMatcher(Matcher):
    """Uniform random task→worker matching; ignores edge weights."""

    name = "uniform"

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        rng = self._rng(rng)
        ew = graph.edge_workers
        et = graph.edge_tasks

        order = np.argsort(et, kind="stable")
        sorted_tasks = et[order]
        boundaries = np.searchsorted(sorted_tasks, np.arange(graph.n_tasks + 1))

        # Plain-list walk; the RNG call sequence is untouched (one
        # ``permutation`` plus one ``integers`` per task with free
        # neighbours), so seeded runs replay identically.  The filtered
        # candidate list preserves slice order exactly as the boolean-mask
        # gather did.
        order_list = order.tolist()
        owner_list = ew[order].tolist()
        bounds = boundaries.tolist()
        worker_free = bytearray(b"\x01") * graph.n_workers
        chosen: list[int] = []
        for task in rng.permutation(graph.n_tasks).tolist():
            start, stop = bounds[task], bounds[task + 1]
            if start == stop:
                continue
            free = [pos for pos in range(start, stop) if worker_free[owner_list[pos]]]
            if not free:
                continue
            pos = free[rng.integers(0, len(free))]
            worker_free[owner_list[pos]] = 0
            chosen.append(order_list[pos])

        return MatchingResult(
            graph=graph,
            edge_indices=np.asarray(sorted(chosen), dtype=np.int64),
            algorithm=self.name,
            stats={"tasks_matched": len(chosen)},
        )
