"""Matcher interface and matching-result container.

All matchers consume a :class:`~repro.graph.bipartite.BipartiteGraph` and
produce a :class:`MatchingResult` — a set of selected edges such that no two
share a vertex (the constraint set of the paper's §III-C maximization
problem).  The randomized matchers additionally accept an RNG so that the
platform can route their randomness through a named stream.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...graph.bipartite import BipartiteGraph


class MatchingError(ValueError):
    """Raised when a produced matching violates the one-to-one constraints."""


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of one matcher invocation.

    Attributes
    ----------
    graph:
        The input graph (kept so validation and weight audits are possible).
    edge_indices:
        Indices into the graph's edge arrays; the selected matching M.
    algorithm:
        Matcher name (for reporting).
    cycles_used:
        Iterations consumed (randomized matchers) or 0.
    stats:
        Free-form per-run counters (accepted/rejected moves etc.).
    task_worker:
        Optional dense ``int64`` array of length ``graph.n_tasks`` mapping
        task index → matched worker index (``-1`` unmatched), produced
        in-kernel by :func:`repro.core.kernels.wbgm_accept_loop`.  When a
        kernel supplies it, the mapping is one-to-one *by construction*
        (the kernel's per-vertex index state admits at most one edge per
        worker and per task), so :meth:`validate` and the ``__post_init__``
        duplicate check become O(1) and :meth:`task_assignment` needs no
        per-edge scan.
    """

    graph: BipartiteGraph
    edge_indices: np.ndarray
    algorithm: str
    cycles_used: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    task_worker: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        idx = np.ascontiguousarray(self.edge_indices, dtype=np.int64)
        object.__setattr__(self, "edge_indices", idx)
        if len(idx) and (idx.min() < 0 or idx.max() >= self.graph.n_edges):
            raise MatchingError("edge index out of range")
        if self.task_worker is not None:
            if len(self.task_worker) != self.graph.n_tasks:
                raise MatchingError("task_worker length != graph.n_tasks")
            # A kernel-built matching is duplicate-free by construction.
            return
        if len(np.unique(idx)) != len(idx):
            raise MatchingError("duplicate edge in matching")

    # ----------------------------------------------------------- contents
    @property
    def size(self) -> int:
        """Cardinality |M|."""
        return len(self.edge_indices)

    @property
    def total_weight(self) -> float:
        """The objective Σ w_ij x_ij the paper maximizes (fitness g(x))."""
        return float(self.graph.edge_weights[self.edge_indices].sum())

    @property
    def workers(self) -> np.ndarray:
        return self.graph.edge_workers[self.edge_indices]

    @property
    def tasks(self) -> np.ndarray:
        return self.graph.edge_tasks[self.edge_indices]

    def pairs(self) -> List[Tuple[int, int]]:
        """(worker_index, task_index) pairs of the matching."""
        return list(zip(self.workers.tolist(), self.tasks.tolist()))

    def task_assignment(self) -> Dict[int, int]:
        """task index → worker index mapping."""
        if self.task_worker is not None:
            row = self.task_worker.tolist()
            return {t: w for t, w in enumerate(row) if w >= 0}
        return {int(t): int(w) for w, t in zip(self.workers, self.tasks)}

    def task_assignment_dense(self) -> np.ndarray:
        """Dense task index → worker index array (``-1`` = unmatched).

        Returns the kernel-precomputed :attr:`task_worker` row when present;
        otherwise derives it once from the matched edges.
        """
        if self.task_worker is not None:
            return self.task_worker
        row = np.full(self.graph.n_tasks, -1, dtype=np.int64)
        row[self.tasks] = self.workers
        return row

    # ---------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise :class:`MatchingError` unless M is a valid matching.

        Checks the two §III-C constraint families: each worker in at most
        one selected edge, each task in at most one selected edge.  A
        kernel-supplied :attr:`task_worker` row certifies both families by
        construction, so the uniqueness scans are skipped.
        """
        if self.task_worker is not None:
            return
        workers = self.workers
        tasks = self.tasks
        if len(np.unique(workers)) != len(workers):
            raise MatchingError("a worker appears in two matched edges")
        if len(np.unique(tasks)) != len(tasks):
            raise MatchingError("a task appears in two matched edges")

    @property
    def is_valid(self) -> bool:
        try:
            self.validate()
        except MatchingError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchingResult(algorithm={self.algorithm!r}, size={self.size}, "
            f"weight={self.total_weight:.4f})"
        )


class Matcher(abc.ABC):
    """Abstract weighted-bipartite-graph matcher."""

    #: Short identifier used in reports and the registry.
    name: str = "abstract"

    @abc.abstractmethod
    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        """Compute a matching of ``graph``.

        Deterministic matchers ignore ``rng``; randomized ones require it —
        the platform threads the named matcher stream (``sim.rng``), and
        standalone callers must pass ``np.random.default_rng(seed)``.
        Omitting it raises :class:`MatchingError` rather than silently
        falling back to OS entropy, which would make reruns diverge.
        """

    def _rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        if rng is None:
            raise MatchingError(
                f"{type(self).__name__} is randomized and requires an explicit "
                "rng: thread the platform's matcher stream "
                "(RngRegistry.stream(STREAM_MATCHER)) or pass "
                "np.random.default_rng(seed). An implicit unseeded generator "
                "would break run-to-run reproducibility (reprolint DET001)."
            )
        return rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def empty_result(graph: BipartiteGraph, algorithm: str) -> MatchingResult:
    """The empty matching (used for empty graphs)."""
    return MatchingResult(
        graph=graph,
        edge_indices=np.empty(0, dtype=np.int64),
        algorithm=algorithm,
    )
