"""Offline-optimal matching via the Hungarian method (reference).

The paper's introduction notes the offline assignment problem "can be solved
using linear programming or by the Hungarian algorithm [Kuhn 1955] ...
however, these approaches have high computational overhead which makes them
inappropriate for use in dynamic systems."  We include the optimal solver —
backed by :func:`scipy.optimize.linear_sum_assignment` — as the ground-truth
yardstick for Fig. 4's matching-output comparison and for the matcher
property tests (no algorithm may exceed the optimal objective).

Sparse graphs are handled by giving absent edges zero profit, then filtering
any such phantom pairs out of the result; a selected phantom pair simply
means "leave that task unmatched".  Zero (not negative) profit matters: the
objective is pure maximum weight (Σ w_ij, the paper's §III-C program), so
leaving a vertex unmatched must cost nothing — a negative phantom would
bribe the solver into low-weight pairings just to cover vertices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import linear_sum_assignment

from ...graph.bipartite import BipartiteGraph
from .base import Matcher, MatchingResult, empty_result

#: Profit of non-edges: zero, so unmatched vertices cost nothing.
_PHANTOM = 0.0


class HungarianMatcher(Matcher):
    """Exact maximum-weight bipartite matching (offline optimal)."""

    name = "hungarian"

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)

        profit = np.full((graph.n_workers, graph.n_tasks), _PHANTOM, dtype=np.float64)
        profit[graph.edge_workers, graph.edge_tasks] = graph.edge_weights
        rows, cols = linear_sum_assignment(profit, maximize=True)

        # Map selected (worker, task) cells back to edge indices, dropping
        # phantom pairs (cells that are not real edges) and zero-gain picks.
        edge_lookup = {
            (int(w), int(t)): i
            for i, (w, t) in enumerate(zip(graph.edge_workers, graph.edge_tasks))
        }
        chosen = [
            edge_lookup[(int(w), int(t))]
            for w, t in zip(rows, cols)
            if (int(w), int(t)) in edge_lookup
        ]
        return MatchingResult(
            graph=graph,
            edge_indices=np.asarray(sorted(chosen), dtype=np.int64),
            algorithm=self.name,
            stats={"tasks_matched": len(chosen)},
        )
