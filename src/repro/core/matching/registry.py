"""Name → matcher factory registry.

Experiment configs refer to matchers by name ("react", "greedy", ...); the
registry turns those names into configured instances so the harnesses stay
declarative.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .base import Matcher
from .greedy import GreedyMatcher, SortedGreedyMatcher
from .hungarian import HungarianMatcher
from .metropolis import MetropolisMatcher, MetropolisParameters
from .react import ReactMatcher, ReactParameters
from .threshold import ThresholdMatcher

MatcherFactory = Callable[..., Matcher]

_REGISTRY: Dict[str, MatcherFactory] = {}


def register(name: str, factory: MatcherFactory) -> None:
    """Register a matcher factory; re-registering a name is an error."""
    if name in _REGISTRY:
        raise ValueError(f"matcher {name!r} is already registered")
    _REGISTRY[name] = factory


def create_matcher(
    name: str,
    *,
    cycles: Optional[int] = None,
    k_constant: Optional[float] = None,
    adaptive_cycles: bool = False,
) -> Matcher:
    """Instantiate a matcher by registry name.

    ``cycles`` / ``k_constant`` apply to the randomized matchers and are
    rejected (rather than silently ignored) for deterministic ones.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown matcher {name!r}; known: {sorted(_REGISTRY)}"
        )
    randomized = name in ("react", "metropolis")
    if not randomized and (cycles is not None or k_constant is not None or adaptive_cycles):
        raise ValueError(f"matcher {name!r} does not take cycles/K parameters")
    if name == "react":
        params = ReactParameters(
            cycles=1000 if cycles is None else cycles,
            k_constant=0.05 if k_constant is None else k_constant,
            adaptive_cycles=adaptive_cycles,
        )
        return ReactMatcher(params)
    if name == "metropolis":
        params = MetropolisParameters(
            cycles=1000 if cycles is None else cycles,
            k_constant=0.05 if k_constant is None else k_constant,
        )
        return MetropolisMatcher(params)
    return _REGISTRY[name]()


def available_matchers() -> list[str]:
    return sorted(_REGISTRY)


# Built-in registrations.
register("react", ReactMatcher)
register("metropolis", MetropolisMatcher)
register("greedy", GreedyMatcher)
register("sorted-greedy", SortedGreedyMatcher)
register("hungarian", HungarianMatcher)
register("threshold", ThresholdMatcher)

# UniformMatcher registers here too, imported late to avoid a cycle in
# postponed-annotation evaluation order.
from .uniform import UniformMatcher  # noqa: E402

register("uniform", UniformMatcher)
