"""Greedy matching baseline (§V-B of the paper).

"The basic idea of the Greedy matching is to select the edge
(worker_i, task_j) for any unassigned task_j ∈ V with the highest weight
w_ij, that is subject to the constraints defined for the WBGM.  The
complexity of such an approach is O(V·E) since for every task it needs to
iterate through the edges and check its weight with all of the available
workers."

Two implementations are provided:

* :class:`GreedyMatcher` — the paper's per-task scan.  Tasks are processed
  in index order; each takes its best still-free worker.  Output quality is
  near-optimal on full graphs (Fig. 4) but the O(V·E) cost is what melts
  down in Figs. 5/9 — that cost is reproduced in simulated time by
  :mod:`repro.platform.cost`.
* :class:`SortedGreedyMatcher` — an ablation variant: globally sort edges by
  descending weight and sweep once, O(E log E).  Not in the paper; included
  to quantify how much of Greedy's pain is the naive scan.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...graph.bipartite import BipartiteGraph
from .base import Matcher, MatchingResult, empty_result


class GreedyMatcher(Matcher):
    """Per-task highest-weight-edge selection (the paper's Greedy)."""

    name = "greedy"

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        ew = graph.edge_workers
        et = graph.edge_tasks
        wt = graph.edge_weights

        # Group edge indices by task once (sorted by task, then by weight
        # descending within the task) so each task's scan is a slice walk.
        # The algorithmic outcome is identical to the paper's linear scan:
        # each task takes its maximum-weight edge among free workers.
        order = np.lexsort((-wt, et))
        sorted_tasks = et[order]
        boundaries = np.searchsorted(sorted_tasks, np.arange(graph.n_tasks + 1))

        # Plain-list walk (NumPy scalar indexing costs ~100 ns per access,
        # which dominated this loop; same decisions, same output order).
        order_list = order.tolist()
        owner_list = ew[order].tolist()
        bounds = boundaries.tolist()
        worker_free = bytearray(b"\x01") * graph.n_workers
        chosen: list[int] = []
        for task in range(graph.n_tasks):
            start, stop = bounds[task], bounds[task + 1]
            for pos in range(start, stop):
                wi = owner_list[pos]
                if worker_free[wi]:
                    worker_free[wi] = 0
                    chosen.append(order_list[pos])
                    break

        return MatchingResult(
            graph=graph,
            edge_indices=np.asarray(chosen, dtype=np.int64),
            algorithm=self.name,
            stats={"tasks_matched": len(chosen)},
        )


class SortedGreedyMatcher(Matcher):
    """Global descending-weight sweep, O(E log E) (ablation variant)."""

    name = "sorted-greedy"

    def match(
        self, graph: BipartiteGraph, rng: Optional[np.random.Generator] = None
    ) -> MatchingResult:
        if graph.is_empty:
            return empty_result(graph, self.name)
        ew = graph.edge_workers
        et = graph.edge_tasks
        order = np.argsort(-graph.edge_weights, kind="stable")

        worker_free = np.ones(graph.n_workers, dtype=bool)
        task_free = np.ones(graph.n_tasks, dtype=bool)
        chosen: list[int] = []
        for e in order:
            w, t = ew[e], et[e]
            if worker_free[w] and task_free[t]:
                worker_free[w] = False
                task_free[t] = False
                chosen.append(int(e))

        return MatchingResult(
            graph=graph,
            edge_indices=np.asarray(chosen, dtype=np.int64),
            algorithm=self.name,
            stats={"tasks_matched": len(chosen)},
        )
