"""Heterogeneous-task worker populations (Assadi et al.-style skills).

Assadi, Hsu & Jabbari model task heterogeneity as per-type worker skill:
a worker who is excellent at image labeling may be mediocre at price
checks.  :func:`specialize_population` turns the paper's scalar-quality
population into exactly that — each worker gets one specialty category
(round-robin, so every category is covered regardless of population size)
with boosted latent quality, while the remaining categories are penalized.

The platform sees nothing new: :class:`~repro.model.worker.WorkerBehavior`
already routes feedback draws through ``quality_by_category``, and Eq. 1
weights are per-category by construction, so the matcher *learns* the
specialties from feedback alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from ..model.task import TaskCategory
from ..model.worker import WorkerBehavior, WorkerProfile


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


@dataclass(frozen=True)
class SpecialistConfig:
    """How sharply workers specialize.

    ``specialty_boost`` is added to the worker's scalar quality on his
    specialty category; ``offcat_penalty`` is subtracted on every other
    listed category (both clamped to [0, 1]).  Categories not in the
    scenario's list fall back to the scalar quality.
    """

    categories: Tuple[TaskCategory, ...] = (
        TaskCategory.TRAFFIC_MONITORING,
        TaskCategory.PRICE_CHECK,
        TaskCategory.IMAGE_LABELING,
    )
    specialty_boost: float = 0.25
    offcat_penalty: float = 0.30

    def __post_init__(self) -> None:
        if not self.categories:
            raise ValueError("need at least one category")
        if len(set(self.categories)) != len(self.categories):
            raise ValueError("categories must be distinct")
        if self.specialty_boost < 0 or self.offcat_penalty < 0:
            raise ValueError("boost/penalty must be non-negative")


def specialize_population(
    population: Sequence[Tuple[WorkerProfile, WorkerBehavior]],
    config: SpecialistConfig,
) -> List[Tuple[WorkerProfile, WorkerBehavior]]:
    """Assign each worker a specialty and derive per-category qualities.

    Specialties rotate round-robin through ``config.categories`` in
    population order — deterministic (no RNG draws), so specializing a
    seeded population perturbs no other stream.
    """
    specialized: List[Tuple[WorkerProfile, WorkerBehavior]] = []
    categories = config.categories
    for index, (profile, behavior) in enumerate(population):
        specialty = categories[index % len(categories)]
        skills: Dict[TaskCategory, float] = {}
        for category in categories:
            if category is specialty:
                skills[category] = _clamp(behavior.quality + config.specialty_boost)
            else:
                skills[category] = _clamp(behavior.quality - config.offcat_penalty)
        specialized.append(
            (profile, replace(behavior, quality_by_category=skills))
        )
    return specialized
