"""The scenario policy roster: REACT's matchers vs two related-work rules.

A scenario run compares the repo's three main techniques against batch
analogues of the two papers the scenario ingredients come from:

* ``greedy_spatial`` — Liu & Xu's budget-aware spatial crowdsourcing
  assigns greedily on a travel-cost-aware utility with no probabilistic
  model; here: the Greedy matcher over the travel-time weight, per-task
  triggering, region-graph cost accounting (the same O(V·E) scan REACT's
  paper charges Greedy with).
* ``ratio`` — Assadi et al.'s threshold ("competitive-ratio") rule for
  heterogeneous tasks only assigns a worker whose estimated skill on the
  task's type clears a bar; here: the ``threshold`` matcher over the
  hybrid accuracy×distance weight, so the bar is on the learned per-type
  accuracy blended with proximity.

The REACT/Metropolis/Greedy entries run the hybrid weight too — in a
spatial scenario every technique should at least see the geography;
budgets are enforced below the policy layer (edge gating + intake
shedding) and need nothing here.
"""

from __future__ import annotations

from typing import Tuple

from ..platform.policies import (
    SchedulingPolicy,
    greedy_policy,
    metropolis_policy,
    react_policy,
)

#: Travel-time weight parameters shared by the spatial baselines: a metro
#: courier speed and a horizon matching the §V-C deadline band, so a worker
#: across the box still gets a usable (but dominated) weight.
_TRAVEL_PARAMS: Tuple[Tuple[str, float], ...] = (
    ("speed_kmh", 25.0),
    ("horizon_s", 3600.0),
)


def scenario_policies() -> Tuple[SchedulingPolicy, ...]:
    """The five techniques a scenario run compares."""
    return (
        react_policy(weight_function_name="hybrid"),
        metropolis_policy(weight_function_name="hybrid"),
        greedy_policy(weight_function_name="hybrid"),
        SchedulingPolicy(
            name="greedy_spatial",
            matcher_name="greedy",
            weight_function_name="travel-time",
            weight_params=_TRAVEL_PARAMS,
            use_probabilistic_model=False,
            charge_region_graph=True,
            batch_threshold=1,
        ),
        SchedulingPolicy(
            name="ratio",
            matcher_name="threshold",
            weight_function_name="hybrid",
            use_probabilistic_model=False,
            batch_threshold=5,
        ),
    )
