"""Scenario pack: budget, spatial and heterogeneous-task extensions.

The paper's §V experiments run one homogeneous region with anonymous
requesters.  This package supplies the three ingredients its motivating
applications (§I-II) actually have — per-requester budgets, geography that
matters, and task types with type-specific worker skill — so the
platform's multi-region coordinator, budget gating and load shedding are
exercised for real:

* :mod:`repro.scenarios.budget` — per-requester budget ledger implementing
  the :class:`repro.graph.builders.BudgetGate` protocol (Liu & Xu-style
  budget-aware assignment).
* :mod:`repro.scenarios.spatial` — hot-region arrival skew and worker
  placement over the coordinator's bounding box.
* :mod:`repro.scenarios.heterogeneous` — specialist worker populations
  with per-category latent quality (Assadi et al.-style heterogeneity).
* :mod:`repro.scenarios.baselines` — the policy roster a scenario runs:
  REACT/Metropolis/Greedy plus the two related-work baselines.

The experiment driver lives in :mod:`repro.experiments.scenario`; this
package holds only the reusable scenario ingredients (it may be imported
by experiments and dist layers, and imports only model/core/graph/workload
below it — see the KER001 layering table).
"""

from .baselines import scenario_policies
from .budget import BudgetLedger
from .heterogeneous import SpecialistConfig, specialize_population
from .spatial import SpatialConfig, SpatialSampler

__all__ = [
    "BudgetLedger",
    "SpatialConfig",
    "SpatialSampler",
    "SpecialistConfig",
    "specialize_population",
    "scenario_policies",
]
