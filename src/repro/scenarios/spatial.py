"""Spatial workload shaping: hot-region arrival skew and worker placement.

The paper's overload remedy ("split the regions so that each of the
servers would contain sufficient workers and tasks without being
overloaded", §V-D) only fires when arrivals concentrate somewhere.
:class:`SpatialSampler` produces exactly that: a fraction ``hot_fraction``
of tasks lands in one small hot cell of the bounding box, the rest is
uniform — forcing the Coordinator to split the hot region and migrate its
queue while the cold regions idle along.

Workers are placed uniformly (people live everywhere; demand spikes
somewhere), which also makes travel time a real differentiator for the
spatial weight functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..model.region import Region, RegionGrid


@dataclass(frozen=True)
class SpatialConfig:
    """Geometry of a scenario: bounding box, grid and hot cell.

    The defaults model a ~22 km × ~17 km metro area (0.2° of latitude)
    partitioned into a 1×2 grid, with the hot cell occupying the top-right
    ``hot_size`` fraction of the box — deliberately inside one grid cell so
    the skew overloads a single server.
    """

    lat_min: float = 38.0
    lat_max: float = 38.2
    lon_min: float = 23.6
    lon_max: float = 23.8
    rows: int = 1
    cols: int = 2
    #: Probability that a task arrival lands inside the hot cell.
    hot_fraction: float = 0.8
    #: Side of the hot cell as a fraction of the bbox side (top-right corner).
    hot_size: float = 0.25

    def __post_init__(self) -> None:
        if not (self.lat_min < self.lat_max and self.lon_min < self.lon_max):
            raise ValueError("bounding box must have positive extent")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must have at least one cell")
        if not (0.0 <= self.hot_fraction <= 1.0):
            raise ValueError(f"hot_fraction must be in [0,1], got {self.hot_fraction}")
        if not (0.0 < self.hot_size <= 1.0):
            raise ValueError(f"hot_size must be in (0,1], got {self.hot_size}")

    @property
    def hot_cell(self) -> Region:
        """The hot cell: the top-right ``hot_size`` corner of the bbox."""
        lat_span = self.lat_max - self.lat_min
        lon_span = self.lon_max - self.lon_min
        return Region(
            lat_min=self.lat_max - self.hot_size * lat_span,
            lat_max=self.lat_max,
            lon_min=self.lon_max - self.hot_size * lon_span,
            lon_max=self.lon_max,
        )

    def make_grid(self) -> RegionGrid:
        """The coordinator's initial region partition."""
        return RegionGrid(
            lat_min=self.lat_min,
            lat_max=self.lat_max,
            lon_min=self.lon_min,
            lon_max=self.lon_max,
            rows=self.rows,
            cols=self.cols,
        )


class SpatialSampler:
    """Draws task and worker locations for a :class:`SpatialConfig`.

    One location costs exactly two uniform draws plus (for tasks) one
    Bernoulli, so reshaping the geometry never changes the *number* of
    stream consumptions — seeded runs stay comparable across configs.
    """

    def __init__(self, config: SpatialConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self._hot = config.hot_cell

    def _uniform_in(self, region_lat: Tuple[float, float], region_lon: Tuple[float, float]) -> Tuple[float, float]:
        lat = float(self._rng.uniform(region_lat[0], region_lat[1]))
        lon = float(self._rng.uniform(region_lon[0], region_lon[1]))
        return lat, lon

    def task_location(self) -> Tuple[float, float]:
        """Skewed draw: hot cell with probability ``hot_fraction``."""
        cfg = self.config
        hot = float(self._rng.random()) < cfg.hot_fraction
        if hot:
            return self._uniform_in(
                (self._hot.lat_min, self._hot.lat_max),
                (self._hot.lon_min, self._hot.lon_max),
            )
        return self._uniform_in(
            (cfg.lat_min, cfg.lat_max), (cfg.lon_min, cfg.lon_max)
        )

    def worker_location(self) -> Tuple[float, float]:
        """Uniform draw over the whole bounding box."""
        cfg = self.config
        return self._uniform_in(
            (cfg.lat_min, cfg.lat_max), (cfg.lon_min, cfg.lon_max)
        )
