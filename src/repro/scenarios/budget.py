"""Per-requester budget ledger (Liu & Xu-style budget-aware assignment).

Each requester starts with a fixed budget; every completed task charges its
reward against the owner's balance.  The ledger implements the
:class:`repro.graph.builders.BudgetGate` protocol, which is enforced at two
layers:

* **Edge non-instantiation** — the graph builder clears the columns of
  tasks whose requester cannot fund the reward, so *every* matcher
  (randomized or greedy) respects budgets without knowing they exist.
* **Intake shedding** — :class:`repro.platform.task_management.
  TaskManagementComponent` refuses to queue an unfundable task outright
  (load shedding), keeping exhausted requesters from occupying queue slots.

Charging happens **on completion**, when the reward is actually owed.  A
requester with several tasks in flight can therefore overshoot his budget
by at most the rewards already committed to workers — the platform honours
assignments it published, exactly as a real marketplace must.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..model.task import Task


class BudgetLedger:
    """Tracks per-requester balances and answers fundability queries."""

    def __init__(self, budgets: Mapping[int, float]) -> None:
        for requester_id, budget in budgets.items():
            if budget < 0:
                raise ValueError(
                    f"budget for requester {requester_id} must be >= 0, got {budget}"
                )
        self._budgets: Dict[int, float] = dict(budgets)
        self._spent: Dict[int, float] = {rid: 0.0 for rid in budgets}
        self._charges = 0

    # ------------------------------------------------------------- queries
    def allows(self, task: Task) -> bool:
        """BudgetGate protocol: can the task's requester fund its reward?

        Tasks without a requester (``requester_id=None``) and requesters the
        ledger does not know are unbudgeted — always allowed, so the paper's
        original anonymous-requester experiments pass through untouched.
        """
        rid = task.requester_id
        if rid is None or rid not in self._budgets:
            return True
        return self.remaining(rid) >= task.reward

    def remaining(self, requester_id: int) -> float:
        """Unspent balance (clamped at zero for display)."""
        return max(0.0, self._budgets[requester_id] - self._spent[requester_id])

    def exhausted_requesters(self) -> List[int]:
        """Requesters whose balance cannot fund even a zero-reward task."""
        return sorted(
            rid for rid in self._budgets if self._spent[rid] >= self._budgets[rid]
        )

    # ------------------------------------------------------------ mutation
    def charge(self, task: Task) -> None:
        """Charge a completed task's reward to its requester.

        Unknown/anonymous requesters are no-ops (their tasks were never
        gated either).  The balance may go negative: the reward was owed
        the moment the assignment was published.
        """
        rid = task.requester_id
        if rid is None or rid not in self._budgets:
            return
        self._spent[rid] += task.reward
        self._charges += 1

    # ------------------------------------------------------------- summary
    def summary(self) -> Dict[str, float]:
        total_budget = sum(self._budgets.values())
        total_spent = sum(self._spent.values())
        return {
            "requesters": float(len(self._budgets)),
            "total_budget": round(total_budget, 4),
            "total_spent": round(total_spent, 4),
            "charges": float(self._charges),
            "exhausted_requesters": float(len(self.exhausted_requesters())),
        }
