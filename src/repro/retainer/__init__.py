"""Retainer-pool recruiting: closed-form model, pool, and marketplace driver.

Implements the Bernstein/Karger/Miller retainer model referenced by the
ROADMAP (see docs/RETAINER.md):

* :mod:`repro.retainer.analytic` — M/M/c closed forms (Erlang-C waits,
  occupancy, cost per task, optimal pool size), pure numpy, no simulation;
* :mod:`repro.retainer.pool` — the simulated pool of paid standby workers
  with release latency and per-worker wage accounting;
* :mod:`repro.retainer.recruit` — the marketplace supply driver that holds
  arriving workers on retainer ahead of the REACT matcher;
* :mod:`repro.retainer.adaptive` — EWMA arrival-rate tracking feeding
  periodic ``optimal_pool_size`` retunes of a live pool;
* :mod:`repro.retainer.validate` — the harness behind ``tests/validation/``
  checking simulation against the closed forms on a (lam, mu, c) grid.
"""

from .adaptive import AdaptivePoolSizer, EwmaRateEstimator, RetuneRecord
from .analytic import (
    PoolPredictions,
    cost_per_task,
    erlang_b,
    erlang_c,
    mean_queue_length,
    mean_wait,
    occupancy,
    offered_load,
    optimal_pool_size,
    predict,
    stationary_distribution,
    wait_tail,
)
from .pool import ReleaseCallback, RetainerPool
from .recruit import RecruiterStats, RetainerRecruiter, charge_task_payments
from .validate import (
    DEFAULT_GRID,
    MetricCheck,
    PointValidation,
    PoolSample,
    simulate_pool,
    validate_grid,
    validate_point,
)

__all__ = [
    "AdaptivePoolSizer",
    "DEFAULT_GRID",
    "EwmaRateEstimator",
    "MetricCheck",
    "PointValidation",
    "PoolPredictions",
    "PoolSample",
    "RecruiterStats",
    "ReleaseCallback",
    "RetainerPool",
    "RetainerRecruiter",
    "RetuneRecord",
    "charge_task_payments",
    "cost_per_task",
    "erlang_b",
    "erlang_c",
    "mean_queue_length",
    "mean_wait",
    "occupancy",
    "offered_load",
    "optimal_pool_size",
    "predict",
    "simulate_pool",
    "stationary_distribution",
    "validate_grid",
    "validate_point",
    "wait_tail",
]
