"""Marketplace recruiting: worker arrivals, patience, and the retainer.

The stock end-to-end experiment connects every worker at t = 0; real
platforms recruit from a *marketplace* where workers show up over time and
leave if nothing engages them.  :class:`RetainerRecruiter` drives that
supply side for one :class:`~repro.platform.server.REACTServer`:

* workers arrive via an inter-arrival gap stream (the Poisson processes of
  :mod:`repro.workload.arrivals`), drawing identity/behaviour pairs from a
  pre-generated population;
* an arriving worker is *held on retainer* when the policy runs a
  :class:`~repro.retainer.pool.RetainerPool` with room — paid to stand by,
  invisible to the matcher until released;
* otherwise he browses as a walk-in: online and matchable, but gone after
  ``patience`` idle seconds (the supply the plain on-demand baseline
  wastes, and the retainer banks);
* demand releases held workers: every task submission and a periodic sweep
  size the release rate to the unassigned backlog, and released workers
  whose backlog is drained return to the pool.

Plain REACT under the same marketplace is the recruiter with
``pool=None`` — identical arrival trace and patience, no retainer — which
is exactly the REACT-vs-REACT-with-retainer comparison the ROADMAP asks
for (Bernstein/Karger/Miller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from ..model.worker import WorkerBehavior, WorkerProfile
from ..obs.runtime import ObservabilityLike, resolve
from ..sim.clock import EventClock
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess, PeriodicProcess
from .pool import RetainerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..platform.server import REACTServer

Supply = Sequence[Tuple[WorkerProfile, WorkerBehavior]]


@dataclass
class RecruiterStats:
    """Counters the retainer comparison report prints."""

    arrived: int = 0
    retained: int = 0
    walk_ins: int = 0
    patience_departures: int = 0
    releases_requested: int = 0
    repooled: int = 0


@dataclass
class _Managed:
    """Recruiter-side state of one recruited worker."""

    profile: WorkerProfile
    behavior: WorkerBehavior
    #: currently dispatched by the pool (outstanding) — never patience-culled.
    pooled: bool
    #: first sweep time at which the worker was observed idle (walk-ins only).
    idle_since: Optional[float] = None


class RetainerRecruiter:
    """Supply-side driver: arrivals, patience culls, retainer release."""

    def __init__(
        self,
        engine: EventClock,
        server: "REACTServer",
        supply: Supply,
        gaps: Iterator[Tuple[float, int]],
        patience: float,
        pool: Optional[RetainerPool] = None,
        sweep_interval: float = 1.0,
        observability: Optional[ObservabilityLike] = None,
    ) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if sweep_interval <= 0:
            raise ValueError(f"sweep_interval must be positive, got {sweep_interval}")
        self._engine = engine
        self._server = server
        self._supply = iter(supply)
        self._gaps = gaps
        self._patience = patience
        self.pool = pool
        self._sweep_interval = sweep_interval
        self._managed: Dict[int, _Managed] = {}
        self._pending_releases = 0
        self._arrivals: Optional[GeneratorProcess] = None
        self._sweeper: Optional[PeriodicProcess] = None
        self.stats = RecruiterStats()
        obs = resolve(observability)
        self._tracer = obs.tracer
        self._obs_walkins = obs.registry.gauge(
            "marketplace_walkin_workers", "Unretained online marketplace workers"
        )
        self._obs_departures = obs.registry.counter(
            "marketplace_patience_departures_total",
            "Walk-in workers who left after idling out their patience",
        )

    # ----------------------------------------------------------- lifecycle
    def start(self, prefill: int = 0) -> None:
        """Pre-recruit ``prefill`` workers onto the retainer, arm processes."""
        if self._arrivals is not None:
            raise RuntimeError("recruiter already started")
        if prefill and self.pool is None:
            raise ValueError("prefill requires a retainer pool")
        for _ in range(prefill):
            if not self._recruit(onto_retainer=True):
                break
        self._arrivals = GeneratorProcess(
            self._engine,
            self._gaps,
            self._on_arrival,
            kind=EventKind.WORKER_ARRIVAL,
        )
        self._sweeper = PeriodicProcess(
            self._engine,
            period=self._sweep_interval,
            action=self._sweep,
            kind=EventKind.CALLBACK,
        )

    def stop(self) -> None:
        """Stop arrivals/sweeps and settle the wage ledger at current time."""
        if self._arrivals is not None:
            self._arrivals.stop()
            self._arrivals = None
        if self._sweeper is not None:
            self._sweeper.stop()
            self._sweeper = None
        if self.pool is not None:
            self.pool.cancel_requests()
            self.pool.settle()

    # ------------------------------------------------------------- supply
    def _next_worker(self) -> Optional[Tuple[WorkerProfile, WorkerBehavior]]:
        try:
            return next(self._supply)
        except StopIteration:
            return None

    def _recruit(self, onto_retainer: bool) -> bool:
        """Bring the next supply worker in; returns False when exhausted."""
        pair = self._next_worker()
        if pair is None:
            return False
        profile, behavior = pair
        self.stats.arrived += 1
        self._server.add_worker(profile, behavior)
        managed = _Managed(profile=profile, behavior=behavior, pooled=False)
        self._managed[profile.worker_id] = managed
        if (
            onto_retainer
            and self.pool is not None
            and self.pool.add_worker(profile.worker_id)
        ):
            managed.pooled = True
            # Held on retainer: paid to wait, invisible to the matcher.
            profile.online = False
            self.stats.retained += 1
            self._tracer.instant(
                "retainer.hold", cat="retainer", worker_id=profile.worker_id
            )
        else:
            managed.idle_since = self._engine.now
            self.stats.walk_ins += 1
            self._obs_walkins.set(self._walkin_count())
        return True

    def _on_arrival(self, _payload: object) -> None:
        if self._recruit(onto_retainer=True):
            self._server.scheduling.maybe_trigger()

    # ------------------------------------------------------------- demand
    def notify_demand(self) -> None:
        """A task was submitted; release held workers to cover the backlog."""
        self._release_for_backlog()

    def _release_for_backlog(self) -> None:
        if self.pool is None:
            return
        backlog = self._server.task_management.unassigned_count
        idle_online = len(self._server.profiling.available_workers())
        needed = backlog - idle_online - self._pending_releases
        for _ in range(needed):
            self._pending_releases += 1
            self.stats.releases_requested += 1
            self.pool.request(self._on_release)

    def _on_release(self, worker_id: int, waited: float) -> None:
        self._pending_releases -= 1
        managed = self._managed[worker_id]
        managed.profile.online = True
        managed.idle_since = None
        self._tracer.instant(
            "retainer.online", cat="retainer", worker_id=worker_id, waited=waited
        )
        self._server.scheduling.maybe_trigger()

    def release_to_walkin(self, worker_id: int) -> None:
        """A worker evicted from the pool rejoins the floor as a walk-in.

        Hook for :class:`~repro.retainer.adaptive.AdaptivePoolSizer`: a
        capacity shrink should not delete the human — he goes back online,
        matchable, with his patience clock starting now.
        """
        managed = self._managed.get(worker_id)
        if managed is None:
            return
        managed.pooled = False
        managed.profile.online = True
        managed.idle_since = self._engine.now
        self.stats.walk_ins += 1
        self._obs_walkins.set(self._walkin_count())
        self._tracer.instant(
            "retainer.evicted_to_walkin", cat="retainer", worker_id=worker_id
        )
        self._server.scheduling.maybe_trigger()

    # -------------------------------------------------------------- sweep
    def _sweep(self, now: float) -> None:
        self._release_for_backlog()
        backlog = self._server.task_management.unassigned_count
        departures: List[int] = []
        for worker_id, managed in self._managed.items():
            profile = managed.profile
            if not profile.online or not profile.available or profile.current_task is not None:
                # Busy (or still held/dispatching): no idle clock runs.
                managed.idle_since = None
                continue
            if managed.pooled:
                # A released worker with nothing left to do goes back on
                # retainer (and may be handed straight to queued demand).
                if backlog == 0 and self.pool is not None:
                    profile.online = False
                    self.pool.return_worker(worker_id)
                    self.stats.repooled += 1
                continue
            if managed.idle_since is None:
                managed.idle_since = now
            elif now - managed.idle_since >= self._patience:
                departures.append(worker_id)
        for worker_id in departures:
            self._depart(worker_id)
        if departures:
            self._obs_walkins.set(self._walkin_count())

    def _depart(self, worker_id: int) -> None:
        managed = self._managed.pop(worker_id)
        self.stats.patience_departures += 1
        self._obs_departures.inc()
        self._tracer.instant(
            "marketplace.departure", cat="retainer", worker_id=worker_id
        )
        if worker_id in self._server.profiling:
            self._server.remove_worker(worker_id)
        del managed  # dropped from tracking; the human left the marketplace

    # ------------------------------------------------------------ queries
    def _walkin_count(self) -> int:
        return sum(
            1
            for m in self._managed.values()
            if not m.pooled and m.profile.online
        )

    @property
    def managed_count(self) -> int:
        return len(self._managed)


def charge_task_payments(
    pool: RetainerPool, outcomes: Sequence[Tuple[Optional[int], Optional[float]]]
) -> float:
    """Post-run: charge the flat task payment for every completed execution.

    ``outcomes`` are ``(final_worker, worker_time)`` pairs; incomplete tasks
    (no worker or no duration) cost nothing.  Returns the total charged.
    """
    total = 0.0
    for worker_id, duration in outcomes:
        if worker_id is None or duration is None:
            continue
        total += pool.ledger.charge_assignment(worker_id, duration)
    return total
