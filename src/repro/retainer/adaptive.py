"""Adaptive retainer sizing: live arrival-rate estimate -> ``c*`` retunes.

The closed-form ``optimal_pool_size`` (:mod:`repro.retainer.analytic`) needs
the task arrival rate lam — known in a benchmark, unknown on a live
platform where demand ramps.  This module closes the loop:

* :class:`EwmaRateEstimator` maintains an exponentially weighted moving
  average of inter-arrival gaps; its ``rate`` (1 / mean gap) tracks a
  ramping workload with bounded lag and O(1) state;
* :class:`AdaptivePoolSizer` wakes every ``interval`` simulated seconds,
  reads the estimated lam (and a service-rate estimate mu from observed
  worker times when available), recomputes ``c* = optimal_pool_size(...)``
  and applies it through :meth:`RetainerPool.resize` — evicted workers are
  handed back to the recruiter as walk-ins instead of vanishing.

Both classes are clock-agnostic (they observe time only through the events
that invoke them), so the same sizer runs under the DES engine and the
wall-clock service runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from ..sim.clock import EventClock
from ..sim.process import PeriodicProcess
from .analytic import optimal_pool_size
from .pool import RetainerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..stats.metrics import MetricsCollector


class EwmaRateEstimator:
    """EWMA of inter-arrival gaps; ``rate`` is the smoothed arrival rate.

    ``alpha`` weights the newest gap; with arrivals at rate lam the
    estimate converges to lam with time constant ~``1/(alpha·lam)``
    seconds.  Before two observations the rate is ``None`` (no gap seen).
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._last_at: Optional[float] = None
        self._mean_gap: Optional[float] = None
        self.observations = 0

    def observe(self, now: float) -> None:
        """Record one arrival at time ``now`` (nondecreasing)."""
        self.observations += 1
        if self._last_at is not None:
            gap = max(now - self._last_at, 0.0)
            if self._mean_gap is None:
                self._mean_gap = gap
            else:
                self._mean_gap += self._alpha * (gap - self._mean_gap)
        self._last_at = now

    @property
    def rate(self) -> Optional[float]:
        """Smoothed arrivals per second; None until two arrivals were seen."""
        if self._mean_gap is None or self._mean_gap <= 0:
            return None
        return 1.0 / self._mean_gap


@dataclass
class RetuneRecord:
    """One sizer wake-up that changed (or confirmed) the capacity."""

    at: float
    arrival_rate: float
    service_rate: float
    capacity: int
    evicted: int


class AdaptivePoolSizer:
    """Periodic ``c*`` retuning for a live :class:`RetainerPool`."""

    def __init__(
        self,
        engine: EventClock,
        pool: RetainerPool,
        estimator: EwmaRateEstimator,
        wage_per_second: float,
        wait_cost_per_second: float,
        interval: float = 30.0,
        service_rate_fallback: float = 1.0 / 60.0,
        metrics: Optional["MetricsCollector"] = None,
        on_evict: Optional[Callable[[int], None]] = None,
        min_capacity: int = 1,
        max_capacity: int = 10_000,
    ) -> None:
        if wage_per_second <= 0:
            raise ValueError(
                "adaptive sizing needs a positive wage_per_second "
                f"(optimal_pool_size is undefined at wage {wage_per_second})"
            )
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if service_rate_fallback <= 0:
            raise ValueError(
                f"service_rate_fallback must be positive, got {service_rate_fallback}"
            )
        if not 1 <= min_capacity <= max_capacity:
            raise ValueError(
                f"need 1 <= min_capacity <= max_capacity, got "
                f"[{min_capacity}, {max_capacity}]"
            )
        self._engine = engine
        self._pool = pool
        self._estimator = estimator
        self._wage = wage_per_second
        self._wait_cost = wait_cost_per_second
        self._fallback_mu = service_rate_fallback
        self._metrics = metrics
        self._on_evict = on_evict
        self._min_c = min_capacity
        self._max_c = max_capacity
        self.retunes: List[RetuneRecord] = []
        self.evictions = 0
        self._process = PeriodicProcess(engine, period=interval, action=self.retune)

    def stop(self) -> None:
        self._process.stop()

    def observe_arrival(self) -> None:
        """Convenience: feed one task arrival at the current clock time."""
        self._estimator.observe(self._engine.now)

    # ------------------------------------------------------------ internals
    def _service_rate(self) -> float:
        """mu from observed worker times; fallback until completions exist."""
        if self._metrics is not None:
            times = [
                outcome.worker_time
                for outcome in self._metrics.outcomes[-200:]
                if outcome.worker_time is not None and outcome.worker_time > 0
            ]
            if times:
                return len(times) / sum(times)
        return self._fallback_mu

    def retune(self, now: float) -> Optional[int]:
        """One wake-up: recompute ``c*`` and resize; returns the new c."""
        lam = self._estimator.rate
        if lam is None or lam <= 0:
            return None
        mu = self._service_rate()
        capacity = optimal_pool_size(
            arrival_rate=lam,
            service_rate=mu,
            wage_per_second=self._wage,
            wait_cost_per_second=self._wait_cost,
            c_max=self._max_c,
        )
        capacity = max(self._min_c, min(capacity, self._max_c))
        evicted = 0
        if capacity != self._pool.capacity:
            evicted = self._pool.resize(capacity, on_evict=self._on_evict)
            self.evictions += evicted
        self.retunes.append(
            RetuneRecord(
                at=now,
                arrival_rate=lam,
                service_rate=mu,
                capacity=capacity,
                evicted=evicted,
            )
        )
        return capacity
