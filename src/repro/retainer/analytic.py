"""Closed-form retainer-pool model (Bernstein, Karger & Miller).

*Analytic Methods for Optimizing Realtime Crowdsourcing* models a retainer
pool as an M/M/c queue: tasks arrive Poisson at rate ``lam``, each occupies
one retainer worker for an exponential service time with rate ``mu``, and
``c`` workers are held on paid retainer.  Everything the simulator is
validated against in ``tests/validation/`` comes from this module — steady
state probabilities, the Erlang-C wait probability, the wait-time
distribution, per-task cost, and the budget-optimal pool size — computed
with the numerically stable Erlang-B recursion (no factorials), pure
numpy/math, no simulation.

Notation (standard M/M/c):

* offered load ``a = lam / mu`` (expected number of busy workers),
* per-worker occupancy ``rho = a / c`` (< 1 for a stable pool),
* Erlang-B ``B(c, a)``: blocking probability of the loss system, via the
  recursion ``B(0) = 1``, ``B(k) = a B(k-1) / (k + a B(k-1))``,
* Erlang-C ``C(c, a) = c B / (c - a (1 - B))``: probability an arriving
  task finds all ``c`` workers busy (PASTA) and must wait,
* waiting time ``W``: ``P(W > t) = C(c, a) exp(-(c mu - lam) t)``, hence
  ``E[W] = C(c, a) / (c mu - lam)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np


def offered_load(arrival_rate: float, service_rate: float) -> float:
    """``a = lam / mu``: mean number of simultaneously busy workers."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    return arrival_rate / service_rate


def _check_capacity(capacity: int) -> None:
    if capacity < 1 or capacity != int(capacity):
        raise ValueError(f"capacity must be a positive integer, got {capacity}")


def erlang_b(capacity: int, load: float) -> float:
    """Erlang-B blocking probability via the standard recursion.

    Numerically stable for large ``capacity``/``load`` where the factorial
    formula overflows; exact for the loss system M/M/c/c.
    """
    _check_capacity(capacity)
    if load < 0:
        raise ValueError(f"load must be non-negative, got {load}")
    b = 1.0
    for k in range(1, capacity + 1):
        b = load * b / (k + load * b)
    return b


def erlang_c(capacity: int, load: float) -> float:
    """Erlang-C: probability an arriving task must queue (all workers busy).

    Defined for a *stable* pool (``load < capacity``); saturated pools have
    every task wait, so 1.0 is returned when ``load >= capacity``.
    """
    _check_capacity(capacity)
    if load < 0:
        raise ValueError(f"load must be non-negative, got {load}")
    if load >= capacity:
        return 1.0
    b = erlang_b(capacity, load)
    return capacity * b / (capacity - load * (1.0 - b))


def stationary_distribution(
    arrival_rate: float, service_rate: float, capacity: int, n_max: int
) -> np.ndarray:
    """Steady-state probabilities ``p_0 .. p_{n_max}`` of the queue length.

    Birth-death balance: ``p_n = p_0 a^n / n!`` for ``n <= c`` and
    ``p_n = p_{c} rho^{n-c}`` beyond.  Used by the validation tier to
    cross-check the Erlang-C recursion against first principles.
    """
    _check_capacity(capacity)
    load = offered_load(arrival_rate, service_rate)
    if load >= capacity:
        raise ValueError(f"unstable pool: load {load} >= capacity {capacity}")
    if n_max < capacity:
        raise ValueError(f"n_max ({n_max}) must be >= capacity ({capacity})")
    rho = load / capacity
    # Unnormalised log-weights keep large loads finite.
    log_w: List[float] = [0.0]
    for n in range(1, n_max + 1):
        rate = min(n, capacity)
        log_w.append(log_w[-1] + math.log(load) - math.log(rate))
    weights = np.exp(np.array(log_w) - max(log_w))
    # The geometric tail beyond n_max belongs to p_{n_max} * rho/(1-rho)...
    # normalise including that tail so the head probabilities are exact.
    tail = weights[-1] * rho / (1.0 - rho)
    return weights / (weights.sum() + tail)


def mean_wait(arrival_rate: float, service_rate: float, capacity: int) -> float:
    """Expected queueing delay ``E[W] = C(c, a) / (c mu - lam)`` seconds."""
    load = offered_load(arrival_rate, service_rate)
    _check_capacity(capacity)
    if load >= capacity:
        raise ValueError(f"unstable pool: load {load} >= capacity {capacity}")
    return erlang_c(capacity, load) / (capacity * service_rate - arrival_rate)


def wait_tail(
    t: float, arrival_rate: float, service_rate: float, capacity: int
) -> float:
    """``P(W > t)``: the paper's "probability a task waits more than t"."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    load = offered_load(arrival_rate, service_rate)
    if load >= capacity:
        return 1.0
    decay = capacity * service_rate - arrival_rate
    return erlang_c(capacity, load) * math.exp(-decay * t)


def occupancy(arrival_rate: float, service_rate: float, capacity: int) -> float:
    """Per-worker busy fraction ``rho = a / c`` of a stable pool."""
    load = offered_load(arrival_rate, service_rate)
    _check_capacity(capacity)
    if load >= capacity:
        raise ValueError(f"unstable pool: load {load} >= capacity {capacity}")
    return load / capacity


def mean_queue_length(
    arrival_rate: float, service_rate: float, capacity: int
) -> float:
    """Little's law on the waiting room: ``L_q = lam E[W]``."""
    return arrival_rate * mean_wait(arrival_rate, service_rate, capacity)


def cost_per_task(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    wage_per_second: float,
    task_payment: float = 0.0,
) -> float:
    """Steady-state retainer cost attributed to one task.

    The platform pays ``wage_per_second`` to every *idle* retainer worker
    (a working worker earns the task payment instead).  In steady state
    ``a = lam/mu`` workers are busy, so the idle-wage burn rate is
    ``wage (c - a)`` and each of the ``lam`` tasks per second carries
    ``wage (c - a) / lam`` of it, plus its own payment.
    """
    if wage_per_second < 0 or task_payment < 0:
        raise ValueError("wage_per_second and task_payment must be non-negative")
    load = offered_load(arrival_rate, service_rate)
    _check_capacity(capacity)
    if load >= capacity:
        raise ValueError(f"unstable pool: load {load} >= capacity {capacity}")
    return wage_per_second * (capacity - load) / arrival_rate + task_payment


@dataclass(frozen=True)
class PoolPredictions:
    """Every closed-form quantity for one ``(lam, mu, c)`` operating point."""

    arrival_rate: float
    service_rate: float
    capacity: int
    offered_load: float
    occupancy: float
    wait_probability: float
    mean_wait: float
    mean_queue_length: float
    cost_per_task: float


def predict(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    wage_per_second: float = 0.0,
    task_payment: float = 0.0,
) -> PoolPredictions:
    """Bundle of all closed-form predictions (the validation-tier anchor)."""
    load = offered_load(arrival_rate, service_rate)
    return PoolPredictions(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        capacity=capacity,
        offered_load=load,
        occupancy=occupancy(arrival_rate, service_rate, capacity),
        wait_probability=erlang_c(capacity, load),
        mean_wait=mean_wait(arrival_rate, service_rate, capacity),
        mean_queue_length=mean_queue_length(arrival_rate, service_rate, capacity),
        cost_per_task=cost_per_task(
            arrival_rate, service_rate, capacity, wage_per_second, task_payment
        ),
    )


def optimal_pool_size(
    arrival_rate: float,
    service_rate: float,
    wage_per_second: float,
    wait_cost_per_second: float,
    c_max: int = 10_000,
) -> int:
    """Budget-optimal capacity ``c*(lam, mu, budget)``.

    Minimises the steady-state cost rate

        ``J(c) = wage (c - a)  +  wait_cost · lam · E[W](c)``

    — idle retainer wages against the (requester-side) price of keeping
    tasks waiting.  ``J`` is convex in ``c`` over the stable range (the
    wage term is linear, the Erlang-C delay term convex decreasing), so the
    scan stops at the first ``c`` whose successor is no better.  The
    Erlang-B recursion is threaded through the scan, keeping the whole
    search O(c*).
    """
    if wage_per_second <= 0:
        raise ValueError(f"wage_per_second must be positive, got {wage_per_second}")
    if wait_cost_per_second < 0:
        raise ValueError(
            f"wait_cost_per_second must be non-negative, got {wait_cost_per_second}"
        )
    load = offered_load(arrival_rate, service_rate)
    c_min = int(math.floor(load)) + 1
    if c_min > c_max:
        raise ValueError(f"load {load} needs capacity > {c_max} (raise c_max)")
    # Erlang-B recursion up to the first stable capacity.
    b = 1.0
    for k in range(1, c_min + 1):
        b = load * b / (k + load * b)

    def cost(c: int, b_c: float) -> float:
        erl_c = c * b_c / (c - load * (1.0 - b_c))
        wait = erl_c / (c * service_rate - arrival_rate)
        return wage_per_second * (c - load) + wait_cost_per_second * arrival_rate * wait

    best_c, best_cost = c_min, cost(c_min, b)
    for c in range(c_min + 1, c_max + 1):
        b = load * b / (c + load * b)
        j = cost(c, b)
        if j >= best_cost:
            return best_c
        best_c, best_cost = c, j
    raise ValueError(f"no optimum below c_max={c_max}")  # pragma: no cover
