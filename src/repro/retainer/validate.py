"""Simulation-vs-closed-form validation of the retainer pool.

This module is the engine room of ``tests/validation/``: it drives a
:class:`~repro.retainer.pool.RetainerPool` as a textbook M/M/c system —
Poisson(``lam``) demand, Exp(``mu``) service, ``c`` pre-recruited workers,
zero release latency — and measures exactly the quantities
:mod:`repro.retainer.analytic` predicts in closed form:

* mean queueing wait ``E[W]`` and the wait probability ``C(c, a)``,
* per-worker occupancy ``rho`` (busy-time integral over the pool),
* steady-state cost per task (idle wage burn + task payment).

:func:`validate_point` repeats the simulation over independent seeds
(:func:`~repro.sim.rng.spawn_seeds`), forms a 99% confidence interval per
metric, and checks the closed-form value lands inside.  The intervals get
a small relative floor (``CI_REL_FLOOR``) so a run whose across-rep
variance collapses by luck does not fail on finite-horizon bias that the
warmup cannot fully remove.

Everything is deterministic in the root seed, so the validation tier is a
regression test, not a flaky statistical gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..platform.cost import RetainerCostConfig
from ..sim.engine import Engine
from ..sim.events import Event, EventKind
from ..sim.process import GeneratorProcess
from ..sim.rng import RngRegistry, spawn_seeds
from ..workload.arrivals import poisson_gaps
from .analytic import PoolPredictions, predict
from .pool import RetainerPool

#: z-quantile of the 99% two-sided normal confidence interval.
Z_99 = 2.5758293035489004
#: Relative half-width floor applied to every CI (finite-horizon allowance).
CI_REL_FLOOR = 0.05
#: Absolute half-width floor — keeps near-zero metrics (short waits at low
#: occupancy) from demanding sub-millisecond agreement.
CI_ABS_FLOOR = 1e-3


@dataclass(frozen=True)
class PoolSample:
    """Post-warmup measurements of one simulated run."""

    n_tasks: int
    mean_wait: float
    wait_probability: float
    occupancy: float
    cost_per_task: float
    #: Ledger total over the whole run — cross-checked against the pool's
    #: idle-time integral by the validation tier.
    ledger_total: float
    ledger_idle_seconds: float


@dataclass(frozen=True)
class MetricCheck:
    """One closed-form value against the simulated confidence interval."""

    name: str
    analytic: float
    simulated_mean: float
    ci_low: float
    ci_high: float

    @property
    def covered(self) -> bool:
        return self.ci_low <= self.analytic <= self.ci_high

    @property
    def relative_error(self) -> float:
        scale = max(abs(self.analytic), 1e-12)
        return abs(self.simulated_mean - self.analytic) / scale


@dataclass(frozen=True)
class PointValidation:
    """Full verdict for one ``(lam, mu, c)`` operating point."""

    predictions: PoolPredictions
    reps: int
    checks: Tuple[MetricCheck, ...]

    @property
    def covered(self) -> bool:
        return all(check.covered for check in self.checks)

    def check(self, name: str) -> MetricCheck:
        for candidate in self.checks:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


class _MMCHarness:
    """One M/M/c run of the pool; integrates busy time inside the window."""

    def __init__(
        self,
        engine: Engine,
        pool: RetainerPool,
        service_rate: float,
        service_rng: np.random.Generator,
        warmup: float,
        horizon: float,
    ) -> None:
        self.engine = engine
        self.pool = pool
        self.service_rate = service_rate
        self.service_rng = service_rng
        self.warmup = warmup
        self.horizon = horizon
        self.waits: List[float] = []
        self.busy_seconds = 0.0
        self._busy = 0
        self._last_change = 0.0

    # Busy-time integral, clipped to the measurement window [warmup, horizon].
    def _integrate_to(self, now: float) -> None:
        lo = max(self._last_change, self.warmup)
        hi = min(now, self.horizon)
        if hi > lo:
            self.busy_seconds += self._busy * (hi - lo)
        self._last_change = now

    def on_task(self, _payload: object) -> None:
        arrived = self.engine.now
        if arrived >= self.horizon:
            return

        def dispatched(worker_id: int, waited: float) -> None:
            if arrived >= self.warmup:
                self.waits.append(waited)
            self._integrate_to(self.engine.now)
            self._busy += 1
            service = float(self.service_rng.exponential(1.0 / self.service_rate))
            self.engine.schedule(
                service, EventKind.TASK_COMPLETION, self._complete, payload=worker_id
            )

        self.pool.request(dispatched)

    def _complete(self, event: Event) -> None:
        self._integrate_to(self.engine.now)
        self._busy -= 1
        self.pool.return_worker(int(event.payload))

    def finish(self) -> None:
        self._integrate_to(self.engine.now)


def simulate_pool(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    seed: int,
    horizon: float = 400.0,
    warmup: float = 50.0,
    wage_per_second: float = 0.01,
    task_payment: float = 0.05,
) -> PoolSample:
    """Run the pool as M/M/c for ``horizon`` simulated seconds.

    Statistics cover ``[warmup, horizon]`` only; the ledger covers the whole
    run (it is the platform's account book, not a windowed estimator).
    """
    if warmup < 0 or horizon <= warmup:
        raise ValueError(f"need 0 <= warmup < horizon, got {warmup}, {horizon}")
    engine = Engine()
    registry = RngRegistry(seed)
    pool = RetainerPool(
        engine,
        capacity=capacity,
        cost=RetainerCostConfig(
            wage_per_second=wage_per_second, task_payment=task_payment
        ),
        release_latency=0.0,
    )
    for worker_id in range(capacity):
        pool.add_worker(worker_id)
    harness = _MMCHarness(
        engine,
        pool,
        service_rate,
        registry.stream("mmc-service"),
        warmup=warmup,
        horizon=horizon,
    )
    GeneratorProcess(
        engine,
        poisson_gaps(arrival_rate, registry.stream("mmc-arrivals")),
        harness.on_task,
        kind=EventKind.TASK_ARRIVAL,
    )
    # Drain: run past the horizon so in-flight services complete, but stop
    # measuring (the harness clips its integrals at `horizon`).
    engine.run(until=horizon)
    harness.finish()
    pool.cancel_requests()
    pool.settle()

    waits = np.asarray(harness.waits, dtype=float)
    n_tasks = int(waits.size)
    window = horizon - warmup
    occ = harness.busy_seconds / (capacity * window)
    idle_seconds = capacity * window - harness.busy_seconds
    completed = n_tasks if n_tasks else 1
    cost = (wage_per_second * idle_seconds + task_payment * n_tasks) / completed
    return PoolSample(
        n_tasks=n_tasks,
        mean_wait=float(waits.mean()) if n_tasks else 0.0,
        wait_probability=float((waits > 0.0).mean()) if n_tasks else 0.0,
        occupancy=occ,
        cost_per_task=cost,
        ledger_total=pool.ledger.total_cost,
        ledger_idle_seconds=pool.ledger.retainer_seconds,
    )


def _interval(values: Sequence[float], analytic: float, name: str) -> MetricCheck:
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size)) if arr.size > 1 else 0.0
    half = max(Z_99 * sem, CI_REL_FLOOR * abs(analytic), CI_ABS_FLOOR)
    return MetricCheck(
        name=name,
        analytic=analytic,
        simulated_mean=mean,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def validate_point(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    seed: int = 0,
    reps: int = 5,
    horizon: float = 400.0,
    warmup: float = 50.0,
    wage_per_second: float = 0.01,
    task_payment: float = 0.05,
) -> PointValidation:
    """Simulate ``reps`` independent runs and test them against closed form."""
    if reps < 2:
        raise ValueError(f"reps must be >= 2 for a confidence interval, got {reps}")
    predictions = predict(
        arrival_rate,
        service_rate,
        capacity,
        wage_per_second=wage_per_second,
        task_payment=task_payment,
    )
    samples = [
        simulate_pool(
            arrival_rate,
            service_rate,
            capacity,
            seed=child,
            horizon=horizon,
            warmup=warmup,
            wage_per_second=wage_per_second,
            task_payment=task_payment,
        )
        for child in spawn_seeds(seed, reps)
    ]
    checks = (
        _interval([s.mean_wait for s in samples], predictions.mean_wait, "mean_wait"),
        _interval(
            [s.wait_probability for s in samples],
            predictions.wait_probability,
            "wait_probability",
        ),
        _interval([s.occupancy for s in samples], predictions.occupancy, "occupancy"),
        _interval(
            [s.cost_per_task for s in samples],
            predictions.cost_per_task,
            "cost_per_task",
        ),
    )
    return PointValidation(predictions=predictions, reps=reps, checks=checks)


#: The default (lam, mu, c) validation grid: nine stable operating points
#: spanning per-worker occupancies from 0.5 to 0.8 and pools of 2-8 workers.
DEFAULT_GRID: Tuple[Tuple[float, float, int], ...] = (
    (2.0, 1.0, 3),
    (4.0, 1.0, 5),
    (1.0, 0.5, 4),
    (3.0, 1.5, 4),
    (5.0, 1.0, 8),
    (0.5, 0.25, 3),
    (2.0, 2.0, 2),
    (6.0, 2.0, 4),
    (1.5, 0.5, 5),
)


def validate_grid(
    grid: Optional[Iterable[Tuple[float, float, int]]] = None,
    seed: int = 0,
    reps: int = 5,
    horizon: float = 400.0,
    warmup: float = 50.0,
) -> List[PointValidation]:
    """Validate every point of ``grid`` (default :data:`DEFAULT_GRID`)."""
    points = DEFAULT_GRID if grid is None else tuple(grid)
    return [
        validate_point(
            lam, mu, c, seed=seed, reps=reps, horizon=horizon, warmup=warmup
        )
        for lam, mu, c in points
    ]
