"""The retainer pool: paid standby workers released to tasks on demand.

Real-time crowdsourcing systems pre-recruit workers onto a paid *retainer*
so they can be handed a task within seconds instead of waiting for a fresh
marketplace arrival (Bernstein et al.).  :class:`RetainerPool` is that
layer, expressed against the simulation engine:

* workers are *held* idle on retainer (FIFO), earning
  :class:`~repro.platform.cost.RetainerCostConfig.wage_per_second` through
  a :class:`~repro.platform.cost.RetainerLedger`;
* a demand-side :meth:`request` either dispatches the longest-held idle
  worker after ``release_latency`` simulated seconds (the "come back to
  the tab" alert delay) or queues FIFO until a worker is returned;
* :meth:`return_worker` puts a worker back on hold — or hands him straight
  to the oldest queued request, which is what makes a saturated pool behave
  as the M/M/c queue the analytic module (:mod:`repro.retainer.analytic`)
  predicts and ``tests/validation/`` measures.

The pool is policy-free: it neither knows what a worker is nor why demand
arrives.  :mod:`repro.retainer.recruit` adapts it to the REACT server, and
:mod:`repro.retainer.validate` drives it directly as a plain M/M/c system.

Telemetry (all through the :mod:`repro.obs` facade): ``retainer_pool_held``
/ ``retainer_pool_outstanding`` gauges, a ``retainer_release_latency_seconds``
histogram of request-to-dispatch delay (queue wait + release latency), and
``retainer_wage_cost_total`` / ``retainer_releases_total`` /
``retainer_rejected_workers_total`` counters.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..obs.runtime import ObservabilityLike, resolve
from ..platform.cost import RetainerCostConfig, RetainerLedger
from ..sim.clock import EventClock
from ..sim.events import Event, EventKind

#: Dispatch callback: receives ``(worker_id, waited_seconds)`` where the
#: wait covers queueing *and* the release latency.
ReleaseCallback = Callable[[int, float], None]


class RetainerPool:
    """Capacity-bounded FIFO pool of retained workers with release latency."""

    def __init__(
        self,
        engine: EventClock,
        capacity: int,
        cost: Optional[RetainerCostConfig] = None,
        release_latency: float = 0.0,
        observability: Optional[ObservabilityLike] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if release_latency < 0:
            raise ValueError(
                f"release_latency must be non-negative, got {release_latency}"
            )
        self._engine = engine
        self.capacity = capacity
        self.release_latency = release_latency
        self.ledger = RetainerLedger(cost if cost is not None else RetainerCostConfig())
        #: worker_id -> simulated time the current hold started (FIFO order).
        self._held: Dict[int, float] = {}
        #: pending demand: (callback, requested_at), FIFO.
        self._waiting: Deque[Tuple[ReleaseCallback, float]] = deque()
        #: workers dispatched and not yet returned.
        self._outstanding: set[int] = set()
        obs = resolve(observability)
        registry = obs.registry
        self._tracer = obs.tracer
        self._obs_held = registry.gauge(
            "retainer_pool_held", "Workers currently held idle on retainer"
        )
        self._obs_outstanding = registry.gauge(
            "retainer_pool_outstanding", "Released workers not yet returned"
        )
        self._obs_latency = registry.histogram(
            "retainer_release_latency_seconds",
            "Demand request to worker dispatch (queue wait + release latency)",
            buckets=(0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0),
        )
        self._obs_wage = registry.counter(
            "retainer_wage_cost_total", "Retainer wages accrued (currency units)"
        )
        self._obs_releases = registry.counter(
            "retainer_releases_total", "Workers dispatched to demand"
        )
        self._obs_rejected = registry.counter(
            "retainer_rejected_workers_total",
            "Workers offered to an already-full pool",
        )

    # -------------------------------------------------------------- state
    @property
    def held_count(self) -> int:
        """Workers idle on retainer right now."""
        return len(self._held)

    @property
    def outstanding_count(self) -> int:
        """Workers released to demand and not yet returned."""
        return len(self._outstanding)

    @property
    def pending_requests(self) -> int:
        return len(self._waiting)

    @property
    def has_room(self) -> bool:
        """Whether one more worker can be held or put to queued demand."""
        return len(self._held) + len(self._outstanding) < self.capacity

    def is_held(self, worker_id: int) -> bool:
        return worker_id in self._held

    # ------------------------------------------------------------- supply
    def add_worker(self, worker_id: int) -> bool:
        """Offer a worker to the pool; False when it is already full.

        A worker joining while demand is queued skips the hold entirely and
        is dispatched to the oldest request.
        """
        if worker_id in self._held or worker_id in self._outstanding:
            raise ValueError(f"worker {worker_id} is already pooled")
        if not self.has_room:
            self._obs_rejected.inc()
            return False
        if self._waiting:
            callback, requested_at = self._waiting.popleft()
            self._dispatch(worker_id, callback, requested_at)
            return True
        self._hold(worker_id)
        return True

    def return_worker(self, worker_id: int) -> None:
        """A released worker comes back; re-held or dispatched to demand."""
        if worker_id not in self._outstanding:
            raise ValueError(f"worker {worker_id} was not released by this pool")
        self._outstanding.discard(worker_id)
        self._obs_outstanding.set(len(self._outstanding))
        if self._waiting:
            callback, requested_at = self._waiting.popleft()
            self._dispatch(worker_id, callback, requested_at)
            return
        self._hold(worker_id)

    def withdraw_worker(self, worker_id: int) -> None:
        """Remove a worker from the pool for good (churn, end of run).

        Accepts both held and outstanding workers; accrued wages stay on
        the ledger.
        """
        if worker_id in self._held:
            self._end_hold(worker_id)
            self._obs_held.set(len(self._held))
        elif worker_id in self._outstanding:
            self._outstanding.discard(worker_id)
            self._obs_outstanding.set(len(self._outstanding))
        else:
            raise ValueError(f"worker {worker_id} is not pooled")

    def resize(
        self,
        new_capacity: int,
        on_evict: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Retune capacity; shrinking evicts surplus *idle* workers.

        Growth just raises the bound (filling it is the recruiter's job —
        future arrivals find room).  Shrinking evicts newest-held workers
        first (LIFO keeps the longest-held seniority intact) until the pool
        fits, invoking ``on_evict(worker_id)`` per eviction so the caller
        can return the human to walk-in status.  Outstanding workers are
        never evicted mid-dispatch; if they alone exceed the new capacity
        the overshoot decays as they are withdrawn or the next resize runs.
        Returns the number of evictions.
        """
        if new_capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {new_capacity}")
        self.capacity = new_capacity
        evicted = 0
        while (
            self._held
            and len(self._held) + len(self._outstanding) > new_capacity
        ):
            worker_id = next(reversed(self._held))
            self._end_hold(worker_id)
            self._obs_held.set(len(self._held))
            evicted += 1
            self._tracer.instant(
                "retainer.evict", cat="retainer", worker_id=worker_id
            )
            if on_evict is not None:
                on_evict(worker_id)
        return evicted

    # ------------------------------------------------------------- demand
    def request(self, callback: ReleaseCallback) -> None:
        """Ask for one worker; ``callback(worker_id, waited)`` on dispatch.

        Dispatch happens ``release_latency`` seconds after an idle worker
        is available — immediately for a non-empty pool, or when the next
        worker is returned/added otherwise (FIFO in request order).
        """
        now = self._engine.now
        if self._held:
            worker_id = next(iter(self._held))
            self._dispatch(worker_id, callback, requested_at=now)
            return
        self._waiting.append((callback, now))

    def cancel_requests(self) -> int:
        """Drop all queued demand (end-of-run cleanup); returns the count."""
        dropped = len(self._waiting)
        self._waiting.clear()
        return dropped

    # ------------------------------------------------------------ closing
    def settle(self) -> None:
        """Close out open holds so the ledger covers the full run.

        Idempotent at a fixed simulated time; workers stay held (their next
        hold interval restarts at ``now``).
        """
        now = self._engine.now
        for worker_id in list(self._held):
            self._accrue(worker_id, now)
            self._held[worker_id] = now

    # ------------------------------------------------------------ internals
    def _hold(self, worker_id: int) -> None:
        self._held[worker_id] = self._engine.now
        self._obs_held.set(len(self._held))

    def _end_hold(self, worker_id: int) -> None:
        self._accrue(worker_id, self._engine.now)
        del self._held[worker_id]

    def _accrue(self, worker_id: int, now: float) -> None:
        held_since = self._held[worker_id]
        cost = self.ledger.accrue_hold(worker_id, now - held_since)
        self._obs_wage.inc(cost)

    def _dispatch(
        self, worker_id: int, callback: ReleaseCallback, requested_at: float
    ) -> None:
        if worker_id in self._held:
            self._end_hold(worker_id)
            self._obs_held.set(len(self._held))
        self._outstanding.add(worker_id)
        self._obs_outstanding.set(len(self._outstanding))
        self._engine.schedule(
            self.release_latency,
            EventKind.CALLBACK,
            self._on_released,
            payload=(worker_id, callback, requested_at),
        )

    def _on_released(self, event: Event) -> None:
        worker_id, callback, requested_at = event.payload
        waited = self._engine.now - requested_at
        self._obs_latency.observe(waited)
        self._obs_releases.inc()
        self._tracer.instant(
            "retainer.release",
            cat="retainer",
            worker_id=worker_id,
            waited=waited,
        )
        callback(worker_id, waited)
