"""Lightweight recurring-process helpers on top of any :class:`~repro.sim.clock.EventClock`.

The REACT server components need two scheduling idioms beyond one-shot
events: *periodic* activities (the Dynamic Assignment monitor sweep, periodic
batch triggers) and *generator-driven* arrival processes (the next arrival
time depends on a random draw).  Both are provided here so platform code
stays declarative.

Both helpers schedule their events ``transient=True``: the engine recycles
each firing through its :class:`~repro.sim.events.EventPool` right after
dispatch, so a steady periodic tick or a long arrival stream allocates no
per-event garbage.  That is safe here because the only retained handle
(:attr:`PeriodicProcess._pending`) is always replaced before the old event is
released and is only ever cancelled while still queued.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from .clock import EventClock
from .events import Event, EventKind


class PeriodicProcess:
    """Fires ``action(now)`` every ``period`` seconds until stopped.

    The first firing happens at ``start`` (default: one period from now).

    ``cohort_action``, when given, opts the process into the engine's
    batched cohort dispatch: N coincident firings of this process's events
    are delivered as one ``cohort_action(now, n)`` call instead of N
    ``action(now)`` callbacks.  The cohort action must be equivalent to
    calling ``action`` n times back-to-back at the same instant — that is
    the contract the batched-vs-sequential equivalence suite pins.  (A
    single process keeps at most one event queued, so n > 1 only arises
    when several processes share one action through the same engine.)
    """

    def __init__(
        self,
        engine: EventClock,
        period: float,
        action: Callable[[float], None],
        kind: EventKind = EventKind.CALLBACK,
        start: Optional[float] = None,
        cohort_action: Optional[Callable[[float, int], None]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._engine = engine
        self._period = period
        self._action = action
        self._kind = kind
        self._cohort_action = cohort_action
        self._stopped = False
        self._pending: Optional[Event] = None
        if cohort_action is not None:
            engine.register_cohort_handler(self._fire, self._fire_cohort)
        first_delay = period if start is None else max(0.0, start - engine.now)
        self._pending = engine.schedule(first_delay, kind, self._fire, transient=True)

    @property
    def period(self) -> float:
        return self._period

    def _fire(self, event: Event) -> None:
        if self._stopped:
            return
        self._action(self._engine.now)
        if not self._stopped:
            self._pending = self._engine.schedule(
                self._period, self._kind, self._fire, transient=True
            )

    def _fire_cohort(self, now: float, events: List[Event]) -> None:
        """Cohort handler: one batched activation for N coincident firings."""
        if self._stopped:
            return
        assert self._cohort_action is not None  # registered only when set
        self._cohort_action(now, len(events))
        for _ in events:
            if self._stopped:
                break
            self._pending = self._engine.schedule(
                self._period, self._kind, self._fire, transient=True
            )

    def stop(self) -> None:
        self._stopped = True
        if self._pending is not None:
            self._engine.cancel(self._pending)
            self._pending = None
        if self._cohort_action is not None:
            self._engine.unregister_cohort_handler(self._fire)


class GeneratorProcess:
    """Drives a generator of ``(delay, payload)`` pairs through the engine.

    Each yielded pair schedules ``action(payload)`` after ``delay`` seconds
    of simulated time, then pulls the next pair.  Arrival processes
    (:mod:`repro.workload.arrivals`) are expressed this way so the stochastic
    gap structure lives with the workload code, not the platform.
    """

    def __init__(
        self,
        engine: EventClock,
        gaps: Iterator[tuple[float, object]],
        action: Callable[[object], None],
        kind: EventKind = EventKind.CALLBACK,
    ) -> None:
        self._engine = engine
        self._gaps = gaps
        self._action = action
        self._kind = kind
        self._stopped = False
        self._count = 0
        self._advance()

    @property
    def emitted(self) -> int:
        """Number of payloads delivered so far."""
        return self._count

    def _advance(self) -> None:
        if self._stopped:
            return
        try:
            delay, payload = next(self._gaps)
        except StopIteration:
            return
        if delay < 0:
            raise ValueError(f"generator produced a negative delay: {delay}")
        self._engine.schedule(
            delay, self._kind, self._fire, payload=payload, transient=True
        )

    def _fire(self, event: Event) -> None:
        if self._stopped:
            return
        self._count += 1
        self._action(event.payload)
        self._advance()

    def stop(self) -> None:
        self._stopped = True
