"""Lightweight recurring-process helpers on top of :class:`~repro.sim.engine.Engine`.

The REACT server components need two scheduling idioms beyond one-shot
events: *periodic* activities (the Dynamic Assignment monitor sweep, periodic
batch triggers) and *generator-driven* arrival processes (the next arrival
time depends on a random draw).  Both are provided here so platform code
stays declarative.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .engine import Engine
from .events import Event, EventKind


class PeriodicProcess:
    """Fires ``action(now)`` every ``period`` seconds until stopped.

    The first firing happens at ``start`` (default: one period from now).
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        action: Callable[[float], None],
        kind: EventKind = EventKind.CALLBACK,
        start: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._engine = engine
        self._period = period
        self._action = action
        self._kind = kind
        self._stopped = False
        self._pending: Optional[Event] = None
        first_delay = period if start is None else max(0.0, start - engine.now)
        self._pending = engine.schedule(first_delay, kind, self._fire)

    @property
    def period(self) -> float:
        return self._period

    def _fire(self, event: Event) -> None:
        if self._stopped:
            return
        self._action(self._engine.now)
        if not self._stopped:
            self._pending = self._engine.schedule(self._period, self._kind, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class GeneratorProcess:
    """Drives a generator of ``(delay, payload)`` pairs through the engine.

    Each yielded pair schedules ``action(payload)`` after ``delay`` seconds
    of simulated time, then pulls the next pair.  Arrival processes
    (:mod:`repro.workload.arrivals`) are expressed this way so the stochastic
    gap structure lives with the workload code, not the platform.
    """

    def __init__(
        self,
        engine: Engine,
        gaps: Iterator[tuple[float, object]],
        action: Callable[[object], None],
        kind: EventKind = EventKind.CALLBACK,
    ) -> None:
        self._engine = engine
        self._gaps = gaps
        self._action = action
        self._kind = kind
        self._stopped = False
        self._count = 0
        self._advance()

    @property
    def emitted(self) -> int:
        """Number of payloads delivered so far."""
        return self._count

    def _advance(self) -> None:
        if self._stopped:
            return
        try:
            delay, payload = next(self._gaps)
        except StopIteration:
            return
        if delay < 0:
            raise ValueError(f"generator produced a negative delay: {delay}")
        self._engine.schedule(delay, self._kind, self._fire, payload=payload)

    def _fire(self, event: Event) -> None:
        if self._stopped:
            return
        self._count += 1
        self._action(event.payload)
        self._advance()

    def stop(self) -> None:
        self._stopped = True
