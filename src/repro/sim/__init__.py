"""Discrete-event simulation substrate.

The paper evaluates REACT live on PlanetLab; this reproduction drives the
same middleware components in deterministic simulated time.  See DESIGN.md
section 2 for why the substitution preserves the reported behaviour.
"""

from .clock import CohortHandler, EventClock
from .engine import Engine, SimulationError
from .events import Event, EventKind, EventRecord
from .process import GeneratorProcess, PeriodicProcess
from .rng import (
    STREAM_ARRIVALS,
    STREAM_CHURN,
    STREAM_FEEDBACK,
    STREAM_MATCHER,
    STREAM_TASKS,
    STREAM_WORKER_BEHAVIOR,
    STREAM_WORKER_POPULATION,
    RngRegistry,
)

__all__ = [
    "CohortHandler",
    "Engine",
    "EventClock",
    "SimulationError",
    "Event",
    "EventKind",
    "EventRecord",
    "GeneratorProcess",
    "PeriodicProcess",
    "RngRegistry",
    "STREAM_ARRIVALS",
    "STREAM_CHURN",
    "STREAM_FEEDBACK",
    "STREAM_MATCHER",
    "STREAM_TASKS",
    "STREAM_WORKER_BEHAVIOR",
    "STREAM_WORKER_POPULATION",
]
