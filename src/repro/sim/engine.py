"""Deterministic discrete-event simulation engine.

A minimal, allocation-light event loop: a binary heap of :class:`Event`
objects ordered by ``(time, priority, seq)``.  The REACT platform components
(:mod:`repro.platform`) schedule all of their behaviour — task arrivals,
batch triggers, matcher latency, task completions, Eq. (2) monitor sweeps —
through this engine, which is what lets a slow matcher (Greedy, Fig. 5)
visibly starve the task queue exactly as on the paper's testbed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Iterable, Optional

from .events import Event, EventKind, EventRecord


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


class Engine:
    """Discrete-event engine with a monotone simulated clock.

    Parameters
    ----------
    trace:
        When true, every dispatched event is appended to :attr:`records`,
        which integration tests use to assert ordering invariants.
    max_records:
        Ring-buffer cap on :attr:`records`.  ``None`` (the default) keeps
        every record — fine for tests, unbounded for long traced runs; with
        a cap the oldest records are evicted and counted in
        :attr:`dropped_records`.  For structured, exportable run telemetry
        prefer the observability tracer (:mod:`repro.obs`) over this raw
        record list.
    trace_sink:
        Optional callback invoked with every dispatched event's
        :class:`EventRecord` (independently of ``trace``); this is how the
        observability layer taps the dispatch stream without growing any
        buffer here.

    Notes
    -----
    The engine is single-threaded and deterministic: given the same sequence
    of ``schedule`` calls it dispatches the same events in the same order.
    """

    def __init__(
        self,
        trace: bool = False,
        max_records: Optional[int] = None,
        trace_sink: Optional[Callable[[EventRecord], None]] = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1 or None, got {max_records}")
        self._heap: list[Event] = []
        self._now: float = 0.0
        self._running = False
        self._stopped = False
        self._dispatched = 0
        self._trace = trace
        self._max_records = max_records
        self.records: Deque[EventRecord] = deque(maxlen=max_records)
        #: Records evicted by the ``max_records`` ring buffer.
        self.dropped_records = 0
        self.trace_sink = trace_sink

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------- schedule
    def schedule(
        self,
        delay: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            kind=kind,
            callback=callback,
            payload=payload,
            priority=priority,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.schedule(time - self._now, kind, callback, payload, priority)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------ run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Dispatch events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        Returns the simulated time at which the loop stopped.  Events with
        ``time > until`` remain queued, so a later ``run`` call resumes where
        this one paused.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if event.time < self._now:  # pragma: no cover - defensive
                    raise SimulationError("heap produced an out-of-order event")
                self._now = event.time
                self._dispatched += 1
                fired += 1
                if self._trace or self.trace_sink is not None:
                    record = EventRecord(
                        time=event.time,
                        kind=event.kind,
                        seq=event.seq,
                        payload_repr=None if event.payload is None else repr(event.payload)[:80],
                    )
                    if self._trace:
                        if (
                            self._max_records is not None
                            and len(self.records) == self._max_records
                        ):
                            self.dropped_records += 1
                        self.records.append(record)
                    if self.trace_sink is not None:
                        self.trace_sink(record)
                event.callback(event)
            else:
                # Heap drained; if a horizon was given, advance to it.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def drain(self) -> Iterable[Event]:
        """Remove and yield all pending events (testing helper)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                yield event
