"""Deterministic discrete-event simulation engine.

A minimal, allocation-light event loop: a binary heap of
``(time, priority, seq, Event)`` tuples — tuple entries keep the heap's
comparisons in C instead of calling :meth:`Event.__lt__` per sift step.  The
REACT platform components (:mod:`repro.platform`) schedule all of their
behaviour — task arrivals, batch triggers, matcher latency, task
completions, Eq. (2) monitor sweeps — through this engine, which is what
lets a slow matcher (Greedy, Fig. 5) visibly starve the task queue exactly
as on the paper's testbed.

Batched cohort dispatch
-----------------------
``run()`` drains every event sharing the head ``(time, priority)`` key into
a *cohort* and walks it in ``seq`` order.  Consecutive cohort members bound
for the same callback that has a registered **cohort handler**
(:meth:`Engine.register_cohort_handler`) are delivered as one
``handler(now, events)`` call instead of N separate callbacks; everything
else takes the compatibility path (`event.callback(event)` per event), which
is byte-identical to the sequential engine.  The total dispatch order — and
therefore the ``trace_sink`` record stream — is exactly the sequential
``(time, priority, seq)`` order: cohort members keep their seq order, events
scheduled *by* a cohort carry later sequence numbers so they form follow-up
cohorts, and a same-time higher-priority event scheduled mid-cohort preempts
the remaining members just as it would have in the one-at-a-time loop.

Allocation hygiene
------------------
``schedule(..., transient=True)`` draws events from a free-list
:class:`~repro.sim.events.EventPool` and recycles them right after dispatch;
only call sites that drop the returned handle may opt in.  Cancelled events
routed through :meth:`Engine.cancel` are counted, and when they exceed
``compact_fraction`` of a non-trivial heap the heap is rebuilt without them
(``peek_time``/``pending_active`` stay consistent either way).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from .clock import CohortHandler
from .events import Event, EventKind, EventPool, EventRecord

__all__ = ["CohortHandler", "Engine", "SimulationError"]

_HeapEntry = Tuple[float, int, int, Event]

#: Compact the heap when cancelled entries exceed this fraction of it.
COMPACT_FRACTION = 0.5
#: ... but never bother below this many queued events.
COMPACT_MIN_PENDING = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


class Engine:
    """Discrete-event engine with a monotone simulated clock.

    Parameters
    ----------
    trace:
        When true, every dispatched event is appended to :attr:`records`,
        which integration tests use to assert ordering invariants.
    max_records:
        Ring-buffer cap on :attr:`records`.  ``None`` (the default) keeps
        every record — fine for tests, unbounded for long traced runs; with
        a cap the oldest records are evicted and counted in
        :attr:`dropped_records`.  For structured, exportable run telemetry
        prefer the observability tracer (:mod:`repro.obs`) over this raw
        record list.
    trace_sink:
        Optional callback invoked with every dispatched event's
        :class:`EventRecord` (independently of ``trace``); this is how the
        observability layer taps the dispatch stream without growing any
        buffer here.

    Notes
    -----
    The engine is single-threaded and deterministic: given the same sequence
    of ``schedule`` calls it dispatches the same events in the same order.
    """

    def __init__(
        self,
        trace: bool = False,
        max_records: Optional[int] = None,
        trace_sink: Optional[Callable[[EventRecord], None]] = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1 or None, got {max_records}")
        self._heap: List[_HeapEntry] = []
        self._now: float = 0.0
        self._running = False
        self._stopped = False
        self._dispatching = False
        self._dispatched = 0
        self._cancelled_in_heap = 0
        self._trace = trace
        self._max_records = max_records
        self._pool = EventPool()
        self._cohort_handlers: Dict[Callable[[Event], None], CohortHandler] = {}
        self.records: Deque[EventRecord] = deque(maxlen=max_records)
        #: Records evicted by the ``max_records`` ring buffer.
        self.dropped_records = 0
        self.trace_sink = trace_sink

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Number of events still queued, **including cancelled ones**.

        Cheap (O(1)) but misleading for backpressure decisions when many
        queued events have been cancelled; use :attr:`pending_active` there.
        """
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Number of queued events that will actually fire (cancelled ones
        excluded).  O(pending) — a diagnostic, not a hot-path counter."""
        heap = self._heap
        cancelled = 0
        for entry in heap:
            if entry[3].cancelled:
                cancelled += 1
        return len(heap) - cancelled

    @property
    def event_pool(self) -> EventPool:
        """The engine's free list for ``transient=True`` events."""
        return self._pool

    # ------------------------------------------------------------- schedule
    def schedule(
        self,
        delay: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``transient=True`` draws the event from the :class:`EventPool` and
        recycles it immediately after dispatch (or on a cancelled pop): use
        it only when the returned handle is dropped.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if transient:
            event = self._pool.acquire(
                self._now + delay, kind, callback, payload, priority
            )
        else:
            event = Event(
                time=self._now + delay,
                kind=kind,
                callback=callback,
                payload=payload,
                priority=priority,
            )
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.schedule(
            time - self._now, kind, callback, payload, priority, transient
        )

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event and feed the compaction accounting.

        Equivalent to ``event.cancel()`` plus bookkeeping: when cancelled
        entries exceed ``COMPACT_FRACTION`` of a heap larger than
        ``COMPACT_MIN_PENDING`` the heap is rebuilt without them, keeping
        long runs with heavy cancellation (churn, chaos, retainer release)
        from dragging dead entries through every sift.
        """
        if event.cancelled:
            return
        event.cancelled = True
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) > COMPACT_MIN_PENDING
            and self._cancelled_in_heap > COMPACT_FRACTION * len(heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (pool-releasing them)."""
        release = self._pool.release
        kept: List[_HeapEntry] = []
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                if event.transient:
                    release(event)
            else:
                kept.append(entry)
        heapq.heapify(kept)
        self._heap = kept
        self._cancelled_in_heap = 0

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------- cohorts
    def register_cohort_handler(
        self, callback: Callable[[Event], None], handler: CohortHandler
    ) -> None:
        """Route every cohort of ``callback`` events through ``handler``.

        ``handler(now, events)`` receives the consecutive run of
        non-cancelled events sharing the head ``(time, priority)`` that are
        bound for ``callback``, in ``seq`` order, instead of one
        ``callback(event)`` call each.  Handlers must preserve per-event
        semantics (the bit-equivalence suites compare against the sequential
        path) and must not structurally mutate the engine heap — scheduling
        new events is fine, draining it is not (see :meth:`drain`).
        """
        self._cohort_handlers[callback] = handler

    def unregister_cohort_handler(self, callback: Callable[[Event], None]) -> None:
        """Remove a cohort route; ``callback`` reverts to per-event dispatch."""
        self._cohort_handlers.pop(callback, None)

    # ------------------------------------------------------------------ run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Dispatch events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        Returns the simulated time at which the loop stopped.  Events with
        ``time > until`` remain queued, so a later ``run`` call resumes where
        this one paused.  ``until`` is inclusive: a head event at exactly
        ``until`` still fires.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        handlers = self._cohort_handlers
        pool_release = self._pool.release
        drained = False
        try:
            while True:
                if not heap:
                    drained = True
                    break
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                key_time, key_priority = heap[0][0], heap[0][1]
                if until is not None and key_time > until:
                    self._now = until
                    break
                if key_time < self._now:  # pragma: no cover - defensive
                    raise SimulationError("heap produced an out-of-order event")

                event = heapq.heappop(heap)[3]
                if event.cancelled:
                    if self._cancelled_in_heap > 0:
                        self._cancelled_in_heap -= 1
                    if event.transient:
                        pool_release(event)
                    continue

                if not (
                    heap and heap[0][0] == key_time and heap[0][1] == key_priority
                ):
                    # Fast path: a cohort of one (the overwhelmingly common
                    # case) dispatches inline with no cohort list at all.
                    self._now = key_time
                    self._dispatched += 1
                    fired += 1
                    if self._trace or self.trace_sink is not None:
                        self._record(event, self._trace, self.trace_sink)
                    handler = handlers.get(event.callback) if handlers else None
                    if handler is None:
                        event.callback(event)
                    else:
                        self._dispatching = True
                        try:
                            handler(key_time, [event])
                        finally:
                            self._dispatching = False
                    if event.transient:
                        pool_release(event)
                    continue

                # Slow path: drain the rest of the head cohort — every
                # queued event at exactly (key_time, key_priority), capped
                # by the remaining max_events budget (counting only
                # not-yet-cancelled ones, mirroring the sequential loop's
                # accounting).
                cohort: List[Event] = [event]
                budget = None if max_events is None else max_events - fired
                live = 1
                while heap and heap[0][0] == key_time and heap[0][1] == key_priority:
                    if budget is not None and live >= budget:
                        break
                    peer = heapq.heappop(heap)[3]
                    if peer.cancelled:
                        if self._cancelled_in_heap > 0:
                            self._cancelled_in_heap -= 1
                        if peer.transient:
                            pool_release(peer)
                        continue
                    cohort.append(peer)
                    live += 1
                self._now = key_time

                fired += self._dispatch_cohort(
                    cohort, key_time, key_priority, handlers, pool_release
                )
        finally:
            self._running = False
        if drained and until is not None and until > self._now:
            # Heap drained; a horizon was given, so advance to it.
            self._now = until
        return self._now

    def _dispatch_cohort(
        self,
        cohort: List[Event],
        key_time: float,
        key_priority: int,
        handlers: Dict[Callable[[Event], None], CohortHandler],
        pool_release: Callable[[Event], None],
    ) -> int:
        """Dispatch one drained cohort in seq order; returns events fired.

        Re-checks cancellation per event (an earlier member may cancel a
        later one), honours ``stop()`` between members by pushing the
        remainder back, and yields to a same-time *higher-priority* event
        that a member scheduled — exactly what the one-at-a-time loop did.
        """
        heap = self._heap
        trace = self._trace
        sink = self.trace_sink
        tracing = trace or sink is not None
        fired = 0
        index = 0
        n = len(cohort)
        self._dispatching = True
        try:
            while index < n:
                if self._stopped:
                    break
                # A member's callback may have scheduled an event at this
                # same time with a smaller priority value; sequentially it
                # would fire before the rest of this cohort does.
                if heap:
                    head = heap[0]
                    if head[0] == key_time and head[1] < key_priority:
                        break
                event = cohort[index]
                if event.cancelled:
                    index += 1
                    if event.transient:
                        pool_release(event)
                    continue
                handler = handlers.get(event.callback) if handlers else None
                if handler is None:
                    index += 1
                    self._dispatched += 1
                    fired += 1
                    if tracing:
                        self._record(event, trace, sink)
                    event.callback(event)
                    if event.transient:
                        pool_release(event)
                    continue
                # Batched path: the consecutive run of live events bound for
                # this same callback becomes one handler call.
                batch = [event]
                scan = index + 1
                while scan < n:
                    peer = cohort[scan]
                    if peer.callback != event.callback:
                        break
                    if not peer.cancelled:
                        batch.append(peer)
                    scan += 1
                # Cancelled peers swallowed by the run above still need
                # their pool slot back.
                for position in range(index, scan):
                    member = cohort[position]
                    if member.cancelled and member.transient:
                        pool_release(member)
                index = scan
                self._dispatched += len(batch)
                fired += len(batch)
                if tracing:
                    for member in batch:
                        self._record(member, trace, sink)
                handler(key_time, batch)
                for member in batch:
                    if member.transient:
                        pool_release(member)
        finally:
            self._dispatching = False
            if index < n:
                # stop() or a preempting event: the undispatched tail goes
                # back on the heap so a later run() resumes exactly here.
                for event in cohort[index:]:
                    heapq.heappush(
                        heap, (event.time, event.priority, event.seq, event)
                    )
        return fired

    def _record(
        self,
        event: Event,
        trace: bool,
        sink: Optional[Callable[[EventRecord], None]],
    ) -> None:
        record = EventRecord(
            time=event.time,
            kind=event.kind,
            seq=event.seq,
            payload=event.payload,
        )
        if trace:
            if (
                self._max_records is not None
                and len(self.records) == self._max_records
            ):
                self.dropped_records += 1
            self.records.append(record)
        if sink is not None:
            sink(record)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if empty.

        Lazily pops cancelled head entries (consistent with
        :attr:`pending_active`: after a call, ``pending`` counts no
        cancelled events ahead of the returned time).
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            event = heapq.heappop(heap)[3]
            if self._cancelled_in_heap > 0:
                self._cancelled_in_heap -= 1
            if event.transient:
                self._pool.release(event)
        return heap[0][0] if heap else None

    def drain(self) -> Iterable[Event]:
        """Remove and yield all pending events (testing helper).

        Refuses to run while a cohort is mid-dispatch: handlers must never
        structurally mutate the heap under the run loop's feet.
        """
        if self._dispatching:
            raise SimulationError(
                "drain() during cohort dispatch: handlers must not mutate "
                "the engine heap"
            )
        return self._drain_iter()

    def _drain_iter(self) -> Iterator[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if not event.cancelled:
                yield event
        self._cancelled_in_heap = 0
