"""Named, seeded random-number streams.

Every stochastic decision in the reproduction — task arrival gaps, worker
execution durations, the 50% delay coin, feedback Bernoulli draws, the REACT
matcher's random edge flips — draws from an independent
:class:`numpy.random.Generator` stream derived from one experiment seed via
``SeedSequence.spawn``-style keying.  This gives two properties the paper's
figures need:

* *reproducibility*: the same config produces bit-identical series, and
* *variance isolation*: changing e.g. the matcher does not perturb the
  worker-behaviour stream, so algorithm comparisons (Figs. 5-10) see the same
  worker population and the same arrival trace.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np


class RngRegistry:
    """Factory for independent named RNG streams under a single root seed."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream is keyed by hashing the name into the seed sequence, so
        the set of *other* streams requested never affects this one.
        """
        if name not in self._streams:
            key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(int(b) for b in key))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def fork(self, offset: int) -> "RngRegistry":
        """A registry with a derived seed (for experiment repetitions)."""
        return RngRegistry(seed=self._seed * 1_000_003 + offset)


# Canonical stream names used across the platform.  Keeping them in one place
# avoids typo-divergence between producer and consumer modules.
STREAM_ARRIVALS = "arrivals"
STREAM_WORKER_BEHAVIOR = "worker-behavior"
STREAM_WORKER_POPULATION = "worker-population"
STREAM_FEEDBACK = "feedback"
STREAM_MATCHER = "matcher"
STREAM_TASKS = "tasks"
STREAM_CHURN = "churn"
STREAM_CHAOS = "chaos"
