"""Named, seeded random-number streams.

Every stochastic decision in the reproduction — task arrival gaps, worker
execution durations, the 50% delay coin, feedback Bernoulli draws, the REACT
matcher's random edge flips — draws from an independent
:class:`numpy.random.Generator` stream derived from one experiment seed via
``SeedSequence.spawn``-style keying.  This gives two properties the paper's
figures need:

* *reproducibility*: the same config produces bit-identical series, and
* *variance isolation*: changing e.g. the matcher does not perturb the
  worker-behaviour stream, so algorithm comparisons (Figs. 5-10) see the same
  worker population and the same arrival trace.

Forked registries (experiment repetitions, per-server registries under the
multi-region :class:`~repro.platform.coordinator.Coordinator`, per-shard
workers in :mod:`repro.dist`) carry a *lineage* tuple that is threaded into
the ``spawn_key`` of every stream they create.  Keying by lineage instead of
deriving a child *seed* arithmetically guarantees nested forks never collide:
the old ``seed * 1_000_003 + offset`` derivation mapped distinct
``(seed, offset)`` chains onto the same child seed (e.g. ``fork(a).fork(b)``
collided with ``fork(a * 1_000_003 + b)``), silently correlating streams
between repetitions.

Migration note: root registries key streams exactly as before, so
single-server experiment baselines are unchanged.  Results that flow through
``fork`` (multi-region coordinator runs, repetition sweeps) draw from new
streams and BENCH baselines recorded before the change may shift.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

#: Separator between the fork lineage and the stream-name bytes inside a
#: ``spawn_key``.  Name bytes are < 256 and fork offsets are validated to be
#: < the sentinel, so no (lineage, name) pair can alias another — the key
#: space is prefix-free.
SPAWN_SENTINEL = 0xFFFF_FFFF


class RngRegistry:
    """Factory for independent named RNG streams under a single root seed."""

    def __init__(self, seed: int = 0, lineage: Tuple[int, ...] = ()) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._lineage = tuple(int(part) for part in lineage)
        for part in self._lineage:
            if not 0 <= part < SPAWN_SENTINEL:
                raise ValueError(
                    f"lineage entries must be in [0, {SPAWN_SENTINEL}), got {part}"
                )
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The *root* experiment seed (identical across all forks)."""
        return self._seed

    @property
    def lineage(self) -> Tuple[int, ...]:
        """Fork offsets from the root registry down to this one."""
        return self._lineage

    def spawn_key(self, name: str) -> Tuple[int, ...]:
        """The ``SeedSequence`` spawn key for stream ``name``.

        Root registries key by the name bytes alone — the derivation the
        repo has always used, so existing single-process baselines hold.
        Forked registries prepend their lineage plus a sentinel separator.
        """
        name_key = tuple(int(b) for b in name.encode("utf-8"))
        if not self._lineage:
            return name_key
        return (*self._lineage, SPAWN_SENTINEL, *name_key)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream is keyed by hashing the name (and, for forked
        registries, the fork lineage) into the seed sequence, so the set of
        *other* streams requested never affects this one.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=self.spawn_key(name)
            )
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def fork(self, offset: int) -> "RngRegistry":
        """A registry with an independent stream family (repetitions, shards).

        The child keeps the root seed and appends ``offset`` to its lineage;
        streams are then keyed by the full lineage, so nested forks are
        independent by construction.  (The previous arithmetic derivation,
        ``seed * 1_000_003 + offset``, collided across fork chains.)
        """
        if not isinstance(offset, (int, np.integer)):
            raise TypeError(f"offset must be an int, got {type(offset).__name__}")
        if not 0 <= int(offset) < SPAWN_SENTINEL:
            raise ValueError(
                f"fork offset must be in [0, {SPAWN_SENTINEL}), got {offset}"
            )
        return RngRegistry(seed=self._seed, lineage=(*self._lineage, int(offset)))


def spawn_seeds(seed: int, n: int) -> List[int]:
    """Derive ``n`` independent 64-bit child seeds from one root seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the collision-free way to
    key independent experiment repetitions (each child seeds its own
    hermetic :class:`RngRegistry`).  Deterministic in ``(seed, n)``; the
    first ``k`` children are identical for any ``n >= k``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    children = np.random.SeedSequence(entropy=int(seed)).spawn(int(n))
    return [
        int(child.generate_state(2, np.uint32).view(np.uint64)[0])
        for child in children
    ]


# Canonical stream names used across the platform.  Keeping them in one place
# avoids typo-divergence between producer and consumer modules.
STREAM_ARRIVALS = "arrivals"
STREAM_WORKER_BEHAVIOR = "worker-behavior"
STREAM_WORKER_POPULATION = "worker-population"
STREAM_FEEDBACK = "feedback"
STREAM_MATCHER = "matcher"
STREAM_TASKS = "tasks"
STREAM_CHURN = "churn"
STREAM_CHAOS = "chaos"
STREAM_WORKER_ARRIVALS = "worker-arrivals"
STREAM_SCENARIO_GEO = "scenario-geo"
