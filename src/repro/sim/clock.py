"""The clock/event-source protocol shared by every platform component.

The REACT middleware components (Profiling, Task Management, Scheduling,
Dynamic Assignment — :mod:`repro.platform`) and the retainer layer
(:mod:`repro.retainer`) never depend on *how* time advances; they only
``schedule`` callbacks, ``cancel`` them, read ``now``, and opt into batched
cohort dispatch.  :class:`EventClock` names exactly that surface, so the
same component instances run unmodified on either

* the deterministic DES :class:`~repro.sim.engine.Engine`, where ``now`` is
  simulated seconds and ``run()`` drives dispatch, or
* the wall-clock asyncio runtime
  (:class:`repro.service.runtime.WallClockRuntime`), where ``now`` is
  monotonic seconds since service start and the event loop drives dispatch.

The protocol is structural (:class:`typing.Protocol`): ``Engine`` satisfies
it without importing this module at runtime, and the conformance battery in
``tests/service/test_clock_protocol.py`` pins the behavioural contract both
implementations must honour (ordering, cancellation, cohort batching,
``now`` monotonicity).

Contract highlights
-------------------
* ``now`` is monotone nondecreasing and constant for the duration of one
  cohort dispatch (every member of a cohort observes the same instant).
* Events fire in ``(time, priority, seq)`` order for events that are queued
  together; ``seq`` is the global scheduling order
  (:class:`~repro.sim.events.Event`).
* ``cancel(event)`` before dispatch guarantees the callback never runs.
* ``register_cohort_handler(callback, handler)`` routes coincident
  same-``(time, priority)`` events bound for ``callback`` through one
  ``handler(now, events)`` call, in ``seq`` order.
* ``schedule`` with a negative delay (or ``schedule_at`` in the past) raises
  :class:`~repro.sim.engine.SimulationError`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Protocol, runtime_checkable

from .events import Event, EventKind

#: A batched dispatch target: ``handler(now, events)`` receives every
#: consecutive same-``(time, priority)`` event bound for its callback.
CohortHandler = Callable[[float, List[Event]], None]


@runtime_checkable
class EventClock(Protocol):
    """Event-source surface the platform components are written against."""

    @property
    def now(self) -> float:
        """Current time in seconds (simulated or wall-derived)."""
        ...

    def schedule(
        self,
        delay: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from ``now``."""
        ...

    def schedule_at(
        self,
        time: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` at the absolute clock time ``time``."""
        ...

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event; its callback will never run."""
        ...

    def register_cohort_handler(
        self, callback: Callable[[Event], None], handler: CohortHandler
    ) -> None:
        """Route cohorts of ``callback`` events through ``handler``."""
        ...

    def unregister_cohort_handler(self, callback: Callable[[Event], None]) -> None:
        """Remove a cohort route; ``callback`` reverts to per-event dispatch."""
        ...
