"""Event primitives for the discrete-event simulation engine.

The REACT middleware in the paper runs on PlanetLab in wall-clock time; here
the same components are driven by a deterministic discrete-event simulator.
Events are totally ordered by ``(time, priority, sequence)`` so that two runs
with the same seed replay identically, independent of heap tie-breaking.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventKind(enum.IntEnum):
    """Well-known event categories used by the REACT platform.

    The integer values double as scheduling *priorities* for events that fire
    at the same simulated instant: lower value fires first.  The ordering is
    deliberate — completions must be observed before a batch trigger decides
    which tasks are still unassigned, and arrivals must be registered before
    the batch that could assign them.
    """

    #: A worker finished (or abandoned past deadline) a task.
    TASK_COMPLETION = 0
    #: A worker joined the region.
    WORKER_ARRIVAL = 1
    #: A worker left the region (churn extension).
    WORKER_DEPARTURE = 2
    #: A new task was submitted by a requester.
    TASK_ARRIVAL = 3
    #: The Dynamic Assignment Component re-evaluates Eq. (2) for running tasks.
    REASSIGNMENT_CHECK = 4
    #: The Scheduling Component wakes up to run a matching batch.
    BATCH_TRIGGER = 5
    #: A matching batch (whose simulated latency elapsed) publishes results.
    BATCH_COMPLETE = 6
    #: Generic user callback (examples / tests).
    CALLBACK = 7
    #: End-of-simulation sentinel.
    STOP = 8
    #: Chaos fault activation/deactivation (:mod:`repro.chaos`).  Lowest
    #: priority on purpose: a fault striking at time t observes the state
    #: *after* every ordinary event of that instant has been processed.
    FAULT_INJECTION = 9


_SEQUENCE = itertools.count()


@dataclass(order=False)
class Event:
    """A scheduled occurrence in simulated time.

    Events compare by ``(time, priority, seq)``.  ``seq`` is a process-global
    monotone counter, so insertion order breaks the remaining ties, which
    keeps the event loop fully deterministic.
    """

    time: float
    kind: EventKind
    callback: Callable[["Event"], None]
    payload: Any = None
    priority: int = field(default=-1)
    seq: int = field(default_factory=lambda: next(_SEQUENCE))
    cancelled: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        if self.priority < 0:
            self.priority = int(self.kind)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.3f}, kind={self.kind.name}, "
            f"seq={self.seq}{', CANCELLED' if self.cancelled else ''})"
        )


@dataclass(frozen=True)
class EventRecord:
    """Immutable trace record of a dispatched event (for tracing/tests)."""

    time: float
    kind: EventKind
    seq: int
    payload_repr: Optional[str] = None
