"""Event primitives for the discrete-event simulation engine.

The REACT middleware in the paper runs on PlanetLab in wall-clock time; here
the same components are driven by a deterministic discrete-event simulator.
Events are totally ordered by ``(time, priority, sequence)`` so that two runs
with the same seed replay identically, independent of heap tie-breaking.

Everything here is allocation-conscious: :class:`Event` and
:class:`EventRecord` carry ``__slots__`` (millions of them exist over a long
run), :class:`EventRecord` defers ``repr(payload)`` until a consumer actually
reads it, and :class:`EventPool` recycles *transient* events — the fire-once,
nobody-keeps-a-handle kind — through a free list so the steady-state engine
loop allocates nothing per event.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class EventKind(enum.IntEnum):
    """Well-known event categories used by the REACT platform.

    The integer values double as scheduling *priorities* for events that fire
    at the same simulated instant: lower value fires first.  The ordering is
    deliberate — completions must be observed before a batch trigger decides
    which tasks are still unassigned, and arrivals must be registered before
    the batch that could assign them.
    """

    #: A worker finished (or abandoned past deadline) a task.
    TASK_COMPLETION = 0
    #: A worker joined the region.
    WORKER_ARRIVAL = 1
    #: A worker left the region (churn extension).
    WORKER_DEPARTURE = 2
    #: A new task was submitted by a requester.
    TASK_ARRIVAL = 3
    #: The Dynamic Assignment Component re-evaluates Eq. (2) for running tasks.
    REASSIGNMENT_CHECK = 4
    #: The Scheduling Component wakes up to run a matching batch.
    BATCH_TRIGGER = 5
    #: A matching batch (whose simulated latency elapsed) publishes results.
    BATCH_COMPLETE = 6
    #: Generic user callback (examples / tests).
    CALLBACK = 7
    #: End-of-simulation sentinel.
    STOP = 8
    #: Chaos fault activation/deactivation (:mod:`repro.chaos`).  Lowest
    #: priority on purpose: a fault striking at time t observes the state
    #: *after* every ordinary event of that instant has been processed.
    FAULT_INJECTION = 9


_SEQUENCE = itertools.count()


@dataclass(order=False, slots=True)
class Event:
    """A scheduled occurrence in simulated time.

    Events compare by ``(time, priority, seq)``.  ``seq`` is a process-global
    monotone counter, so insertion order breaks the remaining ties, which
    keeps the event loop fully deterministic.

    ``transient`` marks an event as pool-recyclable: the engine returns it to
    its :class:`EventPool` right after dispatch, so holding a reference to a
    transient event past its callback is a bug.  Only schedule sites that
    drop the returned handle may opt in.
    """

    time: float
    kind: EventKind
    callback: Callable[["Event"], None]
    payload: Any = None
    priority: int = field(default=-1)
    seq: int = field(default_factory=lambda: next(_SEQUENCE))
    cancelled: bool = field(default=False, compare=False)
    transient: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        if self.priority < 0:
            self.priority = int(self.kind)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine skips it when popped.

        Prefer :meth:`~repro.sim.engine.Engine.cancel` when an engine handle
        is around — it additionally feeds the heap-compaction accounting.
        """
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.3f}, kind={self.kind.name}, "
            f"seq={self.seq}{', CANCELLED' if self.cancelled else ''})"
        )


def _released_callback(event: "Event") -> None:  # pragma: no cover - defensive
    raise RuntimeError(
        "dispatch of a pool-released Event: a transient event handle was "
        "retained past its callback (schedule with transient=False instead)"
    )


class EventPool:
    """Free list of recyclable :class:`Event` objects.

    ``acquire`` hands out a fresh-or-recycled event with a *new* sequence
    number (the total order never sees reuse), ``release`` returns one to the
    pool and severs its callback/payload references so recycled events cannot
    keep dead object graphs alive.  The pool is bounded: beyond ``maxsize``
    released events are simply dropped for the GC.
    """

    __slots__ = ("_free", "maxsize", "created", "reused")

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self._free: List[Event] = []
        self.maxsize = maxsize
        #: Events constructed because the free list was empty.
        self.created = 0
        #: Events handed out from the free list instead of being constructed.
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(
        self,
        time: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
    ) -> Event:
        """A transient event ready to schedule (recycled when possible)."""
        free = self._free
        if free:
            event = free.pop()
            self.reused += 1
            event.time = time
            event.kind = kind
            event.callback = callback
            event.payload = payload
            event.priority = int(kind) if priority < 0 else priority
            event.seq = next(_SEQUENCE)
            event.cancelled = False
            return event
        self.created += 1
        return Event(
            time=time,
            kind=kind,
            callback=callback,
            payload=payload,
            priority=priority,
            transient=True,
        )

    def release(self, event: Event) -> None:
        """Return a dispatched (or dead) transient event to the free list."""
        event.callback = _released_callback
        event.payload = None
        event.cancelled = True
        if len(self._free) < self.maxsize:
            self._free.append(event)


#: Sentinel for "repr not computed yet" — distinct from None, which is the
#: legitimate repr of a ``None`` payload.
_UNSET = object()


class EventRecord:
    """Immutable-ish trace record of a dispatched event (for tracing/tests).

    ``payload_repr`` is computed lazily on first access: traced runs with a
    ``max_records`` ring buffer used to pay ``repr(payload)[:80]`` for every
    dispatched event even when the record was immediately evicted.  The raw
    payload reference is dropped as soon as the repr is materialised (or via
    :meth:`detach_payload`), so records never pin simulation objects.
    """

    __slots__ = ("time", "kind", "seq", "_payload", "_payload_repr")

    def __init__(
        self,
        time: float,
        kind: EventKind,
        seq: int,
        payload_repr: Optional[str] = None,
        *,
        payload: Any = None,
    ) -> None:
        self.time = time
        self.kind = kind
        self.seq = seq
        if payload_repr is not None:
            self._payload: Any = None
            self._payload_repr: Any = payload_repr
        else:
            self._payload = payload
            self._payload_repr = None if payload is None else _UNSET

    @property
    def payload_repr(self) -> Optional[str]:
        """``repr(payload)[:80]`` — materialised on first read, then cached."""
        value = self._payload_repr
        if value is _UNSET:
            value = repr(self._payload)[:80]
            self._payload_repr = value
            self._payload = None
        return value  # type: ignore[no-any-return]

    def detach_payload(self) -> None:
        """Freeze the record: materialise the repr and drop the payload ref."""
        _ = self.payload_repr

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.seq == other.seq
            and self.payload_repr == other.payload_repr
        )

    def __hash__(self) -> int:
        return hash((self.time, self.kind, self.seq, self.payload_repr))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventRecord(time={self.time!r}, kind={self.kind!r}, "
            f"seq={self.seq!r}, payload_repr={self.payload_repr!r})"
        )
