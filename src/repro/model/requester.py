"""Requester-side helpers.

Requesters in REACT submit tasks (with location, deadline, reward and
description) and later grade the results.  :class:`Requester` is a small
convenience wrapper used by the examples; the experiment harnesses generate
tasks directly through :mod:`repro.workload.generators`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from .task import Task, TaskCategory

_REQUESTER_IDS = itertools.count()


@dataclass
class Requester:
    """A task submitter with a default reward and deadline policy."""

    name: str = ""
    default_reward: float = 0.05
    default_deadline: float = 90.0
    requester_id: int = field(default_factory=lambda: next(_REQUESTER_IDS))
    submitted: List[Task] = field(default_factory=list)

    def submit(
        self,
        latitude: float,
        longitude: float,
        description: str,
        *,
        deadline: Optional[float] = None,
        reward: Optional[float] = None,
        category: TaskCategory = TaskCategory.GENERIC,
        now: float = 0.0,
    ) -> Task:
        """Create (and remember) a task with this requester's defaults."""
        task = Task(
            latitude=latitude,
            longitude=longitude,
            deadline=self.default_deadline if deadline is None else deadline,
            reward=self.default_reward if reward is None else reward,
            category=category,
            description=description,
            submitted_at=now,
        )
        self.submitted.append(task)
        return task

    @property
    def completed(self) -> List[Task]:
        return [t for t in self.submitted if t.completed_at is not None]

    @property
    def on_time(self) -> List[Task]:
        return [t for t in self.submitted if t.met_deadline]
