"""Worker model.

Two views of a worker are deliberately kept separate, mirroring the paper:

* :class:`WorkerBehavior` — the *latent* ground truth the simulator uses to
  generate outcomes: a per-worker execution-time range inside [1, 20] s, a
  50% probability of dawdling (stretching the execution up to 130 s), and a
  latent answer quality ``q`` (the CrowdFlower "trust"; 70% of workers have
  q > 0.5).  The platform never reads these fields.
* :class:`WorkerProfile` — what the Profiling Component *observes*:
  completion times, positive/negative feedback per category, availability.
  Everything REACT decides (Eq. 1 weights, Eq. 2/3 probabilities) derives
  from this view only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from .task import TaskCategory


@dataclass(frozen=True)
class ExecutionDraw:
    """One sampled worker execution: how long, and whether he walked away.

    ``duration`` is when the worker stops being occupied by the task; for an
    abandoned execution no result is ever returned to the platform — the
    worker silently walks away at ``duration`` ("he/she might even abandon
    the task completely without informing the crowdsourcing system", §IV-B).
    """

    duration: float
    abandoned: bool = False


@dataclass(frozen=True)
class WorkerBehavior:
    """Latent ground-truth behaviour of a worker (simulator-only).

    Parameters follow §V-C of the paper: each worker has a unique
    ``(min_time, max_time)`` execution window constrained to [1, 20] s; with
    probability ``delay_probability`` (0.5 in the paper) the worker *delays
    or abandons* the task — a delay stretches the draw up to ``delay_cap``
    (130 s), while an abandonment (fraction ``abandon_probability`` of the
    delay events) returns no result at all.  ``quality`` is the latent
    probability that an on-time answer earns positive feedback.
    """

    min_time: float
    max_time: float
    quality: float
    delay_probability: float = 0.5
    delay_cap: float = 130.0
    #: Given a delay event, probability the worker abandons outright.
    abandon_probability: float = 0.5
    #: Lower edge of the slow-finish draw; ``None`` means ``max_time``.
    #: The paper only bounds delays by "up to 130 seconds"; the end-to-end
    #: configs raise this floor so that delayed executions rarely beat the
    #: 60-120 s deadlines, which is what its traditional-baseline numbers
    #: imply (see DESIGN.md / EXPERIMENTS.md calibration notes).
    delay_floor: Optional[float] = None
    #: Heterogeneous-task extension (Assadi et al.): per-category latent
    #: quality overriding ``quality`` for the listed categories.  ``None``
    #: (the default) keeps the paper's single-skill worker; categories not
    #: in the mapping fall back to ``quality``.
    quality_by_category: Optional[Mapping[TaskCategory, float]] = None

    def __post_init__(self) -> None:
        if not (0 < self.min_time <= self.max_time):
            raise ValueError(
                f"need 0 < min_time <= max_time, got ({self.min_time}, {self.max_time})"
            )
        if not (0.0 <= self.quality <= 1.0):
            raise ValueError(f"quality must be in [0,1], got {self.quality}")
        if not (0.0 <= self.delay_probability <= 1.0):
            raise ValueError(
                f"delay_probability must be in [0,1], got {self.delay_probability}"
            )
        if not (0.0 <= self.abandon_probability <= 1.0):
            raise ValueError(
                f"abandon_probability must be in [0,1], got {self.abandon_probability}"
            )
        if self.delay_cap < self.max_time:
            raise ValueError(
                f"delay_cap ({self.delay_cap}) must be >= max_time ({self.max_time})"
            )
        if self.delay_floor is not None and not (
            self.max_time <= self.delay_floor <= self.delay_cap
        ):
            raise ValueError(
                f"delay_floor ({self.delay_floor}) must lie in "
                f"[max_time={self.max_time}, delay_cap={self.delay_cap}]"
            )
        if self.quality_by_category is not None:
            for category, q in self.quality_by_category.items():
                if not (0.0 <= q <= 1.0):
                    raise ValueError(
                        f"quality for {category} must be in [0,1], got {q}"
                    )

    def sample_outcome(self, rng: np.random.Generator) -> ExecutionDraw:
        """Draw one execution outcome.

        Nominal path (probability ``1 − delay_probability``):
        Uniform(min_time, max_time), result returned.  Delay path: either a
        slow finish Uniform(max_time, delay_cap), or an abandonment — the
        worker stays occupied until ``delay_cap`` and returns nothing.
        """
        if rng.random() < self.delay_probability:
            if rng.random() < self.abandon_probability:
                return ExecutionDraw(duration=self.delay_cap, abandoned=True)
            floor = self.max_time if self.delay_floor is None else self.delay_floor
            return ExecutionDraw(duration=float(rng.uniform(floor, self.delay_cap)))
        return ExecutionDraw(duration=float(rng.uniform(self.min_time, self.max_time)))

    def sample_execution_time(self, rng: np.random.Generator) -> float:
        """Duration-only view of :meth:`sample_outcome` (analysis helper)."""
        return self.sample_outcome(rng).duration

    def quality_for(self, category: Optional[TaskCategory]) -> float:
        """Latent quality on ``category`` tasks (heterogeneous extension).

        Falls back to the scalar ``quality`` when no category is given or
        the worker has no per-category skill entry for it, so homogeneous
        populations behave exactly as before.
        """
        if category is not None and self.quality_by_category is not None:
            return self.quality_by_category.get(category, self.quality)
        return self.quality

    def sample_feedback(
        self,
        rng: np.random.Generator,
        on_time: bool,
        category: Optional[TaskCategory] = None,
    ) -> bool:
        """Requester feedback: positive iff on time and Bernoulli(quality).

        ``category`` selects the per-type skill when the worker has one;
        the draw count is identical either way, so seeded runs without
        per-category skills are unperturbed.
        """
        if not on_time:
            return False
        return bool(rng.random() < self.quality_for(category))


@dataclass
class CategoryStats:
    """Per-category feedback tallies used by the Eq. 1 weight."""

    positive: int = 0
    finished: int = 0

    def record(self, positive: bool) -> None:
        self.finished += 1
        if positive:
            self.positive += 1

    @property
    def accuracy(self) -> float:
        """``Σ PositiveTask / Σ FinishedTask`` — zero before any history."""
        if self.finished == 0:
            return 0.0
        return self.positive / self.finished


@dataclass
class WorkerProfile:
    """Platform-observable worker state (the Profiling Component's record).

    Holds the worker's id, location, availability, completed-task execution
    times (``ExecTime_ih`` history feeding the power-law estimator) and
    per-category feedback statistics (feeding the Eq. 1 weight).
    """

    worker_id: int
    latitude: float = 0.0
    longitude: float = 0.0
    available: bool = True
    online: bool = True
    current_task: Optional[int] = None
    #: observed task durations: completions plus *censored* observations
    #: (when a task is withdrawn after ``t`` seconds, the platform has
    #: observed that this worker holds tasks at least ``t`` seconds — the
    #: only signal it will ever get about a chronic dawdler).
    execution_times: List[float] = field(default_factory=list)
    category_stats: Dict[TaskCategory, CategoryStats] = field(default_factory=dict)
    #: total tasks ever handed to this worker (drives the cold-start rule:
    #: "for the first z *assignments* of a new worker ...", §IV-A).
    assignment_count: int = 0
    #: how many of ``execution_times`` are censored withdrawal observations
    censored_observations: int = 0
    #: Eq. 1 accuracy per category, pushed on every feedback record so the
    #: per-batch weight matrix reads one float per worker instead of walking
    #: the tally objects (graph-construction hot path).  ``category_stats``
    #: stays the source of truth; this mirror is rebuilt from it on
    #: construction and updated in lock-step by :meth:`record_completion`.
    accuracy_by_category: Dict[TaskCategory, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for category, stats in self.category_stats.items():
            self.accuracy_by_category[category] = stats.accuracy

    # ------------------------------------------------------------ history
    @property
    def completed_tasks(self) -> int:
        """Number of duration observations (completed + censored)."""
        return len(self.execution_times)

    def record_completion(
        self, execution_time: float, category: TaskCategory, positive_feedback: bool
    ) -> None:
        """Record a finished task: duration + requester feedback."""
        if execution_time <= 0:
            raise ValueError(f"execution_time must be positive, got {execution_time}")
        self.execution_times.append(float(execution_time))
        stats = self.category_stats.setdefault(category, CategoryStats())
        stats.record(positive_feedback)
        self.accuracy_by_category[category] = stats.positive / stats.finished

    def record_censored(self, elapsed: float) -> None:
        """Record a withdrawal as a censored duration observation.

        The worker held the task ``elapsed`` seconds without delivering; the
        true duration is at least that.  Folding the lower bound into the
        history is what lets the Eq. 3 pruning eventually stop feeding tasks
        to workers who never complete anything.
        """
        if elapsed <= 0:
            return
        self.execution_times.append(float(elapsed))
        self.censored_observations += 1

    def accuracy(self, category: TaskCategory) -> float:
        """Observed accuracy for ``category`` (Eq. 1 numerator/denominator)."""
        return self.accuracy_by_category.get(category, 0.0)

    def overall_accuracy(self) -> float:
        """Accuracy pooled over all categories."""
        positive = sum(s.positive for s in self.category_stats.values())
        finished = sum(s.finished for s in self.category_stats.values())
        return positive / finished if finished else 0.0

    # ------------------------------------------------------- availability
    def assign(self, task_id: int) -> None:
        if not self.available or not self.online:
            raise ValueError(f"worker {self.worker_id} is not available")
        self.available = False
        self.current_task = task_id
        self.assignment_count += 1

    def release(self) -> None:
        """Worker becomes available again (after completion/dawdle ends)."""
        self.available = True
        self.current_task = None

    def detach_task(self) -> None:
        """Task pulled back by the Dynamic Assignment Component.

        The worker stays *unavailable* until his sampled finish time: the
        human is presumed still dawdling on the withdrawn task (DESIGN.md
        "worker availability after reassignment").
        """
        self.current_task = None
