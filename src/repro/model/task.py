"""Task model.

Section III-B of the paper associates each task with
``<id, latitude, longitude, deadline, reward, description>`` plus a
category (used by the Eq. 1 weight function).  The deadline is *soft
real-time*: missing it is not catastrophic, but the system maximises the
number of deadlines met.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class TaskCategory(enum.Enum):
    """Task categories from the paper's motivating applications (§I, §II).

    ``__hash__`` is pinned to the identity hash: enum members are singletons
    (equality already *is* identity), and the default ``Enum.__hash__`` is a
    Python-level call that shows up in the per-batch weight loops, where
    these members key the per-worker accuracy dicts.  Identity hashing keeps
    dict/equality semantics unchanged and moves the lookup onto the C path.
    """

    __hash__ = object.__hash__

    TRAFFIC_MONITORING = "traffic-monitoring"
    LOCATION_SURVEY = "location-survey"
    POI_SUGGESTION = "poi-suggestion"
    PRICE_CHECK = "price-check"
    ENTERTAINMENT = "entertainment"
    IMAGE_LABELING = "image-labeling"
    GENERIC = "generic"


class TaskPhase(enum.Enum):
    """Lifecycle of a task inside the Task Management Component."""

    UNASSIGNED = "unassigned"
    ASSIGNED = "assigned"
    COMPLETED = "completed"
    EXPIRED = "expired"


_TASK_IDS = itertools.count()


def _next_task_id() -> int:
    return next(_TASK_IDS)


@dataclass
class Task:
    """A crowdsourcing task as submitted by a requester.

    Attributes
    ----------
    deadline:
        Relative interval (seconds) within which the task should complete,
        counted from :attr:`submitted_at` (paper: ``deadline_j``; the
        experiments draw it uniformly from [60, 120] s).
    reward:
        Monetary reward; used by the reward-range pruning extension
        (§III-C "Task Rewards") and charged against the submitting
        requester's budget in the budget-constrained scenarios.
    requester_id:
        Owner of the task for per-requester budget accounting
        (:mod:`repro.scenarios.budget`); None means unbudgeted — the
        paper's original experiments, where requesters are anonymous.
    """

    latitude: float
    longitude: float
    deadline: float
    reward: float = 0.05
    category: TaskCategory = TaskCategory.GENERIC
    description: str = ""
    task_id: int = field(default_factory=_next_task_id)
    submitted_at: float = 0.0
    requester_id: Optional[int] = None

    # Mutable platform-side state --------------------------------------
    phase: TaskPhase = TaskPhase.UNASSIGNED
    assigned_worker: Optional[int] = None
    assigned_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: number of times the task was handed to a worker (>=2 means reassigned)
    assignments: int = 0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if not (-90.0 <= self.latitude <= 90.0):
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not (-180.0 <= self.longitude <= 180.0):
            raise ValueError(f"longitude out of range: {self.longitude}")
        if self.reward < 0:
            raise ValueError(f"reward must be non-negative, got {self.reward}")

    # ------------------------------------------------------------ timing
    @property
    def absolute_deadline(self) -> float:
        """Wall (simulated) time at which the task expires."""
        return self.submitted_at + self.deadline

    def remaining_time(self, now: float) -> float:
        """Paper's ``remaining_time``: seconds until expiry (may be < 0)."""
        return self.absolute_deadline - now

    def time_to_deadline(self, now: float) -> float:
        """``TimeToDeadline_ij``: interval from assignment-time ``now`` to expiry."""
        return self.absolute_deadline - now

    def elapsed_since_assignment(self, now: float) -> float:
        """``t_ij``: time since the current assignment started."""
        if self.assigned_at is None:
            raise ValueError(f"task {self.task_id} is not assigned")
        return now - self.assigned_at

    def is_expired(self, now: float) -> bool:
        """Whether the task's deadline has passed at sim time ``now``.

        Boundary convention (pinned by tests): a task whose deadline equals
        the current sim time is *expired*.  This matches Eq. 2/3, which
        close the assignment window at ``time_to_deadline <= elapsed`` and
        return zero completion probability at ``TTD <= 0`` — so the Eq. 2
        sweep and ``retire_expired`` classify the boundary identically.
        (Completion exactly *at* the deadline still counts as on time; see
        :meth:`met_deadline`.)
        """
        return now >= self.absolute_deadline

    # ---------------------------------------------------------- lifecycle
    def mark_assigned(self, worker_id: int, now: float) -> None:
        if self.phase in (TaskPhase.COMPLETED, TaskPhase.EXPIRED):
            raise ValueError(f"cannot assign finished task {self.task_id}")
        self.phase = TaskPhase.ASSIGNED
        self.assigned_worker = worker_id
        self.assigned_at = now
        self.assignments += 1

    def mark_unassigned(self) -> None:
        """Return the task to the unassigned pool (reassignment path)."""
        if self.phase is not TaskPhase.ASSIGNED:
            raise ValueError(f"task {self.task_id} is not assigned")
        self.phase = TaskPhase.UNASSIGNED
        self.assigned_worker = None
        self.assigned_at = None

    def mark_completed(self, now: float) -> None:
        if self.phase is not TaskPhase.ASSIGNED:
            raise ValueError(f"task {self.task_id} is not assigned")
        self.phase = TaskPhase.COMPLETED
        self.completed_at = now

    def mark_expired(self) -> None:
        self.phase = TaskPhase.EXPIRED

    # ------------------------------------------------------------ results
    @property
    def met_deadline(self) -> bool:
        """True iff the task completed no later than its deadline."""
        return (
            self.phase is TaskPhase.COMPLETED
            and self.completed_at is not None
            and self.completed_at <= self.absolute_deadline
        )

    @property
    def total_time(self) -> Optional[float]:
        """End-to-end time from submission to completion (Fig. 8 metric)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def worker_time(self) -> Optional[float]:
        """Execution time at the final worker only (Fig. 7 metric)."""
        if self.completed_at is None or self.assigned_at is None:
            return None
        return self.completed_at - self.assigned_at


def reset_task_ids() -> None:
    """Reset the global id counter (test isolation helper)."""
    global _TASK_IDS
    _TASK_IDS = itertools.count()
