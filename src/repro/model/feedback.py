"""Requester feedback model.

Figure 6 of the paper defines the rule: "The feedback is decided when a task
is finished and it is positive only if the task finished before the deadline,
with a probability that is defined from the worker's unique feedback
percentage."  :class:`FeedbackModel` encapsulates that rule plus the 1-5
rating scale mentioned in §II for completeness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .task import TaskCategory
from .worker import WorkerBehavior


class Rating(enum.IntEnum):
    """The paper's §II grading scale (Bad=1 .. Excellent=5)."""

    BAD = 1
    POOR = 2
    FAIR = 3
    GOOD = 4
    EXCELLENT = 5

    @property
    def is_positive(self) -> bool:
        """Ratings of Good or better count as positive feedback."""
        return self >= Rating.GOOD


@dataclass(frozen=True)
class FeedbackOutcome:
    """Result of one requester feedback decision."""

    positive: bool
    rating: Rating
    on_time: bool


class FeedbackModel:
    """Draws requester feedback for completed tasks.

    A late task is always rated negatively (BAD).  An on-time task earns a
    positive rating with probability equal to the worker's latent quality;
    the positive/negative ratings are spread over the 5-point scale so that
    downstream consumers can exercise the full §II rating range.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def judge(
        self,
        behavior: WorkerBehavior,
        on_time: bool,
        category: Optional[TaskCategory] = None,
    ) -> FeedbackOutcome:
        """Draw one feedback decision.

        ``category`` routes the Bernoulli through the worker's per-type
        skill (heterogeneous-task extension); omitted, the scalar quality
        applies — the paper's original rule.
        """
        positive = behavior.sample_feedback(self._rng, on_time, category=category)
        rating = self._draw_rating(positive, on_time)
        return FeedbackOutcome(positive=positive, rating=rating, on_time=on_time)

    def _draw_rating(self, positive: bool, on_time: bool) -> Rating:
        if not on_time:
            return Rating.BAD
        if positive:
            return Rating.EXCELLENT if self._rng.random() < 0.5 else Rating.GOOD
        return Rating(int(self._rng.integers(Rating.BAD, Rating.FAIR + 1)))


def positive_rate(outcomes: list[FeedbackOutcome]) -> Optional[float]:
    """Fraction of positive feedbacks, or None for an empty list."""
    if not outcomes:
        return None
    return sum(o.positive for o in outcomes) / len(outcomes)
