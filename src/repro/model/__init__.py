"""Domain model: tasks, workers, feedback, regions, requesters."""

from .feedback import FeedbackModel, FeedbackOutcome, Rating, positive_rate
from .region import Region, RegionGrid, RegionTier, build_tiers, haversine_km
from .requester import Requester
from .task import Task, TaskCategory, TaskPhase, reset_task_ids
from .worker import CategoryStats, WorkerBehavior, WorkerProfile

__all__ = [
    "FeedbackModel",
    "FeedbackOutcome",
    "Rating",
    "positive_rate",
    "Region",
    "RegionGrid",
    "RegionTier",
    "build_tiers",
    "haversine_km",
    "Requester",
    "Task",
    "TaskCategory",
    "TaskPhase",
    "reset_task_ids",
    "CategoryStats",
    "WorkerBehavior",
    "WorkerProfile",
]
