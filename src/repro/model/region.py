"""Spatial decomposition of the service area into regions.

Section III-A: the geographic area is split into non-overlapping regions
(cf. the homogeneous-region decomposition of Subramaniam et al., RTSS 2006),
each handled by one REACT server.  Regions can be organised into *tiers* —
small local areas at the lowest tier up to the whole network at the highest —
and the paper recommends 500-1000 workers per region.  This module provides:

* :class:`Region` — an axis-aligned lat/lon rectangle,
* :class:`RegionGrid` — a uniform grid decomposition with point→region lookup,
* :class:`RegionTier` / :func:`build_tiers` — coarser tiers built by merging
  grid cells, and
* :meth:`RegionGrid.split` — the overload remedy from §V-D ("split the
  regions so that each of the servers would contain sufficient workers").
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

_REGION_IDS = itertools.count()


@dataclass(frozen=True)
class Region:
    """A non-overlapping axis-aligned geographic rectangle.

    Boundaries are half-open ``[min, max)`` except the global top edge, so a
    grid of regions tiles the plane with no point belonging to two regions.
    """

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    region_id: int = field(default_factory=lambda: next(_REGION_IDS))
    tier: int = 0

    def __post_init__(self) -> None:
        if self.lat_min >= self.lat_max or self.lon_min >= self.lon_max:
            raise ValueError(f"degenerate region bounds: {self}")

    def contains(self, latitude: float, longitude: float) -> bool:
        return (
            self.lat_min <= latitude < self.lat_max
            and self.lon_min <= longitude < self.lon_max
        )

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.lat_min + self.lat_max) / 2, (self.lon_min + self.lon_max) / 2)

    @property
    def area(self) -> float:
        return (self.lat_max - self.lat_min) * (self.lon_max - self.lon_min)

    def split(self) -> Tuple["Region", "Region"]:
        """Split along the longer axis into two equal halves (§V-D remedy)."""
        if (self.lat_max - self.lat_min) >= (self.lon_max - self.lon_min):
            mid = (self.lat_min + self.lat_max) / 2
            return (
                Region(self.lat_min, mid, self.lon_min, self.lon_max, tier=self.tier),
                Region(mid, self.lat_max, self.lon_min, self.lon_max, tier=self.tier),
            )
        mid = (self.lon_min + self.lon_max) / 2
        return (
            Region(self.lat_min, self.lat_max, self.lon_min, mid, tier=self.tier),
            Region(self.lat_min, self.lat_max, mid, self.lon_max, tier=self.tier),
        )


class RegionGrid:
    """Uniform rows × cols decomposition of a bounding box into regions."""

    def __init__(
        self,
        lat_min: float,
        lat_max: float,
        lon_min: float,
        lon_max: float,
        rows: int = 1,
        cols: int = 1,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"rows/cols must be >= 1, got {rows}x{cols}")
        if lat_min >= lat_max or lon_min >= lon_max:
            raise ValueError("degenerate bounding box")
        self.lat_min, self.lat_max = lat_min, lat_max
        self.lon_min, self.lon_max = lon_min, lon_max
        self.rows, self.cols = rows, cols
        dlat = (lat_max - lat_min) / rows
        dlon = (lon_max - lon_min) / cols
        self._regions: List[Region] = [
            Region(
                lat_min + r * dlat,
                lat_min + (r + 1) * dlat,
                lon_min + c * dlon,
                lon_min + (c + 1) * dlon,
            )
            for r in range(rows)
            for c in range(cols)
        ]

    @property
    def regions(self) -> Sequence[Region]:
        return tuple(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def locate(self, latitude: float, longitude: float) -> Region:
        """Region owning a point; edge points clamp into the grid."""
        if not (
            self.lat_min <= latitude <= self.lat_max
            and self.lon_min <= longitude <= self.lon_max
        ):
            raise ValueError(
                f"point ({latitude}, {longitude}) is outside the grid bounding box"
            )
        r = min(
            self.rows - 1,
            int((latitude - self.lat_min) / (self.lat_max - self.lat_min) * self.rows),
        )
        c = min(
            self.cols - 1,
            int((longitude - self.lon_min) / (self.lon_max - self.lon_min) * self.cols),
        )
        return self._regions[r * self.cols + c]

    def split_region(self, region_id: int) -> Tuple[Region, Region]:
        """Replace one region by its two halves; returns the halves."""
        for i, region in enumerate(self._regions):
            if region.region_id == region_id:
                a, b = region.split()
                self._regions[i : i + 1] = [a, b]
                return a, b
        raise KeyError(f"no region with id {region_id}")


@dataclass(frozen=True)
class RegionTier:
    """One granularity level of the hierarchical decomposition (§III-A)."""

    level: int
    regions: Tuple[Region, ...]


def build_tiers(
    lat_min: float,
    lat_max: float,
    lon_min: float,
    lon_max: float,
    levels: int,
) -> List[RegionTier]:
    """Tiered grids: level 0 = whole area, level k = 2^k × 2^k cells."""
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    tiers: List[RegionTier] = []
    for level in range(levels):
        n = 2**level
        grid = RegionGrid(lat_min, lat_max, lon_min, lon_max, rows=n, cols=n)
        regions = tuple(
            Region(g.lat_min, g.lat_max, g.lon_min, g.lon_max, tier=level)
            for g in grid
        )
        tiers.append(RegionTier(level=level, regions=regions))
    return tiers


def haversine_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in km (distance-based weight function input)."""
    rad = math.pi / 180.0
    phi1, phi2 = lat1 * rad, lat2 * rad
    dphi = (lat2 - lat1) * rad
    dlambda = (lon2 - lon1) * rad
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * 6371.0 * math.asin(math.sqrt(a))
