"""Spatial decomposition of the service area into regions.

Section III-A: the geographic area is split into non-overlapping regions
(cf. the homogeneous-region decomposition of Subramaniam et al., RTSS 2006),
each handled by one REACT server.  Regions can be organised into *tiers* —
small local areas at the lowest tier up to the whole network at the highest —
and the paper recommends 500-1000 workers per region.  This module provides:

* :class:`Region` — an axis-aligned lat/lon rectangle,
* :class:`RegionGrid` — a uniform grid decomposition with point→region lookup,
* :class:`RegionTier` / :func:`build_tiers` — coarser tiers built by merging
  grid cells, and
* :meth:`RegionGrid.split` — the overload remedy from §V-D ("split the
  regions so that each of the servers would contain sufficient workers").
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

_REGION_IDS = itertools.count()


@dataclass(frozen=True)
class Region:
    """A non-overlapping axis-aligned geographic rectangle.

    Boundaries are half-open ``[min, max)`` except *closed* max edges, so a
    grid of regions tiles the plane with no point belonging to two regions
    while points exactly on the global top/right edge still route somewhere.
    A standalone region defaults to closed max edges (it covers its whole
    bounding box, matching :meth:`RegionGrid.locate`'s clamping); inside a
    grid only the last row/column keeps them closed, and :meth:`split` hands
    the midline to exactly one half.
    """

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float
    region_id: int = field(default_factory=lambda: next(_REGION_IDS))
    tier: int = 0
    #: Whether points exactly on ``lat_max`` / ``lon_max`` belong to this
    #: region.  True by default (global top/right edge semantics); grids and
    #: splits clear the flag on interior edges so no point is double-owned.
    closed_lat_max: bool = True
    closed_lon_max: bool = True

    def __post_init__(self) -> None:
        if self.lat_min >= self.lat_max or self.lon_min >= self.lon_max:
            raise ValueError(f"degenerate region bounds: {self}")

    def contains(self, latitude: float, longitude: float) -> bool:
        lat_ok = self.lat_min <= latitude < self.lat_max or (
            self.closed_lat_max and latitude == self.lat_max
        )
        lon_ok = self.lon_min <= longitude < self.lon_max or (
            self.closed_lon_max and longitude == self.lon_max
        )
        return lat_ok and lon_ok

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.lat_min + self.lat_max) / 2, (self.lon_min + self.lon_max) / 2)

    @property
    def area(self) -> float:
        return (self.lat_max - self.lat_min) * (self.lon_max - self.lon_min)

    @property
    def splittable(self) -> bool:
        """Whether :meth:`split` can produce two non-degenerate halves.

        False once the split axis is so thin that its floating-point
        midpoint collapses onto an endpoint — the stopping condition for
        the coordinator's bounded re-split cascade.
        """
        if (self.lat_max - self.lat_min) >= (self.lon_max - self.lon_min):
            mid = (self.lat_min + self.lat_max) / 2
            return self.lat_min < mid < self.lat_max
        mid = (self.lon_min + self.lon_max) / 2
        return self.lon_min < mid < self.lon_max

    def split(self) -> Tuple["Region", "Region"]:
        """Split along the longer axis into two equal halves (§V-D remedy).

        The midline belongs to the upper/right half only (the lower half's
        new max edge is open); the parent's outer closed-edge flags carry
        over, so every parent point lands in exactly one child.
        """
        if (self.lat_max - self.lat_min) >= (self.lon_max - self.lon_min):
            mid = (self.lat_min + self.lat_max) / 2
            return (
                Region(
                    self.lat_min, mid, self.lon_min, self.lon_max,
                    tier=self.tier,
                    closed_lat_max=False,
                    closed_lon_max=self.closed_lon_max,
                ),
                Region(
                    mid, self.lat_max, self.lon_min, self.lon_max,
                    tier=self.tier,
                    closed_lat_max=self.closed_lat_max,
                    closed_lon_max=self.closed_lon_max,
                ),
            )
        mid = (self.lon_min + self.lon_max) / 2
        return (
            Region(
                self.lat_min, self.lat_max, self.lon_min, mid,
                tier=self.tier,
                closed_lat_max=self.closed_lat_max,
                closed_lon_max=False,
            ),
            Region(
                self.lat_min, self.lat_max, mid, self.lon_max,
                tier=self.tier,
                closed_lat_max=self.closed_lat_max,
                closed_lon_max=self.closed_lon_max,
            ),
        )


class RegionGrid:
    """Uniform rows × cols decomposition of a bounding box into regions."""

    def __init__(
        self,
        lat_min: float,
        lat_max: float,
        lon_min: float,
        lon_max: float,
        rows: int = 1,
        cols: int = 1,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"rows/cols must be >= 1, got {rows}x{cols}")
        if lat_min >= lat_max or lon_min >= lon_max:
            raise ValueError("degenerate bounding box")
        self.lat_min, self.lat_max = lat_min, lat_max
        self.lon_min, self.lon_max = lon_min, lon_max
        self.rows, self.cols = rows, cols
        dlat = (lat_max - lat_min) / rows
        dlon = (lon_max - lon_min) / cols
        # Only the grid's outermost top/right cells keep their max edges
        # closed: interior cell boundaries stay half-open so the cells tile
        # the bounding box with no point belonging to two regions, while a
        # point exactly on the global top/right edge is still owned (by the
        # same cell ``locate``'s clamping picks).
        self._regions: List[Region] = [
            Region(
                lat_min + r * dlat,
                lat_min + (r + 1) * dlat,
                lon_min + c * dlon,
                lon_min + (c + 1) * dlon,
                closed_lat_max=(r == rows - 1),
                closed_lon_max=(c == cols - 1),
            )
            for r in range(rows)
            for c in range(cols)
        ]

    @property
    def regions(self) -> Sequence[Region]:
        return tuple(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def locate(self, latitude: float, longitude: float) -> Region:
        """Region owning a point; edge points clamp into the grid."""
        if not (
            self.lat_min <= latitude <= self.lat_max
            and self.lon_min <= longitude <= self.lon_max
        ):
            raise ValueError(
                f"point ({latitude}, {longitude}) is outside the grid bounding box"
            )
        r = min(
            self.rows - 1,
            int((latitude - self.lat_min) / (self.lat_max - self.lat_min) * self.rows),
        )
        c = min(
            self.cols - 1,
            int((longitude - self.lon_min) / (self.lon_max - self.lon_min) * self.cols),
        )
        return self._regions[r * self.cols + c]

    def split_region(self, region_id: int) -> Tuple[Region, Region]:
        """Replace one region by its two halves; returns the halves."""
        for i, region in enumerate(self._regions):
            if region.region_id == region_id:
                a, b = region.split()
                self._regions[i : i + 1] = [a, b]
                return a, b
        raise KeyError(f"no region with id {region_id}")


@dataclass(frozen=True)
class RegionTier:
    """One granularity level of the hierarchical decomposition (§III-A)."""

    level: int
    regions: Tuple[Region, ...]


def build_tiers(
    lat_min: float,
    lat_max: float,
    lon_min: float,
    lon_max: float,
    levels: int,
) -> List[RegionTier]:
    """Tiered grids: level 0 = whole area, level k = 2^k × 2^k cells."""
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    tiers: List[RegionTier] = []
    for level in range(levels):
        n = 2**level
        grid = RegionGrid(lat_min, lat_max, lon_min, lon_max, rows=n, cols=n)
        regions = tuple(
            Region(
                g.lat_min, g.lat_max, g.lon_min, g.lon_max,
                tier=level,
                closed_lat_max=g.closed_lat_max,
                closed_lon_max=g.closed_lon_max,
            )
            for g in grid
        )
        tiers.append(RegionTier(level=level, regions=regions))
    return tiers


def haversine_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in km (distance-based weight function input)."""
    rad = math.pi / 180.0
    phi1, phi2 = lat1 * rad, lat2 * rad
    dphi = (lat2 - lat1) * rad
    dlambda = (lon2 - lon1) * rad
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * 6371.0 * math.asin(math.sqrt(a))


def haversine_km_matrix(
    lat1: np.ndarray,
    lon1: np.ndarray,
    lat2: np.ndarray,
    lon2: np.ndarray,
) -> np.ndarray:
    """Broadcast haversine: pairwise great-circle distances in km.

    Bit-equivalent to :func:`haversine_km` evaluated elementwise at the
    distances the spatial weights see — the operation order matches term
    for term and every intermediate stays a float64, so the vectorized
    weight functions can replace the scalar double loop without perturbing
    any seeded experiment.  (At antipodal ranges libm and numpy
    transcendentals may differ by an ulp, thousands of km past every
    weight cutoff.)  Inputs
    broadcast like any numpy ufunc; the distance-weight hot path passes
    ``lat1[:, None]`` against ``lat2[None, :]`` to get the full
    workers × tasks matrix in one call.
    """
    rad = math.pi / 180.0
    phi1, phi2 = lat1 * rad, lat2 * rad
    dphi = (lat2 - lat1) * rad
    dlambda = (lon2 - lon1) * rad
    a = np.sin(dphi / 2) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlambda / 2) ** 2
    return np.asarray(2 * 6371.0 * np.arcsin(np.sqrt(a)))
