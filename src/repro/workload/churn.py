"""Worker churn: connectivity sessions and departures.

Section I motivates REACT with a "highly dynamic crowd" where "even the
most reliable workers may have short connectivity cycles", and §III-C
promises that the Dynamic Assignment Component "is able to deal with
changes in the worker set ... by reassigning the tasks when workers abandon
the system and new workers can receive unassigned tasks".

:class:`ChurnProcess` drives that behaviour end to end: each worker
alternates between online *sessions* (exponential, mean
``mean_session_s``) and offline *absences* (exponential, mean
``mean_absence_s``).  Going offline uses the server's churn path — a task
the worker held is withdrawn and re-queued; coming back online re-registers
the same profile (history intact, as a returning worker would have).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import numpy as np

from ..model.worker import WorkerBehavior, WorkerProfile
from ..sim.clock import EventClock
from ..sim.events import Event, EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..platform.server import REACTServer


@dataclass
class ChurnStats:
    departures: int = 0
    returns: int = 0
    tasks_disrupted: int = 0


@dataclass
class _WorkerChurnState:
    profile: WorkerProfile
    behavior: WorkerBehavior
    online: bool = True


class ChurnProcess:
    """Alternating online/offline sessions for every worker of a server.

    Parameters
    ----------
    mean_session_s / mean_absence_s:
        Means of the exponential online/offline durations.
    rng:
        Stream for the session draws (`repro.sim.rng.STREAM_CHURN`).
    """

    def __init__(
        self,
        engine: EventClock,
        server: "REACTServer",
        rng: np.random.Generator,
        mean_session_s: float = 300.0,
        mean_absence_s: float = 120.0,
    ) -> None:
        if mean_session_s <= 0 or mean_absence_s <= 0:
            raise ValueError("session/absence means must be positive")
        self._engine = engine
        self._server = server
        self._rng = rng
        self._mean_session = mean_session_s
        self._mean_absence = mean_absence_s
        self._states: Dict[int, _WorkerChurnState] = {}
        self._stopped = False
        self.stats = ChurnStats()

    def track_all_workers(self) -> None:
        """Start churn cycles for every worker currently on the server."""
        for profile in list(self._server.profiling):
            behavior = self._server._behaviors[profile.worker_id]
            self.track(profile, behavior)

    def track(self, profile: WorkerProfile, behavior: WorkerBehavior) -> None:
        if profile.worker_id in self._states:
            raise ValueError(f"worker {profile.worker_id} already tracked")
        state = _WorkerChurnState(profile=profile, behavior=behavior)
        self._states[profile.worker_id] = state
        self._schedule_departure(state)

    # ------------------------------------------------------------- cycles
    def _schedule_departure(self, state: _WorkerChurnState) -> None:
        delay = float(self._rng.exponential(self._mean_session))
        self._engine.schedule(
            delay, EventKind.WORKER_DEPARTURE, self._depart, payload=state
        )

    def _schedule_return(self, state: _WorkerChurnState) -> None:
        delay = float(self._rng.exponential(self._mean_absence))
        self._engine.schedule(
            delay, EventKind.WORKER_ARRIVAL, self._return, payload=state
        )

    def _depart(self, event: Event) -> None:
        if self._stopped:
            return
        state: _WorkerChurnState = event.payload
        if not state.online:  # pragma: no cover - defensive
            return
        if state.profile.current_task is not None:
            self.stats.tasks_disrupted += 1
        if state.profile.worker_id in self._server.profiling:
            self._server.remove_worker(state.profile.worker_id)
        state.online = False
        self.stats.departures += 1
        self._schedule_return(state)

    def _return(self, event: Event) -> None:
        if self._stopped:
            return
        state: _WorkerChurnState = event.payload
        if state.online:  # pragma: no cover - defensive
            return
        # The same human comes back: profile (and its history) is reused.
        state.profile.online = True
        state.profile.available = True
        state.profile.current_task = None
        self._server.add_worker(state.profile, state.behavior)
        state.online = True
        self.stats.returns += 1
        self._schedule_departure(state)

    def stop(self) -> None:
        self._stopped = True

    @property
    def online_fraction(self) -> float:
        if not self._states:
            return 0.0
        return sum(s.online for s in self._states.values()) / len(self._states)
