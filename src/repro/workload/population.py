"""Worker-population generation with the paper's §V-C marginals.

"Each worker receives a unique minimum and maximum time ... constrained
among 1-20 seconds"; "a worker might choose to delay or abandon the task
randomly with a probability of 50% and thus the executing time may reach up
to 130 seconds"; "each worker has a unique feedback ∈ [0,1] assigned with a
distribution where the 70% of the workers receive a feedback that is above
0.50" (the CrowdFlower case-study trust statistic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..model.region import Region
from ..model.worker import WorkerBehavior, WorkerProfile


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the synthetic worker population (defaults = paper §V-C)."""

    size: int = 750
    time_floor: float = 1.0
    time_ceil: float = 20.0
    delay_probability: float = 0.5
    delay_cap: float = 130.0
    abandon_probability: float = 0.5
    #: Lower edge of slow-finish draws; calibrated so delayed executions
    #: rarely beat the 60-120 s deadlines (see DESIGN.md §2 notes).
    delay_floor: float = 100.0
    #: Fraction of workers whose latent quality exceeds ``quality_split``.
    high_quality_fraction: float = 0.7
    quality_split: float = 0.5

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")
        if not (0 < self.time_floor <= self.time_ceil):
            raise ValueError("need 0 < time_floor <= time_ceil")
        if not (0.0 <= self.high_quality_fraction <= 1.0):
            raise ValueError("high_quality_fraction must be in [0,1]")
        if not (0.0 < self.quality_split < 1.0):
            raise ValueError("quality_split must be in (0,1)")


def sample_quality(rng: np.random.Generator, config: PopulationConfig) -> float:
    """Latent worker quality with the 70/30 split around ``quality_split``."""
    if rng.random() < config.high_quality_fraction:
        return float(rng.uniform(config.quality_split, 1.0))
    return float(rng.uniform(0.0, config.quality_split))


def sample_behavior(rng: np.random.Generator, config: PopulationConfig) -> WorkerBehavior:
    """One worker's latent behaviour: unique (min, max) window + quality."""
    lo, hi = np.sort(rng.uniform(config.time_floor, config.time_ceil, size=2))
    if hi <= lo:  # degenerate draw; widen minimally
        hi = lo + 1e-6
    return WorkerBehavior(
        min_time=float(lo),
        max_time=float(hi),
        quality=sample_quality(rng, config),
        delay_probability=config.delay_probability,
        delay_cap=config.delay_cap,
        abandon_probability=config.abandon_probability,
        delay_floor=config.delay_floor,
    )


def generate_population(
    rng: np.random.Generator,
    config: Optional[PopulationConfig] = None,
    region: Optional[Region] = None,
    id_offset: int = 0,
) -> List[Tuple[WorkerProfile, WorkerBehavior]]:
    """Workers with fresh profiles and latent behaviours.

    When ``region`` is given, workers are placed uniformly inside it;
    otherwise all sit at the origin (location is irrelevant for the paper's
    accuracy-weighted experiments).
    """
    config = config or PopulationConfig()
    out: List[Tuple[WorkerProfile, WorkerBehavior]] = []
    for i in range(config.size):
        if region is not None:
            lat = float(rng.uniform(region.lat_min, region.lat_max))
            lon = float(rng.uniform(region.lon_min, region.lon_max))
        else:
            lat = lon = 0.0
        profile = WorkerProfile(worker_id=id_offset + i, latitude=lat, longitude=lon)
        out.append((profile, sample_behavior(rng, config)))
    return out


def population_statistics(
    population: List[Tuple[WorkerProfile, WorkerBehavior]]
) -> dict:
    """Marginal checks used by tests and the case-study bench."""
    if not population:
        return {"size": 0}
    qualities = np.array([b.quality for _, b in population])
    mins = np.array([b.min_time for _, b in population])
    maxs = np.array([b.max_time for _, b in population])
    return {
        "size": len(population),
        "fraction_quality_above_half": float((qualities > 0.5).mean()),
        "min_time_range": (float(mins.min()), float(mins.max())),
        "max_time_range": (float(maxs.min()), float(maxs.max())),
        "mean_quality": float(qualities.mean()),
    }
