"""Task generators for the paper's motivating applications.

Each generator produces :class:`~repro.model.task.Task` objects with the
§V-C experimental parameters: deadlines drawn uniformly from [60, 120] s
("a tight deadline for such systems") and sub-$0.10 rewards (90% of AMT
tasks pay less than $0.10, §II).  Domain flavours set the category, the
coordinates and a human-readable description like the paper's examples
("Is road A highly congested?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..model.region import Region
from ..model.task import Task, TaskCategory


@dataclass(frozen=True)
class TaskGeneratorConfig:
    """Deadline/reward ranges (defaults = paper §V-C)."""

    deadline_low: float = 60.0
    deadline_high: float = 120.0
    reward_low: float = 0.01
    reward_high: float = 0.10

    def __post_init__(self) -> None:
        if not (0 < self.deadline_low <= self.deadline_high):
            raise ValueError("need 0 < deadline_low <= deadline_high")
        if not (0 <= self.reward_low <= self.reward_high):
            raise ValueError("need 0 <= reward_low <= reward_high")


class TaskGenerator:
    """Base generator: random deadline, reward and in-region location."""

    category = TaskCategory.GENERIC

    def __init__(
        self,
        rng: np.random.Generator,
        config: Optional[TaskGeneratorConfig] = None,
        region: Optional[Region] = None,
    ) -> None:
        self._rng = rng
        self._config = config or TaskGeneratorConfig()
        self._region = region

    def _location(self) -> tuple[float, float]:
        if self._region is None:
            return 0.0, 0.0
        return (
            float(self._rng.uniform(self._region.lat_min, self._region.lat_max)),
            float(self._rng.uniform(self._region.lon_min, self._region.lon_max)),
        )

    def describe(self, lat: float, lon: float) -> str:
        return f"Provide information about location ({lat:.4f}, {lon:.4f})"

    def make(self, submitted_at: float = 0.0) -> Task:
        lat, lon = self._location()
        cfg = self._config
        return Task(
            latitude=lat,
            longitude=lon,
            deadline=float(self._rng.uniform(cfg.deadline_low, cfg.deadline_high)),
            reward=float(self._rng.uniform(cfg.reward_low, cfg.reward_high)),
            category=self.category,
            description=self.describe(lat, lon),
            submitted_at=submitted_at,
        )

    def stream(self, count: Optional[int] = None) -> Iterator[Task]:
        produced = 0
        while count is None or produced < count:
            yield self.make()
            produced += 1


class TrafficMonitoringGenerator(TaskGenerator):
    """The CrowdFlower case-study application: local congestion estimates."""

    category = TaskCategory.TRAFFIC_MONITORING

    def describe(self, lat: float, lon: float) -> str:
        return f"Is the road at ({lat:.4f}, {lon:.4f}) highly congested?"


class LocationSurveyGenerator(TaskGenerator):
    """Location-aware surveys (Gigwalk/FieldAgent-style)."""

    category = TaskCategory.LOCATION_SURVEY

    def describe(self, lat: float, lon: float) -> str:
        return f"Answer a short survey about the venue at ({lat:.4f}, {lon:.4f})"


class PriceCheckGenerator(TaskGenerator):
    """In-store price checks."""

    category = TaskCategory.PRICE_CHECK

    def describe(self, lat: float, lon: float) -> str:
        return f"Report the shelf price of the advertised item at ({lat:.4f}, {lon:.4f})"


class PoiSuggestionGenerator(TaskGenerator):
    """Points-of-interest suggestions."""

    category = TaskCategory.POI_SUGGESTION

    def describe(self, lat: float, lon: float) -> str:
        return f"Suggest a point of interest near ({lat:.4f}, {lon:.4f})"


class CategoryMixGenerator(TaskGenerator):
    """Heterogeneous-task workload: each task draws its category from a mix.

    The scenario pack (Assadi et al. heterogeneous-tasks extension) needs
    batches that interleave task types so per-type worker skills actually
    matter to the matcher.  ``weights`` biases the draw (uniform when
    omitted); each draw costs exactly one ``rng.random()`` so adding or
    re-weighting categories never perturbs the deadline/reward draws of
    *other* tasks in a seeded run.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        categories: Sequence[TaskCategory],
        weights: Optional[Sequence[float]] = None,
        config: Optional[TaskGeneratorConfig] = None,
        region: Optional[Region] = None,
    ) -> None:
        super().__init__(rng, config, region)
        if not categories:
            raise ValueError("need at least one category")
        if weights is not None:
            if len(weights) != len(categories):
                raise ValueError(
                    f"{len(weights)} weights for {len(categories)} categories"
                )
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative with positive sum")
            total = float(sum(weights))
            weights = [w / total for w in weights]
        self._categories = list(categories)
        self._weights = list(weights) if weights is not None else None

    def _draw_category(self) -> TaskCategory:
        u = float(self._rng.random())
        if self._weights is None:
            idx = min(int(u * len(self._categories)), len(self._categories) - 1)
            return self._categories[idx]
        acc = 0.0
        for category, w in zip(self._categories, self._weights):
            acc += w
            if u < acc:
                return category
        return self._categories[-1]

    def make(self, submitted_at: float = 0.0) -> Task:
        category = self._draw_category()
        lat, lon = self._location()
        cfg = self._config
        return Task(
            latitude=lat,
            longitude=lon,
            deadline=float(self._rng.uniform(cfg.deadline_low, cfg.deadline_high)),
            reward=float(self._rng.uniform(cfg.reward_low, cfg.reward_high)),
            category=category,
            description=self.describe(lat, lon),
            submitted_at=submitted_at,
        )


def make_generator(
    name: str,
    rng: np.random.Generator,
    config: Optional[TaskGeneratorConfig] = None,
    region: Optional[Region] = None,
) -> TaskGenerator:
    """Factory by application name."""
    kinds = {
        "generic": TaskGenerator,
        "traffic": TrafficMonitoringGenerator,
        "survey": LocationSurveyGenerator,
        "price-check": PriceCheckGenerator,
        "poi": PoiSuggestionGenerator,
    }
    if name not in kinds:
        raise KeyError(f"unknown generator {name!r}; known: {sorted(kinds)}")
    return kinds[name](rng, config, region)
