"""Task-trace capture, persistence and replay.

The paper notes it "tried to obtain real workloads from existing
crowdsourcing platforms such as AMT" but could not control assignment
there.  This module keeps the door open for anyone who *does* have a trace:
a :class:`TaskTrace` is an ordered list of task records (arrival time,
coordinates, deadline, reward, category) that can be

* captured from any generator/arrival-process combination
  (:func:`capture_trace`),
* saved to / loaded from a plain CSV (:meth:`TaskTrace.save` /
  :meth:`TaskTrace.load`) so external traces can be hand-authored or
  converted, and
* replayed deterministically into any server or coordinator
  (:func:`replay_trace`) — the same trace drives every technique, which is
  also how the comparison harnesses keep their workloads identical.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Union


from ..model.task import Task, TaskCategory
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess
from .generators import TaskGenerator

PathLike = Union[str, Path]

_FIELDS = ("arrival", "latitude", "longitude", "deadline", "reward", "category",
           "description")


@dataclass(frozen=True)
class TraceRecord:
    """One task submission in a trace (times relative to trace start)."""

    arrival: float
    latitude: float
    longitude: float
    deadline: float
    reward: float
    category: TaskCategory
    description: str = ""

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {self.arrival}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def to_task(self, submitted_at: float) -> Task:
        return Task(
            latitude=self.latitude,
            longitude=self.longitude,
            deadline=self.deadline,
            reward=self.reward,
            category=self.category,
            description=self.description,
            submitted_at=submitted_at,
        )


@dataclass
class TaskTrace:
    """An ordered, replayable sequence of task submissions."""

    records: List[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        arrivals = [r.arrival for r in self.records]
        if arrivals != sorted(arrivals):
            raise ValueError("trace records must be ordered by arrival time")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> float:
        return self.records[-1].arrival if self.records else 0.0

    def arrival_rate(self) -> float:
        """Mean tasks/second over the trace span."""
        if len(self.records) < 2 or self.duration == 0:
            return 0.0
        return len(self.records) / self.duration

    # --------------------------------------------------------- persistence
    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_FIELDS)
            for r in self.records:
                writer.writerow(
                    (f"{r.arrival:.6f}", f"{r.latitude:.6f}", f"{r.longitude:.6f}",
                     f"{r.deadline:.6f}", f"{r.reward:.6f}", r.category.value,
                     r.description)
                )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "TaskTrace":
        path = Path(path)
        records: List[TraceRecord] = []
        with path.open() as fh:
            reader = csv.DictReader(fh)
            missing = set(_FIELDS) - set(reader.fieldnames or ())
            if missing:
                raise ValueError(f"trace file missing columns: {sorted(missing)}")
            for row in reader:
                records.append(
                    TraceRecord(
                        arrival=float(row["arrival"]),
                        latitude=float(row["latitude"]),
                        longitude=float(row["longitude"]),
                        deadline=float(row["deadline"]),
                        reward=float(row["reward"]),
                        category=TaskCategory(row["category"]),
                        description=row["description"],
                    )
                )
        return cls(records=records)


def capture_trace(
    generator: TaskGenerator,
    gaps: Iterator[tuple[float, object]],
    count: int,
) -> TaskTrace:
    """Materialise a trace from a generator and an arrival process.

    The stochastic draws happen once, here; replays are then deterministic
    and identical across techniques.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    records: List[TraceRecord] = []
    clock = 0.0
    for _ in range(count):
        gap, _payload = next(gaps)
        clock += gap
        task = generator.make()
        records.append(
            TraceRecord(
                arrival=clock,
                latitude=task.latitude,
                longitude=task.longitude,
                deadline=task.deadline,
                reward=task.reward,
                category=task.category,
                description=task.description,
            )
        )
    return TaskTrace(records=records)


def replay_trace(
    engine: Engine,
    trace: TaskTrace,
    submit: Callable[[Task], None],
    start: float = 0.0,
) -> GeneratorProcess:
    """Schedule every trace record into ``engine``, submitting via ``submit``.

    ``submit`` is any task sink — ``server.submit_task``,
    ``coordinator.submit_task``, ...  Returns the driving process (for
    cancellation).
    """

    def gap_stream():
        previous = -start  # so the first delay is start + first arrival
        for record in trace.records:
            yield record.arrival - previous, record
            previous = record.arrival

    def deliver(record: TraceRecord) -> None:
        submit(record.to_task(submitted_at=engine.now))

    return GeneratorProcess(
        engine, gap_stream(), deliver, kind=EventKind.TASK_ARRIVAL
    )
