"""Workload generation: arrival processes, worker populations, task
generators, and the synthetic CrowdFlower case study."""

from .arrivals import burst_gaps, deterministic_gaps, poisson_gaps
from .churn import ChurnProcess, ChurnStats
from .crowdflower import (
    CaseStudyReport,
    CaseStudyResponse,
    analyze_case_study,
    generate_case_study,
)
from .generators import (
    LocationSurveyGenerator,
    PoiSuggestionGenerator,
    PriceCheckGenerator,
    TaskGenerator,
    TaskGeneratorConfig,
    TrafficMonitoringGenerator,
    make_generator,
)
from .trace import TaskTrace, TraceRecord, capture_trace, replay_trace
from .population import (
    PopulationConfig,
    generate_population,
    population_statistics,
    sample_behavior,
    sample_quality,
)

__all__ = [
    "burst_gaps",
    "ChurnProcess",
    "ChurnStats",
    "deterministic_gaps",
    "poisson_gaps",
    "CaseStudyReport",
    "CaseStudyResponse",
    "analyze_case_study",
    "generate_case_study",
    "LocationSurveyGenerator",
    "PoiSuggestionGenerator",
    "PriceCheckGenerator",
    "TaskGenerator",
    "TaskGeneratorConfig",
    "TrafficMonitoringGenerator",
    "make_generator",
    "TaskTrace",
    "TraceRecord",
    "capture_trace",
    "replay_trace",
    "PopulationConfig",
    "generate_population",
    "population_statistics",
    "sample_behavior",
    "sample_quality",
]
