"""Synthetic CrowdFlower case study (§V-C "Case Study").

The paper ran a traffic-estimation job on CrowdFlower to calibrate its
simulation parameters and reports these summary statistics:

* the first couple of results arrived within seconds, but stragglers took
  up to **6 hours**;
* **50% of responses arrived in under 20 seconds** (the proposed task time);
* workers' *trust* (accuracy) was such that **70% exceeded 0.5**;
* which led the authors to set deadlines of **60-120 s** for such tasks.

CrowdFlower no longer exists and the original responses were never
published, so this module *generates* a response trace with exactly those
marginals: response times are drawn from a power law whose median is the
20-second mark (consistent with §IV-B's power-law observation), truncated
at 6 hours; trust values follow the 70/30 split around 0.5.  The case-study
bench re-derives the paper's published statistics from the synthetic trace,
closing the loop: trace → statistics → simulation parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..stats.powerlaw import PowerLawFit

#: The paper's published case-study facts.
MEDIAN_RESPONSE_SECONDS = 20.0
MAX_RESPONSE_SECONDS = 6 * 3600.0
TRUST_SPLIT = 0.5
FRACTION_ABOVE_TRUST_SPLIT = 0.7
RECOMMENDED_DEADLINE_RANGE = (60.0, 120.0)
#: Fastest plausible human answer to "is this road congested?".
MIN_RESPONSE_SECONDS = 2.0


@dataclass(frozen=True)
class CaseStudyResponse:
    """One synthetic CrowdFlower judgment."""

    worker_id: int
    response_seconds: float
    trust: float
    answer_correct: bool


@dataclass(frozen=True)
class CaseStudyReport:
    """Statistics a requester would extract from the trace (cf. §V-C)."""

    n_responses: int
    median_response_seconds: float
    p90_response_seconds: float
    max_response_seconds: float
    fraction_under_20s: float
    fraction_trust_above_half: float
    recommended_deadline_range: tuple[float, float]


def _alpha_for_median(median: float, k_min: float) -> float:
    """Exponent whose power-law median equals ``median``.

    From the quantile function ``k_min·2^(1/(α−1)) = median``:
    ``α = 1 + ln2 / ln(median/k_min)``.
    """
    if median <= k_min:
        raise ValueError("median must exceed k_min")
    return 1.0 + math.log(2.0) / math.log(median / k_min)


def generate_case_study(
    rng: np.random.Generator,
    n_responses: int = 500,
    n_workers: int = 120,
) -> List[CaseStudyResponse]:
    """Synthesize a CrowdFlower-like response trace with the §V-C marginals."""
    if n_responses < 1 or n_workers < 1:
        raise ValueError("n_responses and n_workers must be >= 1")
    alpha = _alpha_for_median(MEDIAN_RESPONSE_SECONDS, MIN_RESPONSE_SECONDS)
    fit = PowerLawFit(alpha=alpha, k_min=MIN_RESPONSE_SECONDS, n_samples=n_responses)
    times = np.minimum(fit.sample(rng, size=n_responses), MAX_RESPONSE_SECONDS)

    trusts = np.where(
        rng.random(n_workers) < FRACTION_ABOVE_TRUST_SPLIT,
        rng.uniform(TRUST_SPLIT, 1.0, size=n_workers),
        rng.uniform(0.0, TRUST_SPLIT, size=n_workers),
    )
    worker_ids = rng.integers(0, n_workers, size=n_responses)
    return [
        CaseStudyResponse(
            worker_id=int(w),
            response_seconds=float(t),
            trust=float(trusts[w]),
            answer_correct=bool(rng.random() < trusts[w]),
        )
        for w, t in zip(worker_ids, times)
    ]


def analyze_case_study(responses: List[CaseStudyResponse]) -> CaseStudyReport:
    """Re-derive the paper's published statistics from a trace."""
    if not responses:
        raise ValueError("empty trace")
    times = np.array([r.response_seconds for r in responses])
    by_worker: dict[int, float] = {}
    for r in responses:
        by_worker[r.worker_id] = r.trust
    trusts = np.array(list(by_worker.values()))
    return CaseStudyReport(
        n_responses=len(responses),
        median_response_seconds=float(np.median(times)),
        p90_response_seconds=float(np.percentile(times, 90)),
        max_response_seconds=float(times.max()),
        fraction_under_20s=float((times < MEDIAN_RESPONSE_SECONDS).mean()),
        fraction_trust_above_half=float((trusts > TRUST_SPLIT).mean()),
        recommended_deadline_range=RECOMMENDED_DEADLINE_RANGE,
    )
