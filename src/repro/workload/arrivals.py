"""Task arrival processes.

The paper's end-to-end experiment feeds one region server "tasks in a rate
of 9.375 tasks/second" (scalability: 1.5-12.5/s, deliberately above the AMT
marketplace rate of ~18K HITs/day).  Arrival processes are expressed as
generators of inter-arrival gaps so they plug into
:class:`~repro.sim.process.GeneratorProcess`.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


def deterministic_gaps(
    rate: float, count: Optional[int] = None
) -> Iterator[tuple[float, int]]:
    """Evenly spaced arrivals at ``rate`` per second.

    Yields ``(gap_seconds, arrival_index)``.  ``count=None`` streams forever.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    gap = 1.0 / rate
    index = 0
    while count is None or index < count:
        yield gap, index
        index += 1


def poisson_gaps(
    rate: float, rng: np.random.Generator, count: Optional[int] = None
) -> Iterator[tuple[float, int]]:
    """Poisson process: exponential inter-arrival gaps with mean 1/rate."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    index = 0
    while count is None or index < count:
        yield float(rng.exponential(1.0 / rate)), index
        index += 1


def burst_gaps(
    base_rate: float,
    burst_rate: float,
    burst_every: float,
    burst_duration: float,
    rng: np.random.Generator,
    count: Optional[int] = None,
) -> Iterator[tuple[float, int]]:
    """Poisson arrivals whose rate jumps to ``burst_rate`` periodically.

    Models flash-crowd conditions (the overload regime of §V-D): for
    ``burst_duration`` seconds out of every ``burst_every``, arrivals come
    at ``burst_rate`` instead of ``base_rate``.
    """
    if base_rate <= 0 or burst_rate <= 0:
        raise ValueError("rates must be positive")
    if burst_every <= 0 or not (0 < burst_duration <= burst_every):
        raise ValueError("need 0 < burst_duration <= burst_every")
    index = 0
    clock = 0.0
    while count is None or index < count:
        in_burst = (clock % burst_every) < burst_duration
        rate = burst_rate if in_burst else base_rate
        gap = float(rng.exponential(1.0 / rate))
        clock += gap
        yield gap, index
        index += 1
