"""Ablation studies around the design choices the paper leaves as knobs.

The paper fixes several constants without sweeps — cycles = 1000,
reassignment threshold = 10%, z = 3 training tasks, the acceptance
temperature K — and sketches extensions (adaptive cycles, §IV-A).  These
harnesses quantify each choice:

* ``cycles``   — matching output/time trade-off on a fixed graph (the §IV-A
  "Time vs. Optimal result trade-off" discussion, plus the adaptive rule);
* ``threshold`` — end-to-end on-time fraction vs. the Eq. 2 threshold;
* ``z``        — end-to-end effect of the training length;
* ``K``        — matching output vs. the acceptance temperature.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.matching.hungarian import HungarianMatcher
from ..core.matching.react import ReactMatcher, ReactParameters
from ..graph.bipartite import BipartiteGraph
from ..platform.policies import react_policy
from .config import AblationConfig, EndToEndConfig
from .endtoend import run_endtoend


@dataclass(frozen=True)
class CyclesPoint:
    cycles: int
    adaptive: bool
    output_weight: float
    optimal_weight: float
    wall_seconds: float

    @property
    def optimality(self) -> float:
        return self.output_weight / self.optimal_weight if self.optimal_weight else 0.0


@dataclass(frozen=True)
class KPoint:
    """Matching output at one acceptance-temperature setting."""

    k_constant: float
    cycles: int
    output_weight: float
    optimal_weight: float

    @property
    def optimality(self) -> float:
        return self.output_weight / self.optimal_weight if self.optimal_weight else 0.0


@dataclass(frozen=True)
class ScalarPoint:
    """A (knob value, headline metrics) pair from an end-to-end ablation."""

    value: float
    on_time_fraction: float
    positive_feedback_fraction: float
    reassignments: int


@dataclass
class AblationResult:
    name: str
    points: List[object] = field(default_factory=list)


def ablate_cycles(
    config: Optional[AblationConfig] = None,
    n_workers: int = 300,
    n_tasks: int = 300,
) -> AblationResult:
    """Matching quality/time vs. the cycle budget on one fixed full graph."""
    config = config or AblationConfig()
    rng = np.random.default_rng(config.seed)
    graph = BipartiteGraph.full(rng.random((n_workers, n_tasks)))
    optimal = HungarianMatcher().match(graph).total_weight

    result = AblationResult(name="cycles")
    settings = [(c, False) for c in config.cycles_sweep] + [(0, True)]
    for cycles, adaptive in settings:
        params = ReactParameters(
            cycles=cycles if not adaptive else 1,
            adaptive_cycles=adaptive,
        )
        matcher = ReactMatcher(params)
        start = time.perf_counter()
        matching = matcher.match(graph, np.random.default_rng(config.seed + cycles))
        wall = time.perf_counter() - start
        result.points.append(
            CyclesPoint(
                cycles=matching.cycles_used,
                adaptive=adaptive,
                output_weight=matching.total_weight,
                optimal_weight=optimal,
                wall_seconds=wall,
            )
        )
    return result


def _small_endtoend(seed: int) -> EndToEndConfig:
    """A reduced §V-C scenario that keeps ablation sweeps fast."""
    return EndToEndConfig(
        n_workers=150, arrival_rate=1.875, n_tasks=1200, seed=seed, drain_time=400
    )


def ablate_threshold(config: Optional[AblationConfig] = None) -> AblationResult:
    """End-to-end sensitivity to the Eq. 2 reassignment threshold."""
    config = config or AblationConfig()
    result = AblationResult(name="threshold")
    for threshold in config.threshold_sweep:
        run = run_endtoend(
            react_policy(reassign_threshold=threshold), _small_endtoend(config.seed)
        )
        result.points.append(
            ScalarPoint(
                value=threshold,
                on_time_fraction=run.summary["on_time_fraction"],
                positive_feedback_fraction=run.summary["positive_feedback_fraction"],
                reassignments=int(run.summary["reassignments"]),
            )
        )
    return result


def ablate_training_z(config: Optional[AblationConfig] = None) -> AblationResult:
    """End-to-end sensitivity to the cold-start training length z."""
    config = config or AblationConfig()
    result = AblationResult(name="z")
    for z in config.z_sweep:
        run = run_endtoend(
            react_policy(min_history=z), _small_endtoend(config.seed)
        )
        result.points.append(
            ScalarPoint(
                value=float(z),
                on_time_fraction=run.summary["on_time_fraction"],
                positive_feedback_fraction=run.summary["positive_feedback_fraction"],
                reassignments=int(run.summary["reassignments"]),
            )
        )
    return result


def ablate_k_constant(
    config: Optional[AblationConfig] = None,
    n_workers: int = 300,
    n_tasks: int = 300,
    cycles: int = 3000,
) -> AblationResult:
    """Matching output vs. the acceptance temperature K (Algorithm 1)."""
    config = config or AblationConfig()
    rng = np.random.default_rng(config.seed)
    graph = BipartiteGraph.full(rng.random((n_workers, n_tasks)))
    optimal = HungarianMatcher().match(graph).total_weight

    result = AblationResult(name="k")
    for k in config.k_sweep:
        matcher = ReactMatcher(ReactParameters(cycles=cycles, k_constant=k))
        matching = matcher.match(graph, np.random.default_rng(config.seed))
        result.points.append(
            KPoint(
                k_constant=k,
                cycles=cycles,
                output_weight=matching.total_weight,
                optimal_weight=optimal,
            )
        )
    return result
