"""Command-line entry point: ``python -m repro.experiments <figure>``.

Regenerates any figure of the paper (or an ablation/case-study report) and
prints the corresponding text report.  ``--quick`` shrinks every workload to
a laptop-friendly size while preserving the qualitative shapes; the full
paper-scale runs are the defaults.  ``--out DIR`` additionally writes the
raw series as CSV/JSON into ``DIR`` (figures 3-10 only).

Telemetry (docs/OBSERVABILITY.md): the ``endtoend`` and ``chaos`` commands
accept ``--trace-out DIR`` / ``--metrics-out DIR`` to record a sim-time
Chrome trace and a Prometheus/CSV metrics snapshot per run, and
``python -m repro.experiments obs ...`` summarizes or converts a recorded
trace.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from ..dist import (
    ShardedRun,
    TelemetrySpec,
    run_chaos_sharded,
    run_comparison_sharded,
    run_scalability_sharded,
    run_scenario_sharded,
)
from ..obs.runtime import Observability
from ..workload.crowdflower import analyze_case_study, generate_case_study
from .ablations import ablate_cycles, ablate_k_constant, ablate_threshold, ablate_training_z
from .chaos import ChaosConfig, report_chaos, run_chaos_comparison, standard_schedule
from ..platform.policies import RetainerSpec
from .config import EndToEndConfig, MatchingSweepConfig, ScalabilityConfig
from .endtoend import retainer_policies, run_comparison
from .export import (
    export_endtoend,
    export_matching_sweep,
    export_retainer,
    export_scalability,
)
from .voting import VotingConfig, report_voting, run_voting_comparison
from .loadtest import LoadtestScenario, format_loadtest, quick_scenario, run_loadtest
from .matching_bench import run_matching_sweep
from .perf import run_bench
from .reporting import (
    report_ablation,
    report_endtoend,
    report_retainer,
    report_fig3,
    report_fig4,
    report_fig5,
    report_fig6,
    report_fig7,
    report_fig8,
    report_fig9,
    report_fig10,
)
from .scalability import run_scalability
from .scenario import (
    ScenarioConfig,
    report_scenario,
    run_scenario_comparison,
)


def _matching_config(quick: bool) -> MatchingSweepConfig:
    if quick:
        return MatchingSweepConfig(
            n_workers=200, task_counts=(1, 50, 100, 200), cycles_settings=(200, 600)
        )
    return MatchingSweepConfig()


def _endtoend_config(quick: bool) -> EndToEndConfig:
    if quick:
        return EndToEndConfig(
            n_workers=150, arrival_rate=1.875, n_tasks=1600, drain_time=400
        )
    return EndToEndConfig()


def _marketplace_config(quick: bool) -> EndToEndConfig:
    """Marketplace-mode workload for the retainer comparison.

    Workers arrive over time instead of pre-connecting; both policies of
    the comparison face the identical (seeded) arrival traces.
    """
    if quick:
        return EndToEndConfig(
            n_workers=120, arrival_rate=2.0, n_tasks=400, drain_time=200,
            arrival_process="poisson",
            worker_arrival_rate=0.5, worker_patience=30.0,
        )
    return EndToEndConfig(
        n_workers=750, arrival_rate=9.375, n_tasks=8371, drain_time=600,
        arrival_process="poisson",
        worker_arrival_rate=1.5, worker_patience=30.0,
    )


def _scalability_config(quick: bool) -> ScalabilityConfig:
    if quick:
        return ScalabilityConfig(
            worker_sizes=(50, 100, 200),
            rates=(0.75, 1.5, 3.0),
            duration=300.0,
            drain_time=300.0,
        )
    return ScalabilityConfig()


def _scenario_config(quick: bool) -> ScenarioConfig:
    # The quick variant keeps the same saturation ratio as the default
    # (verified empirically: every policy still performs region splits,
    # cross-region migrations, and budget shedding).
    if quick:
        return ScenarioConfig(
            n_tasks=150, n_workers=50, horizon=150.0, requester_budget=0.3
        )
    return ScenarioConfig()


def _maybe_export(out: Optional[str], writer, *args) -> str:
    if out is None:
        return ""
    written = writer(*args)
    paths = written if isinstance(written, list) else [written]
    return "\n".join(f"# wrote {p}" for p in paths)


def _run_fig3(quick: bool, out: Optional[str] = None) -> str:
    sweep = run_matching_sweep(_matching_config(quick))
    note = _maybe_export(out, export_matching_sweep, sweep, f"{out}/fig3_4.csv" if out else "")
    return report_fig3(sweep) + ("\n" + note if note else "")


def _run_fig4(quick: bool, out: Optional[str] = None) -> str:
    sweep = run_matching_sweep(_matching_config(quick))
    note = _maybe_export(out, export_matching_sweep, sweep, f"{out}/fig3_4.csv" if out else "")
    return report_fig4(sweep) + ("\n" + note if note else "")


def _endtoend_report(quick: bool, out: Optional[str], report) -> str:
    results = run_comparison(_endtoend_config(quick))
    note = _maybe_export(out, export_endtoend, results, out or "")
    return report(results) + ("\n" + note if note else "")


def _run_fig5(quick: bool, out: Optional[str] = None) -> str:
    return _endtoend_report(quick, out, report_fig5)


def _run_fig6(quick: bool, out: Optional[str] = None) -> str:
    return _endtoend_report(quick, out, report_fig6)


def _run_fig7(quick: bool, out: Optional[str] = None) -> str:
    return _endtoend_report(quick, out, report_fig7)


def _run_fig8(quick: bool, out: Optional[str] = None) -> str:
    return _endtoend_report(quick, out, report_fig8)


def _sharded_notes(run: ShardedRun) -> List[str]:
    notes = [f"# wrote {path}" for path in run.written]
    if run.resumed:
        notes.append(
            f"# resumed {run.resumed} shard(s) from checkpoint, "
            f"computed {run.computed}"
        )
    return notes


def _run_scalability_report(
    quick: bool,
    out: Optional[str],
    report,
    parallel: Optional[int],
    resume: Optional[str],
) -> str:
    config = _scalability_config(quick)
    if parallel is None and resume is None:
        result = run_scalability(config)
        notes: List[str] = []
    else:
        run = run_scalability_sharded(
            config, parallel=parallel or 1, checkpoint_dir=resume
        )
        result = run.results
        notes = _sharded_notes(run)
    note = _maybe_export(out, export_scalability, result, f"{out}/fig9_10.csv" if out else "")
    if note:
        notes.insert(0, note)
    return report(result) + ("\n" + "\n".join(notes) if notes else "")


def _run_fig9(
    quick: bool,
    out: Optional[str] = None,
    parallel: Optional[int] = None,
    resume: Optional[str] = None,
) -> str:
    return _run_scalability_report(quick, out, report_fig9, parallel, resume)


def _run_fig10(
    quick: bool,
    out: Optional[str] = None,
    parallel: Optional[int] = None,
    resume: Optional[str] = None,
) -> str:
    return _run_scalability_report(quick, out, report_fig10, parallel, resume)


def _run_case_study(quick: bool, out: Optional[str] = None) -> str:
    rng = np.random.default_rng(13)
    report = analyze_case_study(generate_case_study(rng, n_responses=200 if quick else 2000))
    lines = [
        "# CrowdFlower case study (synthetic trace; paper §V-C anchors)",
        f"responses:                 {report.n_responses}",
        f"median response:           {report.median_response_seconds:.1f} s (paper: ~20 s)",
        f"fraction under 20 s:       {report.fraction_under_20s:.1%} (paper: 50%)",
        f"p90 response:              {report.p90_response_seconds:.1f} s",
        f"max response:              {report.max_response_seconds/3600:.2f} h (paper: up to 6 h)",
        f"trust > 0.5:               {report.fraction_trust_above_half:.1%} (paper: 70%)",
        f"recommended deadline:      {report.recommended_deadline_range} s (paper: 60-120 s)",
    ]
    return "\n".join(lines)


def _run_voting(quick: bool, out: Optional[str] = None) -> str:
    config = (
        VotingConfig(n_workers=80, arrival_rate=0.4, n_tasks=500,
                     replication_levels=(1, 3))
        if quick
        else VotingConfig()
    )
    return report_voting(run_voting_comparison(config))


def _obs_factory(
    prefix: str, trace_out: Optional[str], metrics_out: Optional[str]
):
    """Build (factory, exporter) when telemetry output was requested.

    The factory hands each run its own :class:`Observability`; calling the
    returned ``flush`` after the runs writes every recorded context to the
    requested directories and returns '# wrote ...' note lines.
    """
    if trace_out is None and metrics_out is None:
        return None, lambda: []
    observers: Dict[str, Observability] = {}

    def factory(label: str) -> Observability:
        obs = Observability()
        observers[label] = obs
        return obs

    def flush() -> List[str]:
        notes = []
        for label, obs in observers.items():
            for path in obs.export(
                f"{prefix}_{label}", trace_dir=trace_out, metrics_dir=metrics_out
            ):
                notes.append(f"# wrote {path}")
        return notes

    return factory, flush


def _run_endtoend(
    quick: bool,
    out: Optional[str] = None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    parallel: Optional[int] = None,
    resume: Optional[str] = None,
    retainer_size: Optional[int] = None,
    retainer_cost: Optional[float] = None,
    retainer_adaptive: bool = False,
) -> str:
    # --retainer-size/--retainer-cost/--retainer-adaptive switch the run to
    # the marketplace retainer comparison (REACT vs REACT + retainer;
    # docs/RETAINER.md).
    with_retainer = (
        retainer_size is not None or retainer_cost is not None or retainer_adaptive
    )
    if with_retainer:
        spec = RetainerSpec(
            size=retainer_size if retainer_size is not None else RetainerSpec().size,
            wage_per_second=(
                retainer_cost
                if retainer_cost is not None
                else RetainerSpec().wage_per_second
            ),
            adaptive=retainer_adaptive,
        )
        config = _marketplace_config(quick)
        policies = retainer_policies(spec)
        reporter, exporter = report_retainer, export_retainer
    else:
        config = _endtoend_config(quick)
        policies = None
        reporter, exporter = report_endtoend, export_endtoend
    if parallel is None and resume is None:
        factory, flush = _obs_factory("endtoend", trace_out, metrics_out)
        results = run_comparison(
            config, policies=policies, observability_factory=factory
        )
        notes = flush()
    else:
        telemetry = TelemetrySpec(
            prefix="endtoend", trace_dir=trace_out, metrics_dir=metrics_out
        )
        run = run_comparison_sharded(
            config,
            policies=policies,
            parallel=parallel or 1,
            checkpoint_dir=resume,
            telemetry=telemetry if telemetry.enabled else None,
        )
        results = run.results
        notes = _sharded_notes(run)
    lines = [reporter(results)]
    note = _maybe_export(out, exporter, results, out or "")
    if note:
        lines.append(note)
    lines.extend(notes)
    return "\n".join(lines)


def _run_chaos(
    quick: bool,
    out: Optional[str] = None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    parallel: Optional[int] = None,
    resume: Optional[str] = None,
) -> str:
    config = (
        ChaosConfig(n_workers=50, arrival_rate=0.8, n_tasks=240, drain_time=250.0)
        if quick
        else ChaosConfig()
    )
    schedule = standard_schedule(config)
    if parallel is None and resume is None:
        factory, flush = _obs_factory("chaos", trace_out, metrics_out)
        results = run_chaos_comparison(
            config, schedule=schedule, observability_factory=factory
        )
        notes = flush()
    else:
        telemetry = TelemetrySpec(
            prefix="chaos", trace_dir=trace_out, metrics_dir=metrics_out
        )
        run = run_chaos_sharded(
            config,
            schedule=schedule,
            parallel=parallel or 1,
            checkpoint_dir=resume,
            telemetry=telemetry if telemetry.enabled else None,
        )
        results = run.results
        notes = _sharded_notes(run)
    report = report_chaos(results)
    return report + ("\n" + "\n".join(notes) if notes else "")


def _run_scenario(
    quick: bool,
    out: Optional[str] = None,
    parallel: Optional[int] = None,
    resume: Optional[str] = None,
) -> str:
    # Budgets x hot-region skew x heterogeneous tasks against the
    # related-work baselines (docs/EXPERIMENTS.md, "Scenario pack").
    config = _scenario_config(quick)
    if parallel is None and resume is None:
        results = run_scenario_comparison(config)
        notes: List[str] = []
    else:
        run = run_scenario_sharded(
            config, parallel=parallel or 1, checkpoint_dir=resume
        )
        results = run.results
        notes = _sharded_notes(run)
    report = report_scenario(results)
    return report + ("\n" + "\n".join(notes) if notes else "")


def _run_loadtest(quick: bool, out: Optional[str] = None) -> str:
    # Wall-clock run: boots the repro.service gateway on an ephemeral port
    # and drives it over real HTTP (docs/SERVICE.md).  No --out series.
    scenario = quick_scenario() if quick else LoadtestScenario()
    report, summary = run_loadtest(scenario)
    return format_loadtest(scenario, report, summary)


def _run_bench(quick: bool, out: Optional[str] = None) -> str:
    # BENCH_*.json go to the repo root (the perf-regression baseline files)
    # unless --out redirects them, e.g. for scratch comparisons.
    return run_bench(quick, out_dir=out)


def _run_ablations(quick: bool, out: Optional[str] = None) -> str:
    blocks = [
        report_ablation(ablate_cycles()),
        report_ablation(ablate_k_constant()),
    ]
    if not quick:
        blocks.append(report_ablation(ablate_threshold()))
        blocks.append(report_ablation(ablate_training_z()))
    return "\n\n".join(blocks)


COMMANDS: Dict[str, Callable[..., str]] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "case-study": _run_case_study,
    "ablations": _run_ablations,
    "voting": _run_voting,
    "endtoend": _run_endtoend,
    "chaos": _run_chaos,
    "scenario": _run_scenario,
    "bench": _run_bench,
    "loadtest": _run_loadtest,
}

#: Commands that understand --trace-out / --metrics-out (the rest reject
#: the flags so a typo doesn't silently record nothing).
TRACEABLE = ("endtoend", "chaos")

#: Commands with a sharded execution path (--parallel / --resume; see
#: docs/SCALING.md).  fig9/fig10 are the scalability sweep.
PARALLEL_COMMANDS = ("endtoend", "chaos", "fig9", "fig10", "scenario")

#: Commands that understand --retainer-size / --retainer-cost
#: (the marketplace retainer comparison; docs/RETAINER.md).
RETAINER_COMMANDS = ("endtoend",)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        # Trace-file utilities live in their own argparse tree.
        from ..obs.cli import main as obs_main

        return obs_main(list(argv[1:]))
    if argv and argv[0] == "lint":
        # reprolint (docs/STATIC_ANALYSIS.md) also answers to
        # ``python -m repro.analysis``; this alias keeps every project
        # tool reachable from the one experiments entry point.
        from ..analysis.cli import main as lint_main

        return lint_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of 'Crowdsourcing under Real-Time Constraints'.",
        epilog="'obs' (python -m repro.experiments obs --help) summarizes "
        "or converts recorded trace files; 'lint' (python -m repro.experiments "
        "lint --help) runs the reprolint static-analysis gate.",
    )
    parser.add_argument("figure", choices=sorted(COMMANDS) + ["all"])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink workloads for a fast qualitative run",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write raw series (CSV/JSON) into DIR",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="record a sim-time trace per run into DIR "
        f"(Chrome JSON + JSONL; {'/'.join(TRACEABLE)} only)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="write a metrics snapshot per run into DIR "
        f"(Prometheus text + CSV; {'/'.join(TRACEABLE)} only)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan the run's shards over N worker processes "
        f"(deterministic: merged results are bit-identical for any N; "
        f"{'/'.join(PARALLEL_COMMANDS)} only)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="checkpoint finished shards into DIR and skip any shard "
        "already checkpointed there from a previous (possibly killed) run",
    )
    parser.add_argument(
        "--retainer-size",
        type=int,
        default=None,
        metavar="C",
        help="run the marketplace retainer comparison with a pool of C "
        f"workers ({'/'.join(RETAINER_COMMANDS)} only; docs/RETAINER.md)",
    )
    parser.add_argument(
        "--retainer-cost",
        type=float,
        default=None,
        metavar="WAGE",
        help="retainer wage per idle second for the comparison "
        f"({'/'.join(RETAINER_COMMANDS)} only; default 0.01)",
    )
    parser.add_argument(
        "--retainer-adaptive",
        action="store_true",
        help="retune the retainer pool size periodically from a live EWMA "
        "arrival-rate estimate via optimal_pool_size "
        f"({'/'.join(RETAINER_COMMANDS)} only; docs/RETAINER.md)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable stdlib logging from the experiment drivers",
    )
    args = parser.parse_args(argv)

    if args.log_level is not None:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )

    targets = sorted(COMMANDS) if args.figure == "all" else [args.figure]
    telemetry = args.trace_out is not None or args.metrics_out is not None
    if telemetry and not any(t in TRACEABLE for t in targets):
        parser.error(
            f"--trace-out/--metrics-out only apply to: {', '.join(TRACEABLE)}"
        )
    sharded = args.parallel is not None or args.resume is not None
    if sharded and not any(t in PARALLEL_COMMANDS for t in targets):
        parser.error(
            f"--parallel/--resume only apply to: {', '.join(PARALLEL_COMMANDS)}"
        )
    if args.parallel is not None and args.parallel < 1:
        parser.error("--parallel must be >= 1")
    retainer = (
        args.retainer_size is not None
        or args.retainer_cost is not None
        or args.retainer_adaptive
    )
    if retainer and not any(t in RETAINER_COMMANDS for t in targets):
        parser.error(
            f"--retainer-size/--retainer-cost/--retainer-adaptive only apply to: "
            f"{', '.join(RETAINER_COMMANDS)}"
        )
    if args.retainer_size is not None and args.retainer_size < 1:
        parser.error("--retainer-size must be >= 1")
    if args.retainer_cost is not None and args.retainer_cost < 0:
        parser.error("--retainer-cost must be non-negative")
    for target in targets:
        kwargs: Dict[str, object] = {}
        if target in TRACEABLE:
            kwargs["trace_out"] = args.trace_out
            kwargs["metrics_out"] = args.metrics_out
        if target in PARALLEL_COMMANDS:
            kwargs["parallel"] = args.parallel
            kwargs["resume"] = args.resume
        if target in RETAINER_COMMANDS:
            kwargs["retainer_size"] = args.retainer_size
            kwargs["retainer_cost"] = args.retainer_cost
            kwargs["retainer_adaptive"] = args.retainer_adaptive
        print(COMMANDS[target](args.quick, args.out, **kwargs))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
