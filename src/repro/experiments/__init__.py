"""Experiment harnesses regenerating every figure of the paper."""

from .ablations import (
    AblationResult,
    CyclesPoint,
    KPoint,
    ScalarPoint,
    ablate_cycles,
    ablate_k_constant,
    ablate_threshold,
    ablate_training_z,
)
from .config import (
    AblationConfig,
    EndToEndConfig,
    MatchingSweepConfig,
    ScalabilityConfig,
)
from .endtoend import EndToEndResult, default_policies, run_comparison, run_endtoend
from .export import (
    export_endtoend,
    export_matching_sweep,
    export_scalability,
    export_timeline,
)
from .matching_bench import MatchingPoint, MatchingSweepResult, run_matching_sweep
from .scalability import ScalabilityPoint, ScalabilityResult, run_scalability
from .voting import (
    VotingConfig,
    VotingPoint,
    VotingResult,
    report_voting,
    run_voting_comparison,
)

__all__ = [
    "AblationResult",
    "CyclesPoint",
    "KPoint",
    "ScalarPoint",
    "ablate_cycles",
    "ablate_k_constant",
    "ablate_threshold",
    "ablate_training_z",
    "AblationConfig",
    "EndToEndConfig",
    "MatchingSweepConfig",
    "ScalabilityConfig",
    "EndToEndResult",
    "export_endtoend",
    "export_matching_sweep",
    "export_scalability",
    "export_timeline",
    "default_policies",
    "run_comparison",
    "run_endtoend",
    "MatchingPoint",
    "MatchingSweepResult",
    "run_matching_sweep",
    "ScalabilityPoint",
    "ScalabilityResult",
    "VotingConfig",
    "VotingPoint",
    "VotingResult",
    "report_voting",
    "run_voting_comparison",
    "run_scalability",
]
