"""Replication / majority-voting comparison (paper §VI contrast).

The related-work systems the paper positions against (Karger-Oh-Shah's
budget-optimal allocation, CDAS) achieve reliability by *multi-assignment*:
every task goes to R workers and a majority vote decides the answer.  The
paper's counter-claim: "our technique manages to define the most suitable
workers before the execution of the tasks and thus to reduce the cost of
the multiple assignments."

This experiment quantifies that trade-off on the §V-C workload:

* **Replication-R baseline**: an AMT-like platform (uniform assignment, no
  profiling) submits R clones of every task; a logical task succeeds when a
  majority of its clones return a positive (on-time, correct) answer.
* **REACT reference**: single assignment with Eq. 1 quality weights and the
  Eq. 2/3 deadline model; a task succeeds when its one answer is positive.

Reported per configuration: the success fraction, the *payment cost* per
logical task (one reward per clone vs. one per task) and the worker
executions consumed (including REACT's reassignment retries — its honest
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model.task import Task, reset_task_ids
from ..platform.cost import ZeroCost
from ..platform.policies import SchedulingPolicy, react_policy, traditional_policy
from ..platform.server import REACTServer
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess
from ..sim.rng import STREAM_TASKS, STREAM_WORKER_POPULATION, RngRegistry
from ..workload.arrivals import deterministic_gaps
from ..workload.generators import TaskGeneratorConfig, TrafficMonitoringGenerator
from ..workload.population import PopulationConfig, generate_population


@dataclass(frozen=True)
class VotingConfig:
    """Workload knobs for the voting comparison.

    The worker pool is sized for the *highest* replication level so every
    configuration faces the same crowd; lower levels simply leave capacity
    idle (favouring the replication baseline — the comparison is
    conservative for REACT).
    """

    n_workers: int = 250
    arrival_rate: float = 0.75
    n_tasks: int = 2500
    replication_levels: Tuple[int, ...] = (1, 3, 5)
    seed: int = 33
    drain_time: float = 400.0

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_tasks < 1:
            raise ValueError("n_workers and n_tasks must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not self.replication_levels or min(self.replication_levels) < 1:
            raise ValueError("replication levels must be >= 1")
        if any(r % 2 == 0 for r in self.replication_levels):
            raise ValueError("replication levels must be odd (majority vote)")

    @property
    def horizon(self) -> float:
        return self.n_tasks / self.arrival_rate + self.drain_time


@dataclass(frozen=True)
class VotingPoint:
    """Outcome of one configuration of the comparison."""

    label: str
    replication: int
    success_fraction: float
    rewards_per_task: float
    executions_per_task: float
    logical_tasks: int


@dataclass
class VotingResult:
    config: VotingConfig
    points: List[VotingPoint] = field(default_factory=list)

    def by_label(self) -> Dict[str, VotingPoint]:
        return {p.label: p for p in self.points}


def _run(
    policy: SchedulingPolicy,
    config: VotingConfig,
    replication: int,
    label: str,
) -> VotingPoint:
    reset_task_ids()
    engine = Engine()
    rng = RngRegistry(seed=config.seed)
    server = REACTServer(
        engine=engine, policy=policy, rng=rng, cost_model=ZeroCost()
    )
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=config.n_workers)
    ):
        server.add_worker(profile, behavior)
    server.start()

    generator = TrafficMonitoringGenerator(
        rng.stream(STREAM_TASKS), TaskGeneratorConfig()
    )
    clone_to_logical: Dict[int, int] = {}
    logical_count = 0

    def on_arrival(_payload) -> None:
        nonlocal logical_count
        logical = logical_count
        logical_count += 1
        template = generator.make(submitted_at=engine.now)
        for _ in range(replication):
            clone = Task(
                latitude=template.latitude,
                longitude=template.longitude,
                deadline=template.deadline,
                reward=template.reward,
                category=template.category,
                description=template.description,
                submitted_at=engine.now,
            )
            clone_to_logical[clone.task_id] = logical
            server.submit_task(clone)

    GeneratorProcess(
        engine,
        deterministic_gaps(config.arrival_rate, config.n_tasks),
        on_arrival,
        kind=EventKind.TASK_ARRIVAL,
    )
    engine.run(until=config.horizon)
    server.stop()

    # Aggregate clone outcomes per logical task.  The requester votes over
    # the answers that arrived *by the deadline*: success requires at least
    # one on-time answer and a strict majority of the on-time answers to be
    # correct (positive_feedback == correctness draw for on-time answers).
    arrived: Dict[int, int] = {}
    correct: Dict[int, int] = {}
    executions = 0
    for outcome in server.metrics.outcomes:
        logical = clone_to_logical[outcome.task_id]
        arrived.setdefault(logical, 0)
        correct.setdefault(logical, 0)
        if outcome.met_deadline:
            arrived[logical] += 1
            correct[logical] += int(outcome.positive_feedback)
        executions += outcome.assignments
    successes = sum(
        1
        for logical, n_arrived in arrived.items()
        if n_arrived > 0 and correct[logical] * 2 > n_arrived
    )

    return VotingPoint(
        label=label,
        replication=replication,
        success_fraction=successes / logical_count if logical_count else 0.0,
        rewards_per_task=float(replication),
        executions_per_task=executions / logical_count if logical_count else 0.0,
        logical_tasks=logical_count,
    )


def run_voting_comparison(config: Optional[VotingConfig] = None) -> VotingResult:
    """REACT single-assignment vs. replication-R majority voting."""
    config = config or VotingConfig()
    result = VotingResult(config=config)
    result.points.append(_run(react_policy(), config, replication=1, label="react"))
    for level in config.replication_levels:
        result.points.append(
            _run(
                traditional_policy(),
                config,
                replication=level,
                label=f"vote-{level}",
            )
        )
    return result


def report_voting(result: VotingResult) -> str:
    """Text report: reliability vs. payment/execution cost."""
    from ..stats.summaries import format_table

    rows = [
        (
            p.label,
            p.replication,
            f"{p.success_fraction:.1%}",
            f"{p.rewards_per_task:.0f}",
            f"{p.executions_per_task:.2f}",
        )
        for p in result.points
    ]
    return (
        "# Replication / majority voting vs. REACT single assignment (§VI)\n"
        "# success = majority of answers positive (on time & correct)\n"
        + format_table(
            ["configuration", "R", "success", "rewards/task", "executions/task"],
            rows,
        )
    )
