"""Perf-regression micro-benchmarks for the hot paths.

Times the three kernels the platform spends its wall-clock in — matcher
inner loops, graph construction/pruning, and the Eq. 2 / Eq. 3 batch
evaluators — and writes machine-readable baselines (``BENCH_matching.json``
and ``BENCH_platform.json`` at the repo root) so regressions show up as a
diff instead of a vague "the sweep feels slower".

Every record follows one schema::

    {"bench": ..., "params": {...}, "wall_seconds": ..., "throughput": ...,
     "commit": ...}

``wall_seconds`` is the median over ``repeats`` runs (the minimum is too
flattering on shared CI runners, the mean too noisy); ``throughput`` is the
bench-specific rate (cycles/s for matchers, edges/s for graph build,
cells/s or rows/s for the deadline evaluators).

Usage: ``python -m repro.experiments bench [--quick]`` or the thin driver
``benchmarks/perf/run.py``.
"""

from __future__ import annotations

import json
import logging
import os
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import kernels
from ..core.deadline import DeadlineEstimator
from ..core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from ..core.matching.react import ReactMatcher, ReactParameters
from ..graph.bipartite import BipartiteGraph
from ..model.task import TaskCategory
from ..model.worker import WorkerProfile
from ..obs.registry import NULL_INSTRUMENT
from ..obs.trace import NULL_TRACER

logger = logging.getLogger(__name__)

#: RNG seed shared by every bench so runs are comparable across commits.
BENCH_SEED = 20130521  # IPDPS 2013 vintage


@dataclass
class BenchResult:
    """One benchmark measurement in the BENCH_*.json schema."""

    bench: str
    params: Dict[str, object]
    wall_seconds: float
    throughput: float
    commit: str = field(default="unknown")

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench": self.bench,
            "params": self.params,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "commit": self.commit,
        }


def git_commit(repo_root: Optional[Path] = None) -> str:
    """Current HEAD hash, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _median_wall(run: Callable[[], None], repeats: int) -> float:
    """Median wall-clock of ``repeats`` runs, after one untimed warmup.

    The warmup absorbs one-time costs that are not the steady-state rate we
    want to track: numba JIT compilation, lazy adjacency-cache builds, and
    cold CPU caches.
    """
    run()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _bench_graph(n_workers: int, n_tasks: int) -> BipartiteGraph:
    """The matcher workload: a seeded full bipartite graph (worst case)."""
    rng = np.random.default_rng(BENCH_SEED)
    return BipartiteGraph.full(rng.random((n_workers, n_tasks)))


# ------------------------------------------------------------------ matching
def run_matching_benchmarks(quick: bool = False) -> List[BenchResult]:
    """Matcher cycles/sec per backend, on the Fig. 3/4 worst-case graph.

    The "reference" backend is the seed implementation kept verbatim in
    :mod:`repro.core.kernels.reference`; its record is the denominator for
    the ``speedup_vs_reference`` recorded on every optimized backend.
    """
    n = 50 if quick else 200
    cycles = 200 if quick else 1000
    repeats = 3 if quick else 5
    graph = _bench_graph(n, n)
    commit = git_commit()

    backends = ["reference", "python"]
    if "numba" in kernels.available_backends():
        backends.append("numba")

    matchers: Dict[str, Callable[[str], object]] = {
        "react": lambda backend: ReactMatcher(
            ReactParameters(cycles=cycles), backend=backend
        ),
        "metropolis": lambda backend: MetropolisMatcher(
            MetropolisParameters(cycles=cycles), backend=backend
        ),
    }

    results: List[BenchResult] = []
    for name, make in matchers.items():
        reference_wall: Optional[float] = None
        for backend in backends:
            matcher = make(backend)

            def run() -> None:
                matcher.match(graph, np.random.default_rng(BENCH_SEED))

            wall = _median_wall(run, repeats)
            params: Dict[str, object] = {
                "matcher": name,
                "backend": backend,
                "n_workers": n,
                "n_tasks": n,
                "n_edges": graph.n_edges,
                "cycles": cycles,
                "repeats": repeats,
            }
            if backend == "reference":
                reference_wall = wall
            elif reference_wall is not None:
                params["speedup_vs_reference"] = reference_wall / wall
            results.append(
                BenchResult(
                    bench=f"{name}_match",
                    params=params,
                    wall_seconds=wall,
                    throughput=cycles / wall,
                    commit=commit,
                )
            )
    return results


# ------------------------------------------------------------------ platform
def _trained_workers(count: int, history: int) -> List[WorkerProfile]:
    """Workers with heavy-tailed histories, as the estimator sees them."""
    rng = np.random.default_rng(BENCH_SEED)
    workers = []
    for worker_id in range(count):
        profile = WorkerProfile(worker_id=worker_id)
        for duration in 5.0 + rng.pareto(2.5, size=history) * 20.0:
            profile.record_completion(
                float(duration), TaskCategory.GENERIC, positive_feedback=True
            )
        workers.append(profile)
    return workers


def run_platform_benchmarks(quick: bool = False) -> List[BenchResult]:
    """Graph build/prune and Eq. 2 / Eq. 3 batch-evaluation throughput."""
    n = 100 if quick else 400
    n_workers = 50 if quick else 200
    n_ttd = 64 if quick else 256
    history = 30
    repeats = 3 if quick else 5
    commit = git_commit()
    results: List[BenchResult] = []

    # Graph construction + pruning: from_dense validation, the trusted
    # pruning path, and one adjacency query to force the CSR build.
    dense = np.random.default_rng(BENCH_SEED).random((n, n))

    def build() -> None:
        graph = BipartiteGraph.full(dense).prune_below(0.25)
        graph.edges_of_task(0)

    wall = _median_wall(build, repeats)
    results.append(
        BenchResult(
            bench="graph_build_prune",
            params={"n_workers": n, "n_tasks": n, "n_edges": n * n, "repeats": repeats},
            wall_seconds=wall,
            throughput=n * n / wall,
            commit=commit,
        )
    )

    # Eq. 3 matrix (graph-construction hot path).  Fits are warmed first so
    # the record tracks evaluation throughput, not one-off fitting cost.
    estimator = DeadlineEstimator(min_history=3)
    workers = _trained_workers(n_workers, history)
    ttd = np.linspace(1.0, 300.0, n_ttd)

    def eq3() -> None:
        estimator.completion_probability_matrix(workers, ttd)

    wall = _median_wall(eq3, repeats)
    results.append(
        BenchResult(
            bench="eq3_matrix",
            params={
                "n_workers": n_workers,
                "n_ttd": n_ttd,
                "history": history,
                "repeats": repeats,
            },
            wall_seconds=wall,
            throughput=n_workers * n_ttd / wall,
            commit=commit,
        )
    )

    # Eq. 2 sweep (Dynamic Assignment hot path): one batch call per sweep,
    # looped because a single call is microseconds.
    sweep_rng = np.random.default_rng(BENCH_SEED)
    elapsed = sweep_rng.uniform(0.0, 60.0, size=n_workers)
    windows = elapsed + sweep_rng.uniform(1.0, 120.0, size=n_workers)
    iters = 50 if quick else 200

    def eq2() -> None:
        for _ in range(iters):
            estimator.window_probability_batch(workers, elapsed, windows)

    wall = _median_wall(eq2, repeats)
    results.append(
        BenchResult(
            bench="eq2_sweep",
            params={
                "n_rows": n_workers,
                "iters": iters,
                "history": history,
                "repeats": repeats,
            },
            wall_seconds=wall,
            throughput=iters * n_workers / wall,
            commit=commit,
        )
    )
    return results


# ---------------------------------------------------------------- obs guard
class _CountingInstrument:
    """No-op instrument that tallies how often the platform touches it."""

    __slots__ = ("_box",)

    def __init__(self, box: List[int]) -> None:
        self._box = box

    def labels(self, **labels: str) -> "_CountingInstrument":
        self._box[0] += 1
        return self

    def inc(self, amount: float = 1.0) -> None:
        self._box[0] += 1

    def dec(self, amount: float = 1.0) -> None:
        self._box[0] += 1

    def set(self, value: float) -> None:
        self._box[0] += 1

    def observe(self, value: float) -> None:
        self._box[0] += 1


class _CountingObservability:
    """Quacks like Observability but only counts instrument/tracer calls.

    Instrumented call sites are unconditional, so the number of live calls
    in an enabled run equals the number of no-op calls a disabled run makes
    on the same seed — this counts them exactly.
    """

    enabled = True

    def __init__(self) -> None:
        self.box = [0]
        self.tracer = self
        self.registry = self
        self._instrument = _CountingInstrument(self.box)

    # Observability facade
    def bind_engine(self, engine) -> "_CountingObservability":
        return self

    def export(self, name, trace_dir=None, metrics_dir=None) -> List[Path]:
        return []

    # registry facade
    def counter(self, name, help="", labelnames=(), **kwargs) -> _CountingInstrument:
        return self._instrument

    gauge = counter
    histogram = counter

    def add_collect_hook(self, hook) -> None:
        pass

    # tracer facade
    def set_clock(self, clock) -> None:
        pass

    def instant(self, name, cat="", tid=0, **args) -> None:
        self.box[0] += 1

    def complete(self, name, start, end=None, cat="", tid=0, **args) -> None:
        self.box[0] += 1


def _null_call_cost(iters: int = 100_000) -> float:
    """Per-call seconds of one disabled instrument touch (kwargs included)."""
    inc = NULL_INSTRUMENT.inc
    instant = NULL_TRACER.instant
    start = time.perf_counter()
    for _ in range(iters):
        inc()
        instant("x", cat="bench", tid=0, value=1)
    return (time.perf_counter() - start) / (2 * iters)


def run_overhead_benchmark(quick: bool = False) -> BenchResult:
    """The disabled-instrumentation overhead guard (docs/OBSERVABILITY.md).

    Runs the seeded end-to-end scenario once per repeat with observability
    off to get the baseline wall time, counts every obs touchpoint the same
    seeded run makes via :class:`_CountingObservability`, micro-benchmarks
    the cost of one no-op call, and reports

        overhead_fraction = obs_calls * null_call_seconds / disabled_wall

    ``tests/obs/test_overhead.py`` asserts the fraction stays <= 2%.
    """
    from ..platform.policies import react_policy
    from .config import EndToEndConfig
    from .endtoend import run_endtoend

    config = EndToEndConfig(
        n_workers=60,
        arrival_rate=1.0,
        n_tasks=150 if quick else 400,
        drain_time=200.0,
    )
    policy = react_policy(cycles=200)
    repeats = 2 if quick else 3

    disabled_wall = _median_wall(lambda: run_endtoend(policy, config), repeats)

    counting = _CountingObservability()
    start = time.perf_counter()
    run_endtoend(policy, config, observability=counting)
    counted_wall = time.perf_counter() - start
    obs_calls = counting.box[0]

    call_cost = _null_call_cost()
    overhead = obs_calls * call_cost / disabled_wall if disabled_wall > 0 else 0.0
    logger.info(
        "obs overhead: %d calls x %.1f ns / %.3f s disabled = %.4f%%",
        obs_calls, call_cost * 1e9, disabled_wall, overhead * 100,
    )
    return BenchResult(
        bench="endtoend_obs_overhead",
        params={
            "n_workers": config.n_workers,
            "n_tasks": config.n_tasks,
            "repeats": repeats,
            "obs_calls": obs_calls,
            "null_call_ns": call_cost * 1e9,
            "overhead_fraction": overhead,
            "counted_wall_seconds": counted_wall,
        },
        wall_seconds=disabled_wall,
        throughput=obs_calls / disabled_wall if disabled_wall > 0 else 0.0,
        commit=git_commit(),
    )


# -------------------------------------------------------------- parallelism
def run_parallel_benchmark(quick: bool = False, workers: Optional[int] = None) -> BenchResult:
    """1-vs-N-worker wall-clock on the sharded scalability sweep.

    Times :func:`repro.dist.run_scalability_sharded` at ``parallel=1`` and
    ``parallel=workers`` on the same sweep and records the speedup.  The
    speedup is hardware-bound — ``os.cpu_count`` is recorded in the params
    because a 1-core runner cannot show one regardless of shard count
    (shards then time-slice a single core and the pool only adds spawn and
    pickling overhead).
    """
    from ..dist import run_scalability_sharded
    from .config import ScalabilityConfig

    if workers is None:
        workers = 2 if quick else 4
    config = (
        ScalabilityConfig(
            worker_sizes=(50, 100),
            rates=(0.75, 1.5),
            duration=200.0,
            drain_time=200.0,
        )
        if quick
        else ScalabilityConfig(
            worker_sizes=(50, 100, 200),
            rates=(0.75, 1.5, 3.0),
            duration=300.0,
            drain_time=300.0,
        )
    )

    start = time.perf_counter()
    serial = run_scalability_sharded(config, parallel=1)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_scalability_sharded(config, parallel=workers)
    parallel_wall = time.perf_counter() - start

    if serial.results.points != sharded.results.points:
        raise RuntimeError("parallel sweep diverged from serial sweep")

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    logger.info(
        "parallel bench: serial=%.2fs parallel(%d)=%.2fs speedup=%.2fx (cpus=%s)",
        serial_wall, workers, parallel_wall, speedup, os.cpu_count(),
    )
    return BenchResult(
        bench="scalability_parallel",
        params={
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "shards": sharded.shard_count,
            "serial_wall_seconds": serial_wall,
            "speedup_vs_serial": speedup,
        },
        wall_seconds=parallel_wall,
        throughput=sharded.shard_count / parallel_wall if parallel_wall > 0 else 0.0,
        commit=git_commit(),
    )


# ------------------------------------------------------------------- driver
def repo_root() -> Path:
    """Git toplevel if available, else the current directory."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return Path.cwd()
    return Path(out.stdout.strip()) if out.returncode == 0 else Path.cwd()


def write_bench_file(path: Path, results: List[BenchResult]) -> Path:
    path.write_text(
        json.dumps([r.to_dict() for r in results], indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def format_report(results: List[BenchResult]) -> str:
    lines = [
        f"{'bench':<22} {'backend':<10} {'wall (ms)':>10} {'throughput':>14} {'speedup':>8}"
    ]
    for r in results:
        backend = str(r.params.get("backend", "-"))
        speedup = r.params.get("speedup_vs_reference")
        lines.append(
            f"{r.bench:<22} {backend:<10} {r.wall_seconds * 1e3:>10.2f} "
            f"{r.throughput:>14.0f} "
            f"{f'{speedup:.2f}x' if speedup is not None else '-':>8}"
        )
    return "\n".join(lines)


def run_bench(quick: bool = False, out_dir: Optional[Path] = None) -> str:
    """Run every bench, write BENCH_*.json, return the text report."""
    out_dir = repo_root() if out_dir is None else Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    logger.info("bench: matching suite")
    matching = run_matching_benchmarks(quick)
    logger.info("bench: platform suite")
    platform = run_platform_benchmarks(quick)
    platform.append(run_overhead_benchmark(quick))
    logger.info("bench: parallel sweep")
    platform.append(run_parallel_benchmark(quick))
    written = [
        write_bench_file(out_dir / "BENCH_matching.json", matching),
        write_bench_file(out_dir / "BENCH_platform.json", platform),
    ]
    report = [
        "# Perf micro-benchmarks"
        + (" (--quick)" if quick else "")
        + f" [backends: {', '.join(kernels.available_backends())};"
        + f" active: {kernels.active_backend()}]",
        format_report(matching + platform),
    ]
    report.extend(f"# wrote {p}" for p in written)
    return "\n".join(report)
