"""Perf-regression micro-benchmarks for the hot paths.

Times the three kernels the platform spends its wall-clock in — matcher
inner loops, graph construction/pruning, and the Eq. 2 / Eq. 3 batch
evaluators — and writes machine-readable baselines (``BENCH_matching.json``
and ``BENCH_platform.json`` at the repo root) so regressions show up as a
diff instead of a vague "the sweep feels slower".

Every record follows one schema::

    {"bench": ..., "params": {...}, "wall_seconds": ..., "throughput": ...,
     "commit": ...}

``wall_seconds`` is the median over ``repeats`` runs (the minimum is too
flattering on shared CI runners, the mean too noisy); ``throughput`` is the
bench-specific rate (cycles/s for matchers, edges/s for graph build,
cells/s or rows/s for the deadline evaluators).

Usage: ``python -m repro.experiments bench [--quick]`` or the thin driver
``benchmarks/perf/run.py``.
"""

from __future__ import annotations

import json
import logging
import os
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core import kernels
from ..core.deadline import DeadlineEstimator
from ..core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from ..core.matching.react import ReactMatcher, ReactParameters
from ..graph.bipartite import BipartiteGraph
from ..model.task import TaskCategory
from ..model.worker import WorkerProfile
from ..obs.registry import NULL_INSTRUMENT
from ..obs.trace import NULL_TRACER

logger = logging.getLogger(__name__)

#: RNG seed shared by every bench so runs are comparable across commits.
BENCH_SEED = 20130521  # IPDPS 2013 vintage


@dataclass
class BenchResult:
    """One benchmark measurement in the BENCH_*.json schema."""

    bench: str
    params: Dict[str, object]
    wall_seconds: float
    throughput: float
    commit: str = field(default="unknown")

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench": self.bench,
            "params": self.params,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "commit": self.commit,
        }


def git_commit(repo_root: Optional[Path] = None) -> str:
    """Current HEAD hash, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _median_wall(run: Callable[[], None], repeats: int) -> float:
    """Median wall-clock of ``repeats`` runs, after one untimed warmup.

    The warmup absorbs one-time costs that are not the steady-state rate we
    want to track: numba JIT compilation, lazy adjacency-cache builds, and
    cold CPU caches.
    """
    run()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _bench_graph(n_workers: int, n_tasks: int) -> BipartiteGraph:
    """The matcher workload: a seeded full bipartite graph (worst case)."""
    rng = np.random.default_rng(BENCH_SEED)
    return BipartiteGraph.full(rng.random((n_workers, n_tasks)))


# ------------------------------------------------------------------ matching
def run_matching_benchmarks(quick: bool = False) -> List[BenchResult]:
    """Matcher cycles/sec per backend, on the Fig. 3/4 worst-case graph.

    The "reference" backend is the seed implementation kept verbatim in
    :mod:`repro.core.kernels.reference`; its record is the denominator for
    the ``speedup_vs_reference`` recorded on every optimized backend.
    """
    n = 50 if quick else 200
    cycles = 200 if quick else 1000
    repeats = 3 if quick else 5
    graph = _bench_graph(n, n)
    commit = git_commit()

    backends = ["reference", "python"]
    if "numba" in kernels.available_backends():
        backends.append("numba")

    matchers: Dict[str, Callable[[str], object]] = {
        "react": lambda backend: ReactMatcher(
            ReactParameters(cycles=cycles), backend=backend
        ),
        "metropolis": lambda backend: MetropolisMatcher(
            MetropolisParameters(cycles=cycles), backend=backend
        ),
    }

    results: List[BenchResult] = []
    for name, make in matchers.items():
        reference_wall: Optional[float] = None
        for backend in backends:
            matcher = make(backend)

            def run() -> None:
                matcher.match(graph, np.random.default_rng(BENCH_SEED))

            wall = _median_wall(run, repeats)
            params: Dict[str, object] = {
                "matcher": name,
                "backend": backend,
                "n_workers": n,
                "n_tasks": n,
                "n_edges": graph.n_edges,
                "cycles": cycles,
                "repeats": repeats,
            }
            if backend == "reference":
                reference_wall = wall
            elif reference_wall is not None:
                params["speedup_vs_reference"] = reference_wall / wall
            results.append(
                BenchResult(
                    bench=f"{name}_match",
                    params=params,
                    wall_seconds=wall,
                    throughput=cycles / wall,
                    commit=commit,
                )
            )
    return results


# ------------------------------------------------------------------ platform
def _trained_workers(count: int, history: int) -> List[WorkerProfile]:
    """Workers with heavy-tailed histories, as the estimator sees them."""
    rng = np.random.default_rng(BENCH_SEED)
    workers = []
    for worker_id in range(count):
        profile = WorkerProfile(worker_id=worker_id)
        for duration in 5.0 + rng.pareto(2.5, size=history) * 20.0:
            profile.record_completion(
                float(duration), TaskCategory.GENERIC, positive_feedback=True
            )
        workers.append(profile)
    return workers


def run_platform_benchmarks(quick: bool = False) -> List[BenchResult]:
    """Graph build/prune and Eq. 2 / Eq. 3 batch-evaluation throughput."""
    n = 100 if quick else 400
    n_workers = 50 if quick else 200
    n_ttd = 64 if quick else 256
    history = 30
    repeats = 3 if quick else 5
    commit = git_commit()
    results: List[BenchResult] = []

    # Graph construction + pruning: from_dense validation, the trusted
    # pruning path, and one adjacency query to force the CSR build.
    dense = np.random.default_rng(BENCH_SEED).random((n, n))

    def build() -> None:
        graph = BipartiteGraph.full(dense).prune_below(0.25)
        graph.edges_of_task(0)

    wall = _median_wall(build, repeats)
    results.append(
        BenchResult(
            bench="graph_build_prune",
            params={"n_workers": n, "n_tasks": n, "n_edges": n * n, "repeats": repeats},
            wall_seconds=wall,
            throughput=n * n / wall,
            commit=commit,
        )
    )

    # Spatial weight matrix: broadcast haversine vs. the per-cell scalar
    # oracle it replaced (DistanceWeight.matrix_scalar).  Same seeded geo
    # scatter on both sides; the scalar wall is the speedup denominator.
    from ..core.weights import DistanceWeight
    from ..model.task import Task

    geo_rng = np.random.default_rng(BENCH_SEED)
    geo_workers = []
    for worker_id in range(n):
        profile = WorkerProfile(worker_id=worker_id)
        profile.latitude = float(geo_rng.uniform(38.0, 38.2))
        profile.longitude = float(geo_rng.uniform(23.6, 23.8))
        geo_workers.append(profile)
    geo_tasks = [
        Task(
            latitude=float(geo_rng.uniform(38.0, 38.2)),
            longitude=float(geo_rng.uniform(23.6, 23.8)),
            deadline=60.0,
        )
        for _ in range(n)
    ]
    weight = DistanceWeight(max_km=10.0)
    scalar_wall = _median_wall(
        lambda: weight.matrix_scalar(geo_workers, geo_tasks), repeats
    )
    wall = _median_wall(lambda: weight.matrix(geo_workers, geo_tasks), repeats)
    results.append(
        BenchResult(
            bench="distance_weight",
            params={
                "n_workers": n,
                "n_tasks": n,
                "repeats": repeats,
                "scalar_wall_seconds": scalar_wall,
                "speedup_vs_reference": scalar_wall / wall if wall > 0 else 0.0,
            },
            wall_seconds=wall,
            throughput=n * n / wall,
            commit=commit,
        )
    )

    # Eq. 3 matrix (graph-construction hot path).  Fits are warmed first so
    # the record tracks evaluation throughput, not one-off fitting cost.
    estimator = DeadlineEstimator(min_history=3)
    workers = _trained_workers(n_workers, history)
    ttd = np.linspace(1.0, 300.0, n_ttd)

    def eq3() -> None:
        estimator.completion_probability_matrix(workers, ttd)

    wall = _median_wall(eq3, repeats)
    results.append(
        BenchResult(
            bench="eq3_matrix",
            params={
                "n_workers": n_workers,
                "n_ttd": n_ttd,
                "history": history,
                "repeats": repeats,
            },
            wall_seconds=wall,
            throughput=n_workers * n_ttd / wall,
            commit=commit,
        )
    )

    # Eq. 2 sweep (Dynamic Assignment hot path): one batch call per sweep,
    # looped because a single call is microseconds.
    sweep_rng = np.random.default_rng(BENCH_SEED)
    elapsed = sweep_rng.uniform(0.0, 60.0, size=n_workers)
    windows = elapsed + sweep_rng.uniform(1.0, 120.0, size=n_workers)
    iters = 50 if quick else 200

    def eq2() -> None:
        for _ in range(iters):
            estimator.window_probability_batch(workers, elapsed, windows)

    wall = _median_wall(eq2, repeats)
    results.append(
        BenchResult(
            bench="eq2_sweep",
            params={
                "n_rows": n_workers,
                "iters": iters,
                "history": history,
                "repeats": repeats,
            },
            wall_seconds=wall,
            throughput=iters * n_workers / wall,
            commit=commit,
        )
    )
    return results


# ---------------------------------------------------------------- obs guard
class _CountingInstrument:
    """No-op instrument that tallies how often the platform touches it."""

    __slots__ = ("_box",)

    def __init__(self, box: List[int]) -> None:
        self._box = box

    def labels(self, **labels: str) -> "_CountingInstrument":
        self._box[0] += 1
        return self

    def inc(self, amount: float = 1.0) -> None:
        self._box[0] += 1

    def dec(self, amount: float = 1.0) -> None:
        self._box[0] += 1

    def set(self, value: float) -> None:
        self._box[0] += 1

    def observe(self, value: float) -> None:
        self._box[0] += 1


class _CountingObservability:
    """Quacks like Observability but only counts instrument/tracer calls.

    Instrumented call sites are unconditional, so the number of live calls
    in an enabled run equals the number of no-op calls a disabled run makes
    on the same seed — this counts them exactly.
    """

    enabled = True

    def __init__(self) -> None:
        self.box = [0]
        self.tracer = self
        self.registry = self
        self._instrument = _CountingInstrument(self.box)

    # Observability facade
    def bind_engine(self, engine) -> "_CountingObservability":
        return self

    def export(self, name, trace_dir=None, metrics_dir=None) -> List[Path]:
        return []

    # registry facade
    def counter(self, name, help="", labelnames=(), **kwargs) -> _CountingInstrument:
        return self._instrument

    gauge = counter
    histogram = counter

    def add_collect_hook(self, hook) -> None:
        pass

    # tracer facade
    def set_clock(self, clock) -> None:
        pass

    def instant(self, name, cat="", tid=0, **args) -> None:
        self.box[0] += 1

    def complete(self, name, start, end=None, cat="", tid=0, **args) -> None:
        self.box[0] += 1


def _null_call_cost(iters: int = 100_000) -> float:
    """Per-call seconds of one disabled instrument touch (kwargs included)."""
    inc = NULL_INSTRUMENT.inc
    instant = NULL_TRACER.instant
    start = time.perf_counter()
    for _ in range(iters):
        inc()
        instant("x", cat="bench", tid=0, value=1)
    return (time.perf_counter() - start) / (2 * iters)


def run_overhead_benchmark(quick: bool = False) -> BenchResult:
    """The disabled-instrumentation overhead guard (docs/OBSERVABILITY.md).

    Runs the seeded end-to-end scenario once per repeat with observability
    off to get the baseline wall time, counts every obs touchpoint the same
    seeded run makes via :class:`_CountingObservability`, micro-benchmarks
    the cost of one no-op call, and reports

        overhead_fraction = obs_calls * null_call_seconds / disabled_wall

    ``tests/obs/test_overhead.py`` asserts the fraction stays <= 2%.
    """
    from ..platform.policies import react_policy
    from .config import EndToEndConfig
    from .endtoend import run_endtoend

    config = EndToEndConfig(
        n_workers=60,
        arrival_rate=1.0,
        n_tasks=150 if quick else 400,
        drain_time=200.0,
    )
    policy = react_policy(cycles=200)
    repeats = 2 if quick else 3

    disabled_wall = _median_wall(lambda: run_endtoend(policy, config), repeats)

    counting = _CountingObservability()
    start = time.perf_counter()
    run_endtoend(policy, config, observability=counting)
    counted_wall = time.perf_counter() - start
    obs_calls = counting.box[0]

    call_cost = _null_call_cost()
    overhead = obs_calls * call_cost / disabled_wall if disabled_wall > 0 else 0.0
    logger.info(
        "obs overhead: %d calls x %.1f ns / %.3f s disabled = %.4f%%",
        obs_calls, call_cost * 1e9, disabled_wall, overhead * 100,
    )
    return BenchResult(
        bench="endtoend_obs_overhead",
        params={
            "n_workers": config.n_workers,
            "n_tasks": config.n_tasks,
            "repeats": repeats,
            "obs_calls": obs_calls,
            "null_call_ns": call_cost * 1e9,
            "overhead_fraction": overhead,
            "counted_wall_seconds": counted_wall,
        },
        wall_seconds=disabled_wall,
        throughput=obs_calls / disabled_wall if disabled_wall > 0 else 0.0,
        commit=git_commit(),
    )


# -------------------------------------------------------------- parallelism
def run_parallel_benchmark(quick: bool = False, workers: Optional[int] = None) -> BenchResult:
    """1-vs-N-worker wall-clock on the sharded scalability sweep.

    Times :func:`repro.dist.run_scalability_sharded` at ``parallel=1`` and
    ``parallel=workers`` on the same sweep and records the speedup.  The
    speedup is hardware-bound — ``os.cpu_count`` is recorded in the params
    because a 1-core runner cannot show one regardless of shard count
    (shards then time-slice a single core and the pool only adds spawn and
    pickling overhead).
    """
    from ..dist import run_scalability_sharded
    from .config import ScalabilityConfig

    if workers is None:
        workers = 2 if quick else 4
    config = (
        ScalabilityConfig(
            worker_sizes=(50, 100),
            rates=(0.75, 1.5),
            duration=200.0,
            drain_time=200.0,
        )
        if quick
        else ScalabilityConfig(
            worker_sizes=(50, 100, 200),
            rates=(0.75, 1.5, 3.0),
            duration=300.0,
            drain_time=300.0,
        )
    )

    start = time.perf_counter()
    serial = run_scalability_sharded(config, parallel=1)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_scalability_sharded(config, parallel=workers)
    parallel_wall = time.perf_counter() - start

    if serial.results.points != sharded.results.points:
        raise RuntimeError("parallel sweep diverged from serial sweep")

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    logger.info(
        "parallel bench: serial=%.2fs parallel(%d)=%.2fs speedup=%.2fx (cpus=%s)",
        serial_wall, workers, parallel_wall, speedup, os.cpu_count(),
    )
    return BenchResult(
        bench="scalability_parallel",
        params={
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "shards": sharded.shard_count,
            "serial_wall_seconds": serial_wall,
            "speedup_vs_serial": speedup,
        },
        wall_seconds=parallel_wall,
        throughput=sharded.shard_count / parallel_wall if parallel_wall > 0 else 0.0,
        commit=git_commit(),
    )


# ------------------------------------------------------------- end-to-end
#: Sequential pre-cohort-engine driver baseline at the default comparison
#: workload (``EndToEndConfig()`` defaults x ``default_policies()``),
#: measured back-to-back with the optimized tree on the same host (stash
#: the working tree, time the old driver, pop, time the new one).  Pinned
#: here so BENCH_endtoend.json can report ``speedup_vs_pre_pr`` without
#: re-running the superseded driver on every bench invocation; re-measure
#: and update when the comparison workload changes.
PRE_PR_SEQUENTIAL_THROUGHPUT = 2032.0

PRE_PR_SEQUENTIAL: Dict[str, object] = {
    "commit": "b00b4832c94cfd39483e7a16aaaa19d29aa3ad3c",
    "wall_seconds": 7.68,
    "completed": 15601,
    "throughput": PRE_PR_SEQUENTIAL_THROUGHPUT,
}


def run_endtoend_throughput(
    quick: bool = False, parallel: Optional[int] = None
) -> List[BenchResult]:
    """Simulated task-completions/sec on the fixed seeded §V-C workload.

    Two variants over the same deterministic workload (``EndToEndConfig()``
    defaults, seed 42, the §V-C comparison policies):

    * ``sequential`` — ``run_endtoend`` per policy, one after another, the
      way ``python -m repro.experiments endtoend`` drives the comparison.
      One record per policy plus an aggregate whose ``throughput`` is total
      completed tasks over total wall time.
    * ``parallel`` — the same comparison through
      :func:`repro.dist.run_comparison_sharded` with one shard per policy
      (``parallel=0`` skips it).  The per-policy runs are independent, so
      on a host with at least one core per policy the comparison's wall
      collapses to the slowest single policy; a 1-core runner time-slices
      the shards and shows ~1x regardless, which is why ``cpu_count`` is
      recorded next to the speedup.

    Full (non-quick) records carry ``speedup_vs_pre_pr`` against
    :data:`PRE_PR_SEQUENTIAL`, plus a ``projected_parallel_speedup_vs_pre_pr``
    derived from the measured per-policy walls (total completions over the
    slowest policy's wall) — the number the parallel variant converges to
    once every shard has its own core.
    """
    from ..dist import run_comparison_sharded
    from .config import EndToEndConfig
    from .endtoend import default_policies, run_endtoend

    config = (
        EndToEndConfig(
            n_workers=60, arrival_rate=1.5, n_tasks=150, drain_time=150.0
        )
        if quick
        else EndToEndConfig()
    )
    policies = list(default_policies())
    repeats = 1 if quick else 3
    commit = git_commit()
    backend = kernels.active_backend()
    workload: Dict[str, object] = {
        "backend": backend,
        "n_workers": config.n_workers,
        "n_tasks": config.n_tasks,
        "repeats": repeats,
    }
    results: List[BenchResult] = []

    walls: Dict[str, float] = {}
    sequential_runs: Dict[str, Any] = {}
    for policy in policies:

        def run(policy: Any = policy) -> None:
            sequential_runs[policy.name] = run_endtoend(policy, config)

        wall = _median_wall(run, repeats)
        walls[policy.name] = wall
        done = int(sequential_runs[policy.name].summary["completed"])
        results.append(
            BenchResult(
                bench="endtoend_throughput",
                params={
                    "variant": "sequential",
                    "policy": policy.name,
                    "completed": done,
                    **workload,
                },
                wall_seconds=wall,
                throughput=done / wall,
                commit=commit,
            )
        )

    total_wall = sum(walls.values())
    total_done = sum(
        int(r.summary["completed"]) for r in sequential_runs.values()
    )
    agg_params: Dict[str, object] = {
        "variant": "sequential",
        "policy": "all",
        "policies": [p.name for p in policies],
        "completed": total_done,
        "cpu_count": os.cpu_count(),
        **workload,
    }
    if not quick:
        agg_params["pre_pr"] = dict(PRE_PR_SEQUENTIAL)
        agg_params["speedup_vs_pre_pr"] = (
            total_done / total_wall
        ) / PRE_PR_SEQUENTIAL_THROUGHPUT
        agg_params["projected_parallel_speedup_vs_pre_pr"] = (
            total_done / max(walls.values())
        ) / PRE_PR_SEQUENTIAL_THROUGHPUT
    results.append(
        BenchResult(
            bench="endtoend_throughput",
            params=agg_params,
            wall_seconds=total_wall,
            throughput=total_done / total_wall,
            commit=commit,
        )
    )

    shards = len(policies) if parallel is None else parallel
    if shards > 0:
        box: Dict[str, Any] = {}

        def run_sharded() -> None:
            box["run"] = run_comparison_sharded(
                config, policies=policies, parallel=shards
            )

        wall = _median_wall(run_sharded, repeats)
        sharded = box["run"]
        for name, seq in sequential_runs.items():
            if sharded.results[name].summary != seq.summary:
                raise RuntimeError(
                    f"sharded comparison diverged from sequential for {name}"
                )
        params: Dict[str, object] = {
            "variant": "parallel",
            "policy": "all",
            "shards": sharded.shard_count,
            "completed": total_done,
            "cpu_count": os.cpu_count(),
            "speedup_vs_sequential": total_wall / wall if wall > 0 else 0.0,
            **workload,
        }
        if not quick:
            params["speedup_vs_pre_pr"] = (
                total_done / wall
            ) / PRE_PR_SEQUENTIAL_THROUGHPUT
        results.append(
            BenchResult(
                bench="endtoend_throughput",
                params=params,
                wall_seconds=wall,
                throughput=total_done / wall,
                commit=commit,
            )
        )
    logger.info(
        "endtoend bench: sequential %.2fs (%.0f completions/s)",
        total_wall, total_done / total_wall,
    )
    return results


def check_endtoend_regression(
    results: List[BenchResult],
    baseline_path: Path,
    tolerance: float = 0.2,
) -> List[str]:
    """Gate fresh end-to-end throughput against a committed baseline.

    Matches sequential-variant records on (policy, backend, workload) and
    returns one failure string per match whose throughput fell more than
    ``tolerance`` below the committed number.  Parallel-variant records are
    informational only — their rate is a function of the measuring host's
    core count, not of the code.  When *nothing* matches (workload or
    backend drift between the run and the baseline) a single failure is
    returned so the gate cannot pass vacuously.
    """
    records = json.loads(Path(baseline_path).read_text(encoding="utf-8"))

    def key(params: Dict[str, object]) -> tuple:
        return (
            params.get("policy"),
            params.get("backend"),
            params.get("n_workers"),
            params.get("n_tasks"),
        )

    baseline = {
        key(r["params"]): r
        for r in records
        if r.get("bench") == "endtoend_throughput"
        and r["params"].get("variant") == "sequential"
    }
    failures: List[str] = []
    compared = 0
    for r in results:
        if r.bench != "endtoend_throughput":
            continue
        if r.params.get("variant") != "sequential":
            continue
        base = baseline.get(key(r.params))
        if base is None:
            continue
        compared += 1
        floor = float(base["throughput"]) * (1.0 - tolerance)
        if r.throughput < floor:
            failures.append(
                f"endtoend_throughput[{r.params.get('policy')}]: "
                f"{r.throughput:.0f} completions/s is more than "
                f"{tolerance:.0%} below the committed "
                f"{float(base['throughput']):.0f}/s"
            )
    if compared == 0:
        failures.append(
            f"no records comparable to {baseline_path} "
            "(workload or backend mismatch between run and baseline?)"
        )
    return failures


# -------------------------------------------------------------------- service
def run_service_benchmark(quick: bool = False) -> BenchResult:
    """Live-gateway round-trip throughput over real HTTP (docs/SERVICE.md).

    Boots the wall-clock :class:`~repro.service.gateway.ServiceGateway` on
    an ephemeral port and drives it with the closed-loop loadgen at the
    default healthy scenario (admission rate above the arrival rate, so a
    clean run sheds nothing).  ``throughput`` is admitted submits per wall
    second; the submit-to-answer latency percentiles ride along in params
    because a latency regression is the failure mode that matters for a
    real-time gateway, and raw request rate alone would hide it.

    Unlike the DES benches this one is genuinely wall-clock (sleeps,
    sockets, asyncio scheduling), so run-to-run jitter is higher; the
    scenario seed still pins arrivals and work times.
    """
    from .loadtest import LoadtestScenario, quick_scenario, run_loadtest

    scenario = quick_scenario() if quick else LoadtestScenario()
    report, summary = run_loadtest(scenario)
    stats = report.to_dict()
    logger.info(
        "service bench: %d admitted / %d completed in %.2fs (p95 %.3fs)",
        report.admitted, report.completed, report.wall_seconds,
        report.percentile(95) or 0.0,
    )
    return BenchResult(
        bench="service_gateway",
        params={
            "arrival_rate": scenario.arrival_rate,
            "duration": scenario.duration,
            "workers": scenario.workers,
            "time_scale": scenario.time_scale,
            "submitted": report.submitted,
            "admitted": report.admitted,
            "rejected": report.rejected,
            "completed": report.completed,
            "stale": report.stale,
            "errors": report.errors,
            "latency_p50": stats["latency_p50"],
            "latency_p95": stats["latency_p95"],
            "latency_p99": stats["latency_p99"],
            "middleware_on_time": summary.get("on_time_fraction", 0.0),
            "matcher_batches": int(summary.get("batches", 0)),
        },
        wall_seconds=report.wall_seconds,
        throughput=(
            report.admitted / report.wall_seconds if report.wall_seconds else 0.0
        ),
        commit=git_commit(),
    )


# ------------------------------------------------------------------- driver
def repo_root() -> Path:
    """Git toplevel if available, else the current directory."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return Path.cwd()
    return Path(out.stdout.strip()) if out.returncode == 0 else Path.cwd()


def write_bench_file(path: Path, results: List[BenchResult]) -> Path:
    path.write_text(
        json.dumps([r.to_dict() for r in results], indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def format_report(results: List[BenchResult]) -> str:
    lines = [
        f"{'bench':<22} {'detail':<16} {'wall (ms)':>10} {'throughput':>14} {'speedup':>8}"
    ]
    for r in results:
        # The detail column disambiguates records sharing a bench name: the
        # kernel backend for matcher records, variant/policy for end-to-end.
        detail = str(r.params.get("backend", "-"))
        if "variant" in r.params:
            detail = f"{str(r.params['variant'])[:3]}:{r.params.get('policy', 'all')}"
        speedup = r.params.get("speedup_vs_reference")
        if speedup is None:
            speedup = r.params.get("speedup_vs_pre_pr")
        lines.append(
            f"{r.bench:<22} {detail:<16} {r.wall_seconds * 1e3:>10.2f} "
            f"{r.throughput:>14.0f} "
            f"{f'{speedup:.2f}x' if speedup is not None else '-':>8}"
        )
    return "\n".join(lines)


def run_bench(
    quick: bool = False,
    out_dir: Optional[Path] = None,
    endtoend_parallel: Optional[int] = None,
) -> str:
    """Run every bench, write BENCH_*.json, return the text report."""
    out_dir = repo_root() if out_dir is None else Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    logger.info("bench: matching suite")
    matching = run_matching_benchmarks(quick)
    logger.info("bench: platform suite")
    platform = run_platform_benchmarks(quick)
    platform.append(run_overhead_benchmark(quick))
    logger.info("bench: parallel sweep")
    platform.append(run_parallel_benchmark(quick))
    logger.info("bench: end-to-end throughput")
    endtoend = run_endtoend_throughput(quick, parallel=endtoend_parallel)
    logger.info("bench: service gateway")
    service = [run_service_benchmark(quick)]
    written = [
        write_bench_file(out_dir / "BENCH_matching.json", matching),
        write_bench_file(out_dir / "BENCH_platform.json", platform),
        write_bench_file(out_dir / "BENCH_endtoend.json", endtoend),
        write_bench_file(out_dir / "BENCH_service.json", service),
    ]
    report = [
        "# Perf micro-benchmarks"
        + (" (--quick)" if quick else "")
        + f" [backends: {', '.join(kernels.available_backends())};"
        + f" active: {kernels.active_backend()}]",
        format_report(matching + platform + endtoend + service),
    ]
    report.extend(f"# wrote {p}" for p in written)
    return "\n".join(report)
