"""``python -m repro.experiments`` dispatch."""

import sys

from .cli import main

sys.exit(main())
