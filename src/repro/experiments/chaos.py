"""Chaos experiment driver: robustness under injected faults.

Runs each scheduling technique twice on the *same* seeded workload — once
fault-free and once under a :class:`~repro.chaos.FaultSchedule` — with the
cross-component invariants (I1-I7) re-audited every simulated second, and
reports how gracefully each technique degrades.  This is the executable
form of the paper's central robustness claim: REACT keeps meeting soft
deadlines when workers dawdle, abandon, churn and the middleware itself
misbehaves, and its advantage over Greedy and the AMT-like Traditional
baseline must *survive* the chaos, not just the happy path.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..chaos import FaultInjector, FaultLogEntry, FaultSchedule
from ..model.task import reset_task_ids
from ..obs.runtime import ObservabilityLike
from ..platform.cost import PaperCalibratedCost
from ..platform.invariants import InvariantMonitor
from ..platform.policies import (
    SchedulingPolicy,
    greedy_policy,
    react_policy,
    traditional_policy,
)
from ..platform.resilience import ResilienceConfig
from ..platform.server import REACTServer
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess
from ..sim.rng import STREAM_TASKS, STREAM_WORKER_POPULATION, RngRegistry
from ..workload.arrivals import deterministic_gaps
from ..workload.generators import TaskGeneratorConfig, TrafficMonitoringGenerator
from ..workload.population import PopulationConfig, generate_population

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos scenario: workload + fault schedule + resilience knobs."""

    n_workers: int = 120
    arrival_rate: float = 1.5
    n_tasks: int = 900
    seed: int = 42
    deadline_low: float = 60.0
    deadline_high: float = 120.0
    #: Extra simulated seconds after the last arrival (and last fault).
    drain_time: float = 400.0
    #: Invariant re-audit period in simulated seconds.
    invariant_period: float = 1.0
    #: Resilience layer applied to every non-traditional policy (None
    #: disables: withdrawn tasks requeue instantly, no degraded mode).
    resilience: Optional[ResilienceConfig] = ResilienceConfig(
        retry_backoff_base=1.0,
        retry_backoff_factor=2.0,
        retry_backoff_cap=20.0,
        max_reassignments=12,
        latency_budget=15.0,
    )

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_tasks < 1:
            raise ValueError("n_workers and n_tasks must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.drain_time < 0:
            raise ValueError("drain_time must be non-negative")
        if self.invariant_period <= 0:
            raise ValueError("invariant_period must be positive")

    @property
    def arrival_horizon(self) -> float:
        return self.n_tasks / self.arrival_rate

    def horizon(self, schedule: Optional[FaultSchedule]) -> float:
        """End of run: arrivals done, faults closed, drain elapsed."""
        fault_end = schedule.horizon if schedule is not None else 0.0
        return max(self.arrival_horizon, fault_end) + self.drain_time


def standard_schedule(config: ChaosConfig, seed: int = 0) -> FaultSchedule:
    """The all-faults scenario scaled to the config's arrival window."""
    spacing = config.arrival_horizon / 7.0
    return FaultSchedule.standard(
        first_start=spacing,
        spacing=spacing,
        window=spacing / 3.0,
        seed=seed,
    )


@dataclass
class ChaosRunResult:
    """Everything one audited (possibly faulted) run produces."""

    policy_name: str
    faulted: bool
    summary: Dict[str, float]
    on_time_fraction: float
    invariant_audits: int
    fault_log: List[FaultLogEntry] = field(default_factory=list)
    #: (task_id, met_deadline, completed_at) triples for recovery analysis.
    outcomes: List[tuple] = field(default_factory=list)


def run_chaos(
    policy: SchedulingPolicy,
    config: ChaosConfig,
    schedule: Optional[FaultSchedule] = None,
    observability: Optional[ObservabilityLike] = None,
) -> ChaosRunResult:
    """One audited run; ``schedule=None`` gives the fault-free twin."""
    logger.info(
        "chaos: policy=%s seed=%d faulted=%s",
        policy.name, config.seed, schedule is not None,
    )
    reset_task_ids()
    engine = Engine()
    rng = RngRegistry(seed=config.seed)
    resilience = config.resilience if policy.use_probabilistic_model else None
    server = REACTServer(
        engine=engine,
        policy=policy,
        rng=rng,
        cost_model=PaperCalibratedCost(batch_overhead=0.1),
        resilience=resilience,
        observability=observability,
    )
    for profile, behavior in generate_population(
        rng.stream(STREAM_WORKER_POPULATION), PopulationConfig(size=config.n_workers)
    ):
        server.add_worker(profile, behavior)
    server.start()

    monitor = InvariantMonitor(engine, server, period=config.invariant_period).start()
    injector: Optional[FaultInjector] = None
    if schedule is not None:
        injector = FaultInjector(engine, server, schedule).arm()

    generator = TrafficMonitoringGenerator(
        rng.stream(STREAM_TASKS),
        TaskGeneratorConfig(
            deadline_low=config.deadline_low, deadline_high=config.deadline_high
        ),
    )

    def submit(_payload: object) -> None:
        server.submit_task(generator.make(submitted_at=engine.now))

    GeneratorProcess(
        engine,
        deterministic_gaps(config.arrival_rate, config.n_tasks),
        submit,
        kind=EventKind.TASK_ARRIVAL,
    )
    engine.run(until=config.horizon(schedule))
    monitor.stop()
    server.stop()
    server.metrics.check_conservation()

    metrics = server.metrics
    return ChaosRunResult(
        policy_name=policy.name,
        faulted=schedule is not None,
        summary=server.drain_and_summary(),
        on_time_fraction=metrics.on_time_fraction,
        invariant_audits=monitor.audits,
        fault_log=list(injector.log) if injector is not None else [],
        outcomes=[
            (o.task_id, o.met_deadline, o.completed_at) for o in metrics.outcomes
        ],
    )


def default_policies() -> Sequence[SchedulingPolicy]:
    return (react_policy(cycles=1000), greedy_policy(), traditional_policy())


def run_chaos_comparison(
    config: ChaosConfig,
    schedule: Optional[FaultSchedule] = None,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    observability_factory: Optional[Callable[[str], ObservabilityLike]] = None,
) -> Dict[str, Dict[str, ChaosRunResult]]:
    """Faulted + fault-free twin runs for every policy, same seed.

    Returns ``{policy: {"faulted": ..., "clean": ...}}``.
    ``observability_factory`` maps a run label (``"<policy>.faulted"`` /
    ``"<policy>.clean"``) to a fresh Observability; only the faulted twin
    is traced when the factory chooses to (each run needs its own registry).
    """
    if schedule is None:
        schedule = standard_schedule(config)
    results: Dict[str, Dict[str, ChaosRunResult]] = {}
    for policy in policies if policies is not None else default_policies():
        if policy.name in results:
            raise ValueError(f"duplicate policy name {policy.name!r}")

        def _obs(label: str) -> Optional[ObservabilityLike]:
            return observability_factory(label) if observability_factory else None

        results[policy.name] = {
            "clean": run_chaos(
                policy, config, schedule=None,
                observability=_obs(f"{policy.name}.clean"),
            ),
            "faulted": run_chaos(
                policy, config, schedule=schedule,
                observability=_obs(f"{policy.name}.faulted"),
            ),
        }
    return results


def report_chaos(results: Dict[str, Dict[str, ChaosRunResult]]) -> str:
    """Text report: per-policy degradation under the fault schedule."""
    lines = [
        "# Chaos: on-time ratio under injected faults vs. fault-free twin",
        "# (same seed; invariants I1-I7 audited every simulated second)",
        f"{'policy':<14}{'clean':>9}{'faulted':>9}{'delta':>9}"
        f"{'audits':>9}{'faults':>8}{'degraded':>10}",
    ]
    for name, pair in results.items():
        clean, faulted = pair["clean"], pair["faulted"]
        delta = faulted.on_time_fraction - clean.on_time_fraction
        lines.append(
            f"{name:<14}"
            f"{clean.on_time_fraction:>8.1%}"
            f"{faulted.on_time_fraction:>8.1%}"
            f"{delta:>+8.1%}"
            f"{faulted.invariant_audits:>9d}"
            f"{int(faulted.summary['chaos_faults_injected']):>8d}"
            f"{int(faulted.summary['degraded_mode_switches']):>10d}"
        )
    lines.append("")
    lines.append("# faulted-run fault/recovery counters")
    counter_keys = (
        "chaos_abandonments",
        "chaos_no_shows",
        "chaos_corrupted_observations",
        "matcher_stall_seconds",
        "blackout_orphaned",
        "readopted_tasks",
        "deferred_retries",
        "reassignment_budget_exhausted",
        "aborted_batches",
    )
    header = f"{'policy':<14}" + "".join(f"{k.split('_')[-1][:9]:>10}" for k in counter_keys)
    lines.append(header)
    for name, pair in results.items():
        summary = pair["faulted"].summary
        lines.append(
            f"{name:<14}" + "".join(f"{summary[k]:>10}" for k in counter_keys)
        )
    return "\n".join(lines)
