"""CSV/JSON export of experiment results.

The reporting module prints human-readable tables; this one writes
machine-readable files so the regenerated figures can be re-plotted with
any external tool.  Pure stdlib (``csv``/``json``) — no plotting deps.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from ..stats.timeline import Timeline
from .endtoend import EndToEndResult
from .matching_bench import MatchingSweepResult
from .scalability import ScalabilityResult

PathLike = Union[str, Path]


def _write_csv(path: Path, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def export_matching_sweep(result: MatchingSweepResult, path: PathLike) -> Path:
    """Figs. 3-4 data: one row per (algorithm, cycles, task-count) point."""
    path = Path(path)
    _write_csv(
        path,
        ["algorithm", "cycles", "n_tasks", "wall_seconds", "model_seconds",
         "output_weight", "matched"],
        (
            (p.algorithm, p.cycles, p.n_tasks, f"{p.wall_seconds:.6f}",
             f"{p.model_seconds:.4f}", f"{p.output_weight:.4f}", p.matched)
            for p in result.points
        ),
    )
    return path


def export_endtoend(
    results: Dict[str, EndToEndResult], directory: PathLike
) -> List[Path]:
    """Figs. 5-8 data: per-technique cumulative series + a summary JSON."""
    directory = Path(directory)
    written: List[Path] = []
    for name, result in results.items():
        series_path = directory / f"fig5_6_series_{name}.csv"
        rows = [
            (received, on_time, positive)
            for (received, on_time), (_, positive) in zip(
                result.deadline_series, result.feedback_series
            )
        ]
        _write_csv(series_path, ["received", "on_time", "positive_feedback"], rows)
        written.append(series_path)

    summary_path = directory / "fig5_8_summary.json"
    summary_path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: {
            **result.summary,
            "avg_worker_time": result.avg_worker_time,
            "avg_total_time": result.avg_total_time,
        }
        for name, result in results.items()
    }
    summary_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    written.append(summary_path)
    return written


def export_retainer(
    results: Dict[str, EndToEndResult], directory: PathLike
) -> List[Path]:
    """Retainer comparison data: per-policy CSV row + full summary JSON."""
    directory = Path(directory)
    csv_path = directory / "retainer_comparison.csv"
    _write_csv(
        csv_path,
        ["policy", "completed", "on_time_fraction", "p95_total_time",
         "avg_total_time", "pool_capacity", "workers_retained", "walk_ins",
         "patience_departures", "releases", "wage_cost", "assignment_cost",
         "total_cost", "cost_per_completed"],
        (
            (
                name,
                int(r.summary["completed"]),
                f"{r.summary['on_time_fraction']:.4f}",
                "" if r.p95_total_time is None else f"{r.p95_total_time:.3f}",
                "" if r.avg_total_time is None else f"{r.avg_total_time:.3f}",
                r.retainer.pool_capacity if r.retainer else 0,
                r.retainer.workers_retained if r.retainer else 0,
                r.retainer.walk_ins if r.retainer else 0,
                r.retainer.patience_departures if r.retainer else 0,
                r.retainer.releases if r.retainer else 0,
                f"{r.retainer.wage_cost:.4f}" if r.retainer else "0.0000",
                f"{r.retainer.assignment_cost:.4f}" if r.retainer else "0.0000",
                f"{r.retainer.total_cost:.4f}" if r.retainer else "0.0000",
                f"{r.retainer.cost_per_completed:.6f}" if r.retainer else "",
            )
            for name, r in results.items()
        ),
    )
    written = [csv_path]
    json_path = directory / "retainer_summary.json"
    json_path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: {
            **r.summary,
            "p95_total_time": r.p95_total_time,
            "retainer": None if r.retainer is None else asdict(r.retainer),
        }
        for name, r in results.items()
    }
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    written.append(json_path)
    return written


def export_scalability(result: ScalabilityResult, path: PathLike) -> Path:
    """Figs. 9-10 data: one row per (technique, size) point."""
    path = Path(path)
    _write_csv(
        path,
        ["technique", "n_workers", "arrival_rate", "n_tasks",
         "on_time_fraction", "positive_feedback_fraction",
         "avg_worker_time", "avg_total_time", "reassignments",
         "expired_unassigned"],
        (
            (p.policy_name, p.n_workers, p.arrival_rate, p.n_tasks,
             f"{p.on_time_fraction:.4f}", f"{p.positive_feedback_fraction:.4f}",
             "" if p.avg_worker_time is None else f"{p.avg_worker_time:.3f}",
             "" if p.avg_total_time is None else f"{p.avg_total_time:.3f}",
             p.reassignments, p.expired_unassigned)
            for p in result.points
        ),
    )
    return path


def export_timeline(timeline: Timeline, path: PathLike) -> Path:
    """Queue-dynamics series from a :class:`TimelineRecorder`."""
    path = Path(path)
    rows = timeline.as_rows()
    headers = list(rows[0].keys()) if rows else ["time"]
    _write_csv(path, headers, ([row[h] for h in headers] for row in rows))
    return path
