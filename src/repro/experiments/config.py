"""Experiment configurations (one dataclass per paper experiment family).

Defaults reproduce the paper's §V setup exactly; the harnesses and the
pytest-benchmark suites construct these, and EXPERIMENTS.md records the
values used for each regenerated figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class MatchingSweepConfig:
    """Figs. 3-4: matching micro-benchmark on full graphs.

    "We initiate 1000 workers and we match them with a number of tasks that
    range from 1 to 1000 ... We use a full graph where all the tasks are
    connected with edges with every worker."  Weights are U[0, 1].
    """

    n_workers: int = 1000
    task_counts: Tuple[int, ...] = (1, 100, 250, 500, 750, 1000)
    cycles_settings: Tuple[int, ...] = (1000, 3000)
    k_constant: float = 0.05
    seed: int = 7
    #: Also run the offline-optimal Hungarian reference (slow at 1000²).
    include_hungarian: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not self.task_counts or min(self.task_counts) < 1:
            raise ValueError("task_counts must be non-empty positive")
        if max(self.task_counts) > self.n_workers * 100:
            raise ValueError("task count implausibly exceeds worker pool")


@dataclass(frozen=True)
class EndToEndConfig:
    """Figs. 5-8: one region server under sustained task arrivals.

    Paper: 750 online workers, 9.375 tasks/s, 8371 tasks total, batch
    threshold 10, REACT cycles 1000, reassignment threshold 10%, z = 3,
    deadlines U[60, 120] s.
    """

    n_workers: int = 750
    arrival_rate: float = 9.375
    n_tasks: int = 8371
    seed: int = 42
    #: "poisson" or "deterministic" inter-arrival gaps.
    arrival_process: str = "deterministic"
    #: Extra simulated seconds after the last arrival so in-flight work drains.
    drain_time: float = 600.0
    deadline_low: float = 60.0
    deadline_high: float = 120.0
    #: Matcher-latency model: "paper" (Fig. 3 calibration) or "zero".
    cost_model: str = "paper"
    #: Worker churn (§I "short connectivity cycles"): mean online-session
    #: seconds, or None for a static crowd.
    churn_mean_session: Optional[float] = None
    #: Mean offline-absence seconds (only used when churn is enabled).
    churn_mean_absence: float = 120.0
    #: Marketplace mode (docs/RETAINER.md): when set, workers are NOT
    #: pre-connected — they arrive Poisson at this rate (per second) and, if
    #: nothing engages them, browse off after ``worker_patience`` seconds.
    #: Retainer policies require this mode; None keeps the classic §V-C
    #: setup where the whole crowd is online at t = 0.
    worker_arrival_rate: Optional[float] = None
    #: Idle seconds before an unretained marketplace worker leaves.
    worker_patience: float = 30.0

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_tasks < 1:
            raise ValueError("n_workers and n_tasks must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.arrival_process not in ("poisson", "deterministic"):
            raise ValueError(f"unknown arrival process {self.arrival_process!r}")
        if self.cost_model not in ("paper", "zero"):
            raise ValueError(f"unknown cost model {self.cost_model!r}")
        if self.drain_time < 0:
            raise ValueError("drain_time must be non-negative")
        if self.churn_mean_session is not None and self.churn_mean_session <= 0:
            raise ValueError("churn_mean_session must be positive")
        if self.churn_mean_absence <= 0:
            raise ValueError("churn_mean_absence must be positive")
        if self.worker_arrival_rate is not None:
            if self.worker_arrival_rate <= 0:
                raise ValueError("worker_arrival_rate must be positive")
            if self.churn_mean_session is not None:
                raise ValueError(
                    "marketplace mode and churn are mutually exclusive "
                    "(patience departures replace the churn process)"
                )
        if self.worker_patience <= 0:
            raise ValueError("worker_patience must be positive")

    @property
    def horizon(self) -> float:
        """Simulated end time: all arrivals plus the drain window."""
        return self.n_tasks / self.arrival_rate + self.drain_time


@dataclass(frozen=True)
class ScalabilityConfig:
    """Figs. 9-10: the size/rate sweep.

    "We use a graph size of 100, 250, 500, 750 and 1000 workers and the
    tasks are received with a rate of 1.5, 3.125, 6.25, 9.375 and 12.5
    tasks per second respectively."  Tasks scale with the run duration so
    every size sees the same simulated time window.
    """

    worker_sizes: Tuple[int, ...] = (100, 250, 500, 750, 1000)
    rates: Tuple[float, ...] = (1.5, 3.125, 6.25, 9.375, 12.5)
    #: Simulated seconds of arrivals at every size point.
    duration: float = 893.0  # = 8371 / 9.375, the Fig. 5 run length
    seed: int = 42
    drain_time: float = 600.0
    cost_model: str = "paper"

    def __post_init__(self) -> None:
        if len(self.worker_sizes) != len(self.rates):
            raise ValueError("worker_sizes and rates must align")
        if min(self.worker_sizes) < 1 or min(self.rates) <= 0:
            raise ValueError("sizes must be >= 1 and rates positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def points(self) -> Sequence[Tuple[int, float, int]]:
        """(workers, rate, n_tasks) per sweep point."""
        return [
            (w, r, max(1, int(round(r * self.duration))))
            for w, r in zip(self.worker_sizes, self.rates)
        ]

    def endtoend_config(self, workers: int, rate: float, n_tasks: int) -> EndToEndConfig:
        return EndToEndConfig(
            n_workers=workers,
            arrival_rate=rate,
            n_tasks=n_tasks,
            seed=self.seed,
            drain_time=self.drain_time,
            cost_model=self.cost_model,
        )


@dataclass(frozen=True)
class AblationConfig:
    """Parameter sweeps around the design choices DESIGN.md calls out."""

    cycles_sweep: Tuple[int, ...] = (100, 300, 1000, 3000, 10000)
    threshold_sweep: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)
    z_sweep: Tuple[int, ...] = (0, 1, 3, 5, 10)
    k_sweep: Tuple[float, ...] = (0.01, 0.1, 1.0, 10.0)
    seed: int = 11
