"""Closed-loop load test of the live-service gateway (docs/SERVICE.md).

Boots a :class:`~repro.service.gateway.ServiceGateway` in-process on an
ephemeral port, drives it with the :mod:`repro.service.loadgen` harness —
real HTTP round-trips, Poisson arrivals scaled from the paper's
1.5-12.5 tasks/s axis, closed-loop workers — and reports submit-to-answer
latency percentiles plus admitted/rejected counts.

``time_scale`` accelerates the middleware clock so deadline semantics match
a long simulated horizon while the wall run stays short: at the default
10x, a task's 90 clock-second deadline spans 9 wall seconds.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Tuple

from ..service.admission import AdmissionConfig
from ..service.gateway import GatewayConfig, ServiceGateway
from ..service.loadgen import LoadgenConfig, LoadReport, run_loadgen


@dataclass(frozen=True)
class LoadtestScenario:
    """One gateway load-test configuration (wall-clock quantities)."""

    arrival_rate: float = 5.0
    duration: float = 10.0
    workers: int = 20
    time_scale: float = 10.0
    #: Token-bucket sustained rate; default deliberately above arrival_rate
    #: so a healthy run sheds nothing (drop it below to exercise 429s).
    admission_rate: float = 50.0
    admission_burst: int = 100
    max_in_flight: int = 1000
    seed: int = 20130521


def quick_scenario() -> LoadtestScenario:
    return LoadtestScenario(arrival_rate=4.0, duration=4.0, workers=10)


async def _run(scenario: LoadtestScenario) -> Tuple[LoadReport, Dict[str, float]]:
    gateway = ServiceGateway(
        GatewayConfig(
            port=0,
            time_scale=scenario.time_scale,
            seed=scenario.seed,
            admission=AdmissionConfig(
                rate=scenario.admission_rate,
                burst=scenario.admission_burst,
                max_in_flight=scenario.max_in_flight,
            ),
        )
    )
    await gateway.start()
    assert gateway.host is not None and gateway.port is not None
    try:
        report = await run_loadgen(
            LoadgenConfig(
                host=gateway.host,
                port=gateway.port,
                arrival_rate=scenario.arrival_rate,
                duration=scenario.duration,
                workers=scenario.workers,
                heartbeat_interval=0.05,
                work_time_min=0.1,
                work_time_max=0.5,
                drain_grace=3.0,
                seed=scenario.seed,
            )
        )
    finally:
        await gateway.stop()
    return report, gateway.summary()


def run_loadtest(scenario: LoadtestScenario) -> Tuple[LoadReport, Dict[str, float]]:
    """Synchronous wrapper: boot, load, drain; returns (report, summary)."""
    return asyncio.run(_run(scenario))


def format_loadtest(
    scenario: LoadtestScenario, report: LoadReport, summary: Dict[str, float]
) -> str:
    data = report.to_dict()
    lines = [
        "# Live-service gateway load test (docs/SERVICE.md)",
        f"scenario:              {scenario.arrival_rate:g} tasks/s wall x "
        f"{scenario.duration:g} s, {scenario.workers} workers, "
        f"time_scale {scenario.time_scale:g}x",
        f"submitted:             {data['submitted']}",
        f"admitted:              {data['admitted']} "
        f"({data['admitted_per_second']}/s)",
        f"rejected (429):        {data['rejected']} {data['rejected_by_reason']}",
        f"completed:             {data['completed']}",
        f"stale answers:         {data['stale']}",
        f"transport errors:      {data['errors']}",
        f"latency p50/p95/p99:   {data['latency_p50']} / {data['latency_p95']} / "
        f"{data['latency_p99']} wall s",
        f"middleware on-time:    {summary.get('on_time_fraction', 0.0):.1%} "
        f"of received",
        f"matcher batches:       {int(summary.get('batches', 0))}",
    ]
    return "\n".join(lines)
