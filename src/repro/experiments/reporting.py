"""Figure-report rendering: prints the rows/series the paper's figures plot.

Each ``report_*`` function takes the corresponding experiment result and
returns a plain-text report whose numbers can be compared line-by-line with
the published figure; the CLI and the benchmark suites print these.
"""

from __future__ import annotations

from typing import Dict, List

from ..stats.summaries import downsample, format_table
from .ablations import AblationResult, CyclesPoint, KPoint, ScalarPoint
from .endtoend import EndToEndResult
from .matching_bench import MatchingSweepResult
from .scalability import ScalabilityResult


def report_fig3(result: MatchingSweepResult) -> str:
    """Fig. 3: matching execution time vs. number of tasks."""
    rows = []
    for p in sorted(result.points, key=lambda p: (p.algorithm, p.cycles, p.n_tasks)):
        label = f"{p.algorithm}@{p.cycles}" if p.cycles else p.algorithm
        rows.append(
            (label, p.n_tasks, f"{p.wall_seconds*1e3:.2f}", f"{p.model_seconds:.3f}")
        )
    table = format_table(
        ["algorithm", "tasks", "measured_ms", "paper_model_s"], rows
    )
    return (
        "# Fig. 3 — matching execution time (1000 workers, full graph)\n"
        "# paper anchors: greedy@1000 tasks = 99.7 s; react/metropolis = 12 s"
        " @1000 cycles, 45 s @3000 cycles\n" + table
    )


def report_fig4(result: MatchingSweepResult) -> str:
    """Fig. 4: matching output (Σ weights) vs. number of tasks."""
    rows = []
    for p in sorted(result.points, key=lambda p: (p.algorithm, p.cycles, p.n_tasks)):
        label = f"{p.algorithm}@{p.cycles}" if p.cycles else p.algorithm
        rows.append((label, p.n_tasks, f"{p.output_weight:.2f}", p.matched))
    table = format_table(["algorithm", "tasks", "output", "matched"], rows)
    return (
        "# Fig. 4 — matching output (weights U[0,1]; optimum <= #tasks)\n"
        "# paper shape: greedy ~ optimal; react > metropolis at equal cycles\n"
        + table
    )


def _cumulative_rows(series: List[tuple[int, int]], points: int = 15):
    return [(x, y) for x, y in downsample(series, points)] if series else []


def report_endtoend(results: Dict[str, EndToEndResult]) -> str:
    """Headline table for the ``endtoend`` command (Figs. 5-8 source data).

    Shared by the sequential and sharded (``--parallel``) paths, so both
    render byte-identical reports for identical results.
    """
    lines = [
        "# End-to-end run (Figs. 5-8 source data)",
        f"{'policy':<14}{'received':>9}{'completed':>10}{'on-time':>9}"
        f"{'feedback':>9}{'reassign':>9}{'batches':>8}",
    ]
    for name, result in results.items():
        summary = result.summary
        lines.append(
            f"{name:<14}"
            f"{int(summary['received']):>9d}"
            f"{int(summary['completed']):>10d}"
            f"{summary['on_time_fraction']:>8.1%}"
            f"{summary['positive_feedback_fraction']:>8.1%}"
            f"{int(summary['reassignments']):>9d}"
            f"{result.batches:>8d}"
        )
    return "\n".join(lines)


def report_retainer(results: Dict[str, EndToEndResult]) -> str:
    """Retainer comparison: latency and spend, REACT vs REACT + retainer.

    Both runs share one marketplace workload (same seed ⇒ same task and
    worker arrival traces); the table shows what banking arrivals on a paid
    retainer buys (p95 submission→completion latency) and what it costs.
    """
    lines = [
        "# Retainer comparison — marketplace mode (docs/RETAINER.md)",
        "# model: Bernstein et al. retainer; analytic baselines in"
        " repro.retainer.analytic",
        f"{'policy':<16}{'completed':>10}{'on-time':>9}{'p95_total':>11}"
        f"{'avg_total':>11}{'wage':>9}{'cost/task':>11}",
    ]
    for name, result in results.items():
        summary = result.summary
        retainer = result.retainer
        p95 = f"{result.p95_total_time:.1f}" if result.p95_total_time else "n/a"
        avg = f"{result.avg_total_time:.1f}" if result.avg_total_time else "n/a"
        wage = f"{retainer.wage_cost:.2f}" if retainer else "0.00"
        cpc = f"{retainer.cost_per_completed:.4f}" if retainer else "n/a"
        lines.append(
            f"{name:<16}"
            f"{int(summary['completed']):>10d}"
            f"{summary['on_time_fraction']:>8.1%}"
            f"{p95:>11}"
            f"{avg:>11}"
            f"{wage:>9}"
            f"{cpc:>11}"
        )
    for name, result in results.items():
        retainer = result.retainer
        if retainer is None or retainer.pool_capacity == 0:
            continue
        lines.append(
            f"# {name}: pool={retainer.pool_capacity}"
            f" retained={retainer.workers_retained}"
            f" walk-ins={retainer.walk_ins}"
            f" releases={retainer.releases}"
            f" re-pooled={retainer.repooled}"
            f" departures={retainer.patience_departures}"
        )
    return "\n".join(lines)


def report_fig5(results: Dict[str, EndToEndResult]) -> str:
    """Fig. 5: cumulative tasks finished before deadline."""
    blocks = ["# Fig. 5 — tasks finished before deadline vs. tasks received"]
    blocks.append(
        "# paper anchors (750 workers, 9.375 tasks/s, 8371 tasks): "
        "react 6091 on-time; traditional 4264; greedy rises then collapses"
    )
    for name, result in results.items():
        rows = _cumulative_rows(result.deadline_series)
        blocks.append(
            f"\n## {name}: on_time={result.summary['completed_on_time']:.0f}"
            f"/{result.summary['received']:.0f}"
            f" ({result.summary['on_time_fraction']:.1%})\n"
            + format_table(["received", "on_time"], rows)
        )
    return "\n".join(blocks)


def report_fig6(results: Dict[str, EndToEndResult]) -> str:
    """Fig. 6: cumulative positive feedbacks."""
    blocks = ["# Fig. 6 — positive feedbacks vs. tasks received"]
    blocks.append("# paper anchors: react 4941 positive; traditional 3066")
    for name, result in results.items():
        rows = _cumulative_rows(result.feedback_series)
        blocks.append(
            f"\n## {name}: positive={result.summary['positive_feedbacks']:.0f}"
            f" ({result.summary['positive_feedback_fraction']:.1%})\n"
            + format_table(["received", "positive"], rows)
        )
    return "\n".join(blocks)


def report_fig7(results: Dict[str, EndToEndResult]) -> str:
    """Fig. 7: average execution time at the final worker."""
    rows = [
        (name, f"{r.avg_worker_time:.2f}" if r.avg_worker_time else "n/a")
        for name, r in results.items()
    ]
    return (
        "# Fig. 7 — average execution time per worker (final worker only)\n"
        "# paper shape: react shortest; traditional worst (no reaction to delays)\n"
        + format_table(["technique", "avg_worker_time_s"], rows)
    )


def report_fig8(results: Dict[str, EndToEndResult]) -> str:
    """Fig. 8: average total time including queueing and reassignment."""
    rows = [
        (name, f"{r.avg_total_time:.2f}" if r.avg_total_time else "n/a")
        for name, r in results.items()
    ]
    return (
        "# Fig. 8 — average total execution time (submission -> completion)\n"
        "# paper shape: react lowest despite reassignments; greedy queueing"
        " inflates it; traditional worst\n"
        + format_table(["technique", "avg_total_time_s"], rows)
    )


def report_fig9(result: ScalabilityResult) -> str:
    """Fig. 9: % tasks before deadline vs. graph size."""
    rows = [
        (p.policy_name, p.n_workers, p.arrival_rate, f"{p.on_time_fraction:.1%}")
        for p in result.points
    ]
    return (
        "# Fig. 9 — % of tasks before deadline vs. graph size\n"
        "# paper shape: greedy best at size 100, 16% at size 1000;"
        " react mildly degraded; traditional flat\n"
        + format_table(["technique", "workers", "rate", "on_time"], rows)
    )


def report_fig10(result: ScalabilityResult) -> str:
    """Fig. 10: % positive feedback vs. graph size."""
    rows = [
        (
            p.policy_name,
            p.n_workers,
            p.arrival_rate,
            f"{p.positive_feedback_fraction:.1%}",
        )
        for p in result.points
    ]
    return (
        "# Fig. 10 — % positive feedback vs. graph size\n"
        "# paper shape: proportional to Fig. 9 for every technique\n"
        + format_table(["technique", "workers", "rate", "positive_fb"], rows)
    )


def report_ablation(result: AblationResult) -> str:
    """Generic ablation table (cycles / threshold / z / K)."""
    if not result.points:
        return f"# ablation {result.name}: no points"
    first = result.points[0]
    if isinstance(first, CyclesPoint):
        rows = [
            (
                p.cycles,
                "adaptive" if p.adaptive else "fixed",
                f"{p.output_weight:.2f}",
                f"{p.optimality:.1%}",
                f"{p.wall_seconds*1e3:.1f}",
            )
            for p in result.points
        ]
        headers = ["cycles", "mode", "output", "optimality", "wall_ms"]
    elif isinstance(first, KPoint):
        rows = [
            (p.k_constant, p.cycles, f"{p.output_weight:.2f}", f"{p.optimality:.1%}")
            for p in result.points
        ]
        headers = ["K", "cycles", "output", "optimality"]
    elif isinstance(first, ScalarPoint):
        rows = [
            (
                p.value,
                f"{p.on_time_fraction:.1%}",
                f"{p.positive_feedback_fraction:.1%}",
                p.reassignments,
            )
            for p in result.points
        ]
        headers = [result.name, "on_time", "positive_fb", "reassignments"]
    else:  # pragma: no cover - exhaustive over point types
        raise TypeError(f"unknown point type {type(first).__name__}")
    return f"# ablation: {result.name}\n" + format_table(headers, rows)
