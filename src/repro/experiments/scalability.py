"""Scalability experiment driver (Figs. 9-10).

Runs the §V-C end-to-end scenario at each (worker-count, arrival-rate)
point of the paper's sweep and reports, per technique, the fraction of
tasks finished before their deadline (Fig. 9) and the fraction earning
positive feedback (Fig. 10).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..platform.policies import SchedulingPolicy
from .config import ScalabilityConfig
from .endtoend import default_policies, run_endtoend

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScalabilityPoint:
    """One (technique, size) measurement of the sweep."""

    policy_name: str
    n_workers: int
    arrival_rate: float
    n_tasks: int
    on_time_fraction: float
    positive_feedback_fraction: float
    avg_worker_time: Optional[float]
    avg_total_time: Optional[float]
    reassignments: int
    expired_unassigned: int


@dataclass
class ScalabilityResult:
    config: ScalabilityConfig
    points: List[ScalabilityPoint] = field(default_factory=list)

    def series(self, policy_name: str) -> List[ScalabilityPoint]:
        return [p for p in self.points if p.policy_name == policy_name]

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.policy_name)
        return list(seen)


def evaluate_point(
    config: ScalabilityConfig,
    workers: int,
    rate: float,
    n_tasks: int,
    policy: SchedulingPolicy,
) -> ScalabilityPoint:
    """One (technique, size) cell of the sweep — hermetic, so shardable.

    :mod:`repro.dist` fans these cells out across worker processes; keeping
    the cell evaluation here guarantees the sharded sweep computes exactly
    what the sequential one does.
    """
    point_config = config.endtoend_config(workers, rate, n_tasks)
    run = run_endtoend(policy, point_config)
    summary = run.summary
    return ScalabilityPoint(
        policy_name=policy.name,
        n_workers=workers,
        arrival_rate=rate,
        n_tasks=n_tasks,
        on_time_fraction=summary["on_time_fraction"],
        positive_feedback_fraction=summary["positive_feedback_fraction"],
        avg_worker_time=run.avg_worker_time,
        avg_total_time=run.avg_total_time,
        reassignments=int(summary["reassignments"]),
        expired_unassigned=int(summary["expired_unassigned"]),
    )


def run_scalability(
    config: Optional[ScalabilityConfig] = None,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
) -> ScalabilityResult:
    """Run the full sweep; all techniques share the seed at each point."""
    config = config or ScalabilityConfig()
    result = ScalabilityResult(config=config)
    for workers, rate, n_tasks in config.points():
        logger.info(
            "scalability: point workers=%d rate=%.2f tasks=%d", workers, rate, n_tasks
        )
        for policy in policies if policies is not None else default_policies():
            result.points.append(
                evaluate_point(config, workers, rate, n_tasks, policy)
            )
    return result
