"""Matching micro-benchmark driver (Figs. 3-4).

"We initiate 1000 workers and we match them with a number of tasks that
range from 1 to 1000 ... We use a full graph where all the tasks are
connected with edges with every worker, which is the worst case scenario."

For each task count the driver reports, per algorithm:

* Fig. 3 — execution time: both the *measured* wall-clock of our Python
  implementation and the *paper-calibrated* model seconds (the Java
  middleware's constants), so the harness can show that the scaling shape
  matches even though absolute constants differ.
* Fig. 4 — matching output: the objective Σ w_ij x_ij, alongside the
  Hungarian optimum when requested.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.matching.base import Matcher
from ..core.matching.greedy import GreedyMatcher
from ..core.matching.hungarian import HungarianMatcher
from ..core.matching.metropolis import MetropolisMatcher, MetropolisParameters
from ..core.matching.react import ReactMatcher, ReactParameters
from ..graph.bipartite import BipartiteGraph
from ..platform.cost import BatchShape, PaperCalibratedCost
from .config import MatchingSweepConfig


@dataclass(frozen=True)
class MatchingPoint:
    """One (algorithm, task-count) measurement."""

    algorithm: str
    n_tasks: int
    cycles: int
    wall_seconds: float
    model_seconds: float
    output_weight: float
    matched: int


@dataclass
class MatchingSweepResult:
    config: MatchingSweepConfig
    points: List[MatchingPoint] = field(default_factory=list)

    def series(self, algorithm: str, cycles: int = 0) -> List[MatchingPoint]:
        return [
            p
            for p in self.points
            if p.algorithm == algorithm and (cycles == 0 or p.cycles == cycles)
        ]

    def algorithms(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(f"{p.algorithm}@{p.cycles}" if p.cycles else p.algorithm)
        return list(seen)


def _sweep_matchers(config: MatchingSweepConfig) -> List[tuple[str, int, Matcher]]:
    """(label-algorithm, cycles, matcher) triples for the sweep."""
    matchers: List[tuple[str, int, Matcher]] = [("greedy", 0, GreedyMatcher())]
    for cycles in config.cycles_settings:
        matchers.append(
            (
                "react",
                cycles,
                ReactMatcher(
                    ReactParameters(cycles=cycles, k_constant=config.k_constant)
                ),
            )
        )
        matchers.append(
            (
                "metropolis",
                cycles,
                MetropolisMatcher(
                    MetropolisParameters(cycles=cycles, k_constant=config.k_constant)
                ),
            )
        )
    if config.include_hungarian:
        matchers.append(("hungarian", 0, HungarianMatcher()))
    return matchers


def run_matching_sweep(config: Optional[MatchingSweepConfig] = None) -> MatchingSweepResult:
    """Run the Figs. 3-4 sweep and collect every measurement point."""
    config = config or MatchingSweepConfig()
    rng_weights = np.random.default_rng(config.seed)
    result = MatchingSweepResult(config=config)
    cost = PaperCalibratedCost()

    for n_tasks in config.task_counts:
        weights = rng_weights.random((config.n_workers, n_tasks))
        graph = BipartiteGraph.full(weights)
        for algorithm, cycles, matcher in _sweep_matchers(config):
            match_rng = np.random.default_rng(config.seed * 7919 + n_tasks)
            start = time.perf_counter()
            matching = matcher.match(graph, match_rng)
            wall = time.perf_counter() - start
            matching.validate()
            shape = BatchShape(
                n_workers=config.n_workers,
                n_tasks=n_tasks,
                n_edges=graph.n_edges,
                cycles=cycles,
            )
            result.points.append(
                MatchingPoint(
                    algorithm=algorithm,
                    n_tasks=n_tasks,
                    cycles=cycles,
                    wall_seconds=wall,
                    model_seconds=cost.seconds(
                        algorithm if algorithm != "hungarian" else "hungarian", shape
                    ),
                    output_weight=matching.total_weight,
                    matched=matching.size,
                )
            )
    return result
