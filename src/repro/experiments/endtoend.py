"""End-to-end experiment driver (Figs. 5-8).

Builds one region server under the given policy, feeds it the §V-C
workload, and returns the series/summaries the paper's Figures 5-8 plot.
The comparison entry point runs REACT, Greedy and Traditional under the
*same* seed so all three face an identical arrival trace and worker
population.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..model.task import reset_task_ids
from ..obs.runtime import ObservabilityLike
from ..platform.cost import CostModel, PaperCalibratedCost, ZeroCost
from ..platform.policies import (
    RetainerSpec,
    SchedulingPolicy,
    greedy_policy,
    react_policy,
    react_retainer_policy,
    traditional_policy,
)
from ..platform.server import REACTServer
from ..retainer.adaptive import AdaptivePoolSizer, EwmaRateEstimator
from ..retainer.pool import RetainerPool
from ..retainer.recruit import RetainerRecruiter, charge_task_payments
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess
from ..sim.rng import (
    STREAM_ARRIVALS,
    STREAM_CHURN,
    STREAM_TASKS,
    STREAM_WORKER_ARRIVALS,
    STREAM_WORKER_POPULATION,
    RngRegistry,
)
from ..stats.metrics import MetricsCollector
from ..workload.arrivals import deterministic_gaps, poisson_gaps
from ..workload.churn import ChurnProcess
from ..workload.generators import TaskGeneratorConfig, TrafficMonitoringGenerator
from ..workload.population import PopulationConfig, generate_population
from .config import EndToEndConfig

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetainerRunStats:
    """Supply-side accounting of one marketplace-mode run.

    Produced for every marketplace run — a plain on-demand policy gets
    zero wage spend, which is what makes the cost columns of the retainer
    comparison directly comparable.
    """

    pool_capacity: int
    workers_arrived: int
    workers_retained: int
    walk_ins: int
    patience_departures: int
    releases: int
    repooled: int
    wage_cost: float
    assignment_cost: float
    total_cost: float
    cost_per_completed: float


@dataclass
class EndToEndResult:
    """Everything the Figs. 5-8 reports need from one run."""

    policy_name: str
    config: EndToEndConfig
    summary: Dict[str, float]
    deadline_series: List[tuple[int, int]]
    feedback_series: List[tuple[int, int]]
    avg_worker_time: Optional[float]
    avg_total_time: Optional[float]
    withdrawals: int
    batches: int
    max_batch_tasks: int
    metrics: MetricsCollector
    #: p95 of submission→completion latency (the retainer headline metric).
    p95_total_time: Optional[float] = None
    #: Marketplace/retainer accounting; None outside marketplace mode.
    retainer: Optional[RetainerRunStats] = None


#: Fixed per-invocation server cost (graph construction + marshalling) in
#: the end-to-end experiments.  Calibrated from the paper's §III-A remark
#: that "the selection of the workers to assign 1000 tasks takes almost 10
#: seconds" — i.e. ~10 ms of per-task platform overhead beyond the matching
#: loop itself; a ~10-25-task batch costs a few hundred milliseconds.
BATCH_OVERHEAD_SECONDS = 0.1


def _cost_model(config: EndToEndConfig) -> CostModel:
    if config.cost_model == "paper":
        return PaperCalibratedCost(batch_overhead=BATCH_OVERHEAD_SECONDS)
    return ZeroCost()


def run_endtoend(
    policy: SchedulingPolicy,
    config: EndToEndConfig,
    observability: Optional[ObservabilityLike] = None,
) -> EndToEndResult:
    """Simulate one technique under the §V-C workload.

    ``observability`` (see :mod:`repro.obs`) attaches a live tracer/registry
    to the server; None keeps the zero-overhead no-op instruments.
    """
    logger.info(
        "endtoend: policy=%s seed=%d tasks=%d workers=%d",
        policy.name, config.seed, config.n_tasks, config.n_workers,
    )
    if policy.retainer is not None and config.worker_arrival_rate is None:
        raise ValueError(
            f"policy {policy.name!r} has a retainer but the config is not in "
            "marketplace mode; set EndToEndConfig.worker_arrival_rate"
        )
    reset_task_ids()
    engine = Engine()
    rng = RngRegistry(seed=config.seed)

    server = REACTServer(
        engine=engine,
        policy=policy,
        rng=rng,
        cost_model=_cost_model(config),
        observability=observability,
    )
    population = generate_population(
        rng.stream(STREAM_WORKER_POPULATION),
        PopulationConfig(size=config.n_workers),
    )

    pool: Optional[RetainerPool] = None
    recruiter: Optional[RetainerRecruiter] = None
    sizer: Optional[AdaptivePoolSizer] = None
    if config.worker_arrival_rate is not None:
        # Marketplace mode: the crowd arrives over time; a retainer policy
        # banks arrivals into a paid pool, an on-demand policy lets them
        # browse (and leave after `worker_patience` idle seconds).
        spec = policy.retainer
        if spec is not None:
            pool = RetainerPool(
                engine,
                capacity=spec.size,
                cost=spec.cost_config(),
                release_latency=spec.release_latency,
                observability=observability,
            )
        recruiter = RetainerRecruiter(
            engine,
            server,
            supply=population,
            gaps=poisson_gaps(
                config.worker_arrival_rate, rng.stream(STREAM_WORKER_ARRIVALS)
            ),
            patience=config.worker_patience,
            pool=pool,
            sweep_interval=spec.sweep_interval if spec is not None else 1.0,
            observability=observability,
        )
        if spec is not None and spec.adaptive and pool is not None:
            # Live arrival-rate tracking -> periodic c* retunes (ROADMAP:
            # "couple the closed forms back into the simulation").
            sizer = AdaptivePoolSizer(
                engine,
                pool,
                EwmaRateEstimator(),
                wage_per_second=spec.wage_per_second,
                wait_cost_per_second=spec.wait_cost_per_second,
                interval=spec.adaptive_interval,
                metrics=server.metrics,
                on_evict=recruiter.release_to_walkin,
            )
    else:
        for profile, behavior in population:
            server.add_worker(profile, behavior)
    server.start()
    if recruiter is not None:
        recruiter.start(prefill=policy.retainer.size if policy.retainer else 0)

    churn: Optional[ChurnProcess] = None
    if config.churn_mean_session is not None:
        churn = ChurnProcess(
            engine,
            server,
            rng=rng.stream(STREAM_CHURN),
            mean_session_s=config.churn_mean_session,
            mean_absence_s=config.churn_mean_absence,
        )
        churn.track_all_workers()

    generator = TrafficMonitoringGenerator(
        rng.stream(STREAM_TASKS),
        TaskGeneratorConfig(
            deadline_low=config.deadline_low, deadline_high=config.deadline_high
        ),
    )
    if config.arrival_process == "poisson":
        gaps = poisson_gaps(config.arrival_rate, rng.stream(STREAM_ARRIVALS), config.n_tasks)
    else:
        gaps = deterministic_gaps(config.arrival_rate, config.n_tasks)

    def on_arrival(_payload: object) -> None:
        server.submit_task(generator.make(submitted_at=engine.now))
        if sizer is not None:
            sizer.observe_arrival()
        if recruiter is not None:
            recruiter.notify_demand()

    GeneratorProcess(engine, gaps, on_arrival, kind=EventKind.TASK_ARRIVAL)

    engine.run(until=config.horizon)
    if churn is not None:
        churn.stop()
    if sizer is not None:
        sizer.stop()
    if recruiter is not None:
        recruiter.stop()
    server.stop()
    server.metrics.check_conservation()

    metrics = server.metrics
    retainer_stats: Optional[RetainerRunStats] = None
    if recruiter is not None:
        retainer_stats = _settle_retainer(policy, metrics, pool, recruiter)
    logger.info(
        "endtoend: policy=%s done received=%d completed=%d on_time=%d",
        policy.name, metrics.received, metrics.completed, metrics.completed_on_time,
    )
    return EndToEndResult(
        policy_name=policy.name,
        config=config,
        summary=server.drain_and_summary(),
        deadline_series=list(metrics.deadline_series),
        feedback_series=list(metrics.feedback_series),
        avg_worker_time=metrics.average_worker_time(),
        avg_total_time=metrics.average_total_time(),
        withdrawals=len(server.dynamic_assignment.withdrawals),
        batches=len(server.scheduling.batches),
        max_batch_tasks=max(
            (b.n_tasks for b in server.scheduling.batches), default=0
        ),
        metrics=metrics,
        p95_total_time=metrics.total_time_percentiles().get(95),
        retainer=retainer_stats,
    )


def _settle_retainer(
    policy: SchedulingPolicy,
    metrics: MetricsCollector,
    pool: Optional[RetainerPool],
    recruiter: RetainerRecruiter,
) -> RetainerRunStats:
    """Close the economic books of one marketplace run."""
    stats = recruiter.stats
    if pool is None:
        # On-demand baseline: no wage, flat payment per completed task —
        # keeps the cost columns comparable across the policy pair.
        spec = RetainerSpec()
        assignment_cost = spec.task_payment * metrics.completed
        return RetainerRunStats(
            pool_capacity=0,
            workers_arrived=stats.arrived,
            workers_retained=0,
            walk_ins=stats.walk_ins,
            patience_departures=stats.patience_departures,
            releases=0,
            repooled=0,
            wage_cost=0.0,
            assignment_cost=assignment_cost,
            total_cost=assignment_cost,
            cost_per_completed=(
                assignment_cost / metrics.completed if metrics.completed else 0.0
            ),
        )
    charge_task_payments(
        pool,
        [(o.final_worker, o.worker_time) for o in metrics.outcomes],
    )
    ledger = pool.ledger
    assert policy.retainer is not None  # checked in run_endtoend
    return RetainerRunStats(
        # Final capacity: equals the spec size unless adaptive retunes moved it.
        pool_capacity=pool.capacity,
        workers_arrived=stats.arrived,
        workers_retained=stats.retained,
        walk_ins=stats.walk_ins,
        patience_departures=stats.patience_departures,
        releases=stats.releases_requested,
        repooled=stats.repooled,
        wage_cost=ledger.retainer_cost,
        assignment_cost=ledger.assignment_cost,
        total_cost=ledger.total_cost,
        cost_per_completed=ledger.cost_per_task(metrics.completed),
    )


def default_policies() -> Sequence[SchedulingPolicy]:
    """The three §V-C techniques with the paper's parameters."""
    return (react_policy(cycles=1000), greedy_policy(), traditional_policy())


def retainer_policies(spec: Optional[RetainerSpec] = None) -> Sequence[SchedulingPolicy]:
    """The retainer comparison pair: plain REACT vs REACT + retainer.

    Both run in marketplace mode on the same seed, so they face identical
    worker-arrival and task-arrival traces; only the supply treatment
    differs.
    """
    return (react_policy(cycles=1000), react_retainer_policy(retainer=spec))


def run_retainer_comparison(
    config: EndToEndConfig,
    spec: Optional[RetainerSpec] = None,
    observability_factory: Optional[Callable[[str], ObservabilityLike]] = None,
) -> Dict[str, EndToEndResult]:
    """REACT with and without a retainer pool under one marketplace workload."""
    if config.worker_arrival_rate is None:
        raise ValueError(
            "retainer comparison needs marketplace mode; "
            "set EndToEndConfig.worker_arrival_rate"
        )
    return run_comparison(
        config,
        policies=retainer_policies(spec),
        observability_factory=observability_factory,
    )


def run_comparison(
    config: EndToEndConfig,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    observability_factory: Optional[Callable[[str], ObservabilityLike]] = None,
) -> Dict[str, EndToEndResult]:
    """Run every policy on the same seeded workload; keyed by policy name.

    ``observability_factory`` maps a policy name to the
    :class:`~repro.obs.runtime.Observability` for that run — each policy
    needs its own registry/tracer, so a shared instance cannot be reused.
    """
    results: Dict[str, EndToEndResult] = {}
    for policy in policies if policies is not None else default_policies():
        if policy.name in results:
            raise ValueError(f"duplicate policy name {policy.name!r}")
        obs = observability_factory(policy.name) if observability_factory else None
        results[policy.name] = run_endtoend(policy, config, observability=obs)
    return results
