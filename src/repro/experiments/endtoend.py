"""End-to-end experiment driver (Figs. 5-8).

Builds one region server under the given policy, feeds it the §V-C
workload, and returns the series/summaries the paper's Figures 5-8 plot.
The comparison entry point runs REACT, Greedy and Traditional under the
*same* seed so all three face an identical arrival trace and worker
population.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..model.task import reset_task_ids
from ..obs.runtime import ObservabilityLike
from ..platform.cost import CostModel, PaperCalibratedCost, ZeroCost
from ..platform.policies import (
    SchedulingPolicy,
    greedy_policy,
    react_policy,
    traditional_policy,
)
from ..platform.server import REACTServer
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess
from ..sim.rng import (
    STREAM_ARRIVALS,
    STREAM_CHURN,
    STREAM_TASKS,
    STREAM_WORKER_POPULATION,
    RngRegistry,
)
from ..stats.metrics import MetricsCollector
from ..workload.arrivals import deterministic_gaps, poisson_gaps
from ..workload.churn import ChurnProcess
from ..workload.generators import TaskGeneratorConfig, TrafficMonitoringGenerator
from ..workload.population import PopulationConfig, generate_population
from .config import EndToEndConfig

logger = logging.getLogger(__name__)


@dataclass
class EndToEndResult:
    """Everything the Figs. 5-8 reports need from one run."""

    policy_name: str
    config: EndToEndConfig
    summary: Dict[str, float]
    deadline_series: List[tuple[int, int]]
    feedback_series: List[tuple[int, int]]
    avg_worker_time: Optional[float]
    avg_total_time: Optional[float]
    withdrawals: int
    batches: int
    max_batch_tasks: int
    metrics: MetricsCollector


#: Fixed per-invocation server cost (graph construction + marshalling) in
#: the end-to-end experiments.  Calibrated from the paper's §III-A remark
#: that "the selection of the workers to assign 1000 tasks takes almost 10
#: seconds" — i.e. ~10 ms of per-task platform overhead beyond the matching
#: loop itself; a ~10-25-task batch costs a few hundred milliseconds.
BATCH_OVERHEAD_SECONDS = 0.1


def _cost_model(config: EndToEndConfig) -> CostModel:
    if config.cost_model == "paper":
        return PaperCalibratedCost(batch_overhead=BATCH_OVERHEAD_SECONDS)
    return ZeroCost()


def run_endtoend(
    policy: SchedulingPolicy,
    config: EndToEndConfig,
    observability: Optional[ObservabilityLike] = None,
) -> EndToEndResult:
    """Simulate one technique under the §V-C workload.

    ``observability`` (see :mod:`repro.obs`) attaches a live tracer/registry
    to the server; None keeps the zero-overhead no-op instruments.
    """
    logger.info(
        "endtoend: policy=%s seed=%d tasks=%d workers=%d",
        policy.name, config.seed, config.n_tasks, config.n_workers,
    )
    reset_task_ids()
    engine = Engine()
    rng = RngRegistry(seed=config.seed)

    server = REACTServer(
        engine=engine,
        policy=policy,
        rng=rng,
        cost_model=_cost_model(config),
        observability=observability,
    )
    population = generate_population(
        rng.stream(STREAM_WORKER_POPULATION),
        PopulationConfig(size=config.n_workers),
    )
    for profile, behavior in population:
        server.add_worker(profile, behavior)
    server.start()

    churn: Optional[ChurnProcess] = None
    if config.churn_mean_session is not None:
        churn = ChurnProcess(
            engine,
            server,
            rng=rng.stream(STREAM_CHURN),
            mean_session_s=config.churn_mean_session,
            mean_absence_s=config.churn_mean_absence,
        )
        churn.track_all_workers()

    generator = TrafficMonitoringGenerator(
        rng.stream(STREAM_TASKS),
        TaskGeneratorConfig(
            deadline_low=config.deadline_low, deadline_high=config.deadline_high
        ),
    )
    if config.arrival_process == "poisson":
        gaps = poisson_gaps(config.arrival_rate, rng.stream(STREAM_ARRIVALS), config.n_tasks)
    else:
        gaps = deterministic_gaps(config.arrival_rate, config.n_tasks)

    def on_arrival(_payload: object) -> None:
        server.submit_task(generator.make(submitted_at=engine.now))

    GeneratorProcess(engine, gaps, on_arrival, kind=EventKind.TASK_ARRIVAL)

    engine.run(until=config.horizon)
    if churn is not None:
        churn.stop()
    server.stop()
    server.metrics.check_conservation()

    metrics = server.metrics
    logger.info(
        "endtoend: policy=%s done received=%d completed=%d on_time=%d",
        policy.name, metrics.received, metrics.completed, metrics.completed_on_time,
    )
    return EndToEndResult(
        policy_name=policy.name,
        config=config,
        summary=server.drain_and_summary(),
        deadline_series=list(metrics.deadline_series),
        feedback_series=list(metrics.feedback_series),
        avg_worker_time=metrics.average_worker_time(),
        avg_total_time=metrics.average_total_time(),
        withdrawals=len(server.dynamic_assignment.withdrawals),
        batches=len(server.scheduling.batches),
        max_batch_tasks=max(
            (b.n_tasks for b in server.scheduling.batches), default=0
        ),
        metrics=metrics,
    )


def default_policies() -> Sequence[SchedulingPolicy]:
    """The three §V-C techniques with the paper's parameters."""
    return (react_policy(cycles=1000), greedy_policy(), traditional_policy())


def run_comparison(
    config: EndToEndConfig,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    observability_factory: Optional[Callable[[str], ObservabilityLike]] = None,
) -> Dict[str, EndToEndResult]:
    """Run every policy on the same seeded workload; keyed by policy name.

    ``observability_factory`` maps a policy name to the
    :class:`~repro.obs.runtime.Observability` for that run — each policy
    needs its own registry/tracer, so a shared instance cannot be reused.
    """
    results: Dict[str, EndToEndResult] = {}
    for policy in policies if policies is not None else default_policies():
        if policy.name in results:
            raise ValueError(f"duplicate policy name {policy.name!r}")
        obs = observability_factory(policy.name) if observability_factory else None
        results[policy.name] = run_endtoend(policy, config, observability=obs)
    return results
