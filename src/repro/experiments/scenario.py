"""Scenario experiment driver: budgets × geography × heterogeneous tasks.

Runs one policy through the full scenario pack — per-requester budgets
(:mod:`repro.scenarios.budget`), hot-region arrival skew over a multi-cell
:class:`~repro.model.region.RegionGrid` (:mod:`repro.scenarios.spatial`)
and specialist workers (:mod:`repro.scenarios.heterogeneous`) — under the
multi-region :class:`~repro.platform.coordinator.Coordinator`, so region
splits, cross-region task migration and budget load shedding actually
execute instead of sitting behind unit tests.

The comparison entry point runs REACT/Metropolis/Greedy plus the two
related-work baselines (:func:`repro.scenarios.baselines.scenario_policies`)
under the same seed: identical arrival trace, identical worker population
and placement, identical budgets.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..model.task import reset_task_ids
from ..obs.runtime import ObservabilityLike
from ..platform.coordinator import Coordinator
from ..platform.cost import PaperCalibratedCost
from ..platform.policies import SchedulingPolicy
from ..platform.server import REACTServer
from ..scenarios.baselines import scenario_policies
from ..scenarios.budget import BudgetLedger
from ..scenarios.heterogeneous import SpecialistConfig, specialize_population
from ..scenarios.spatial import SpatialConfig, SpatialSampler
from ..sim.engine import Engine
from ..sim.events import EventKind
from ..sim.process import GeneratorProcess
from ..sim.rng import (
    STREAM_ARRIVALS,
    STREAM_SCENARIO_GEO,
    STREAM_TASKS,
    STREAM_WORKER_POPULATION,
    RngRegistry,
)
from ..workload.arrivals import poisson_gaps
from ..workload.generators import CategoryMixGenerator, TaskGeneratorConfig
from ..workload.population import PopulationConfig, generate_population
from .endtoend import BATCH_OVERHEAD_SECONDS

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScenarioConfig:
    """One scenario run: workload, geometry, budgets and specialization."""

    seed: int = 7
    n_tasks: int = 450
    n_workers: int = 120
    #: Poisson arrival rate (tasks/s); with the default worker population
    #: this oversubscribes the hot region so the overload remedy fires.
    arrival_rate: float = 2.5
    #: Simulated horizon: arrivals span ``n_tasks / arrival_rate`` seconds,
    #: the slack beyond that lets queued work drain.
    horizon: float = 400.0
    deadline_low: float = 60.0
    deadline_high: float = 120.0
    spatial: SpatialConfig = field(default_factory=SpatialConfig)
    specialist: SpecialistConfig = field(default_factory=SpecialistConfig)
    #: Queue depth above which the coordinator splits a region (None
    #: disables splitting — the §V-D no-remedy control).
    overload_queue_limit: Optional[int] = 15
    max_splits_per_submit: int = 4
    #: Requester population; tasks are attributed round-robin.
    n_requesters: int = 6
    #: Per-requester budget.  The §V-C reward band averages $0.055/task, so
    #: the default funds ~22 completions per requester — under an even
    #: share of the feasible workload, so budgets bind mid-run and the
    #: edge-gating and shedding paths actually execute for every policy.
    requester_budget: float = 1.2

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.n_workers < 1:
            raise ValueError("need at least one task and one worker")
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {self.arrival_rate}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not (0 < self.deadline_low <= self.deadline_high):
            raise ValueError("need 0 < deadline_low <= deadline_high")
        if self.n_requesters < 1:
            raise ValueError(f"n_requesters must be >= 1, got {self.n_requesters}")
        if self.requester_budget < 0:
            raise ValueError("requester_budget must be non-negative")


@dataclass
class ScenarioResult:
    """Everything the scenario report (and its merge contract) needs.

    Deliberately contains no raw ``region_id`` values: region ids come from
    a process-global counter, so embedding them would make the sharded
    drivers' outputs depend on how many regions earlier runs in the same
    process created — breaking the sharded-vs-sequential byte-identity
    contract.  ``regions_final`` (a count) carries the same information.
    """

    policy_name: str
    config: ScenarioConfig
    summary: Dict[str, float]
    splits_performed: int
    tasks_migrated: int
    workers_migrated: int
    regions_final: int
    shed_by_budget: int
    budget: Dict[str, float]


def run_scenario(
    policy: SchedulingPolicy,
    config: ScenarioConfig,
    observability: Optional[ObservabilityLike] = None,
) -> ScenarioResult:
    """Simulate one technique under the full scenario pack."""
    logger.info(
        "scenario: policy=%s seed=%d tasks=%d workers=%d requesters=%d",
        policy.name, config.seed, config.n_tasks, config.n_workers,
        config.n_requesters,
    )
    reset_task_ids()
    engine = Engine()
    rng = RngRegistry(seed=config.seed)
    sampler = SpatialSampler(config.spatial, rng.stream(STREAM_SCENARIO_GEO))
    ledger = BudgetLedger(
        {rid: config.requester_budget for rid in range(config.n_requesters)}
    )

    def server_factory(
        engine: Engine,
        policy: SchedulingPolicy,
        server_rng: RngRegistry,
        cost_model: object,
    ) -> REACTServer:
        server = REACTServer(
            engine=engine,
            policy=policy,
            rng=server_rng,
            cost_model=cost_model,  # type: ignore[arg-type]
            budget=ledger,
        )
        # Charge-on-completion: the reward is owed when the work lands.
        server.completion_hook = lambda task, worker_id: ledger.charge(task)
        return server

    coordinator = Coordinator(
        engine=engine,
        policy=policy,
        regions=list(config.spatial.make_grid().regions),
        rng=rng,
        cost_model=PaperCalibratedCost(batch_overhead=BATCH_OVERHEAD_SECONDS),
        overload_queue_limit=config.overload_queue_limit,
        max_splits_per_submit=config.max_splits_per_submit,
        observability=observability,
        server_factory=server_factory,
    )

    population = specialize_population(
        generate_population(
            rng.stream(STREAM_WORKER_POPULATION),
            PopulationConfig(size=config.n_workers),
        ),
        config.specialist,
    )
    for profile, behavior in population:
        profile.latitude, profile.longitude = sampler.worker_location()
        coordinator.add_worker(profile, behavior)

    generator = CategoryMixGenerator(
        rng.stream(STREAM_TASKS),
        categories=config.specialist.categories,
        config=TaskGeneratorConfig(
            deadline_low=config.deadline_low, deadline_high=config.deadline_high
        ),
    )
    gaps = poisson_gaps(
        config.arrival_rate, rng.stream(STREAM_ARRIVALS), config.n_tasks
    )
    arrivals = 0

    def on_arrival(_payload: object) -> None:
        nonlocal arrivals
        task = generator.make(submitted_at=engine.now)
        # The mix generator draws deadlines/rewards/categories; geography
        # and ownership are the scenario's to shape.
        task.latitude, task.longitude = sampler.task_location()
        task.requester_id = arrivals % config.n_requesters
        arrivals += 1
        coordinator.submit_task(task)

    GeneratorProcess(engine, gaps, on_arrival, kind=EventKind.TASK_ARRIVAL)

    engine.run(until=config.horizon)
    for server in coordinator.servers:
        server.stop()
    summary = coordinator.aggregate_summary()
    # Conservation only balances at the coordinator: a migrated task is
    # *received* on its original server but finishes on its adopter, so the
    # per-server check would misfire by design.
    finished = summary.get("completed", 0) + summary.get("expired_unassigned", 0)
    if finished > summary.get("received", 0):
        raise AssertionError(
            f"accounting violation: finished={finished} > "
            f"received={summary.get('received', 0)}"
        )

    shed = sum(s.task_management.shed_by_budget for s in coordinator.servers)
    logger.info(
        "scenario: policy=%s done splits=%d migrated=%d shed=%d",
        policy.name, coordinator.splits_performed, coordinator.tasks_migrated, shed,
    )
    return ScenarioResult(
        policy_name=policy.name,
        config=config,
        summary=summary,
        splits_performed=coordinator.splits_performed,
        tasks_migrated=coordinator.tasks_migrated,
        workers_migrated=coordinator.workers_migrated,
        regions_final=len(coordinator.regions),
        shed_by_budget=shed,
        budget=ledger.summary(),
    )


def run_scenario_comparison(
    config: ScenarioConfig,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    observability_factory: Optional[Callable[[str], ObservabilityLike]] = None,
) -> Dict[str, ScenarioResult]:
    """Run every policy on the same seeded scenario; keyed by policy name."""
    results: Dict[str, ScenarioResult] = {}
    for policy in policies if policies is not None else scenario_policies():
        if policy.name in results:
            raise ValueError(f"duplicate policy name {policy.name!r}")
        obs = observability_factory(policy.name) if observability_factory else None
        results[policy.name] = run_scenario(policy, config, observability=obs)
    return results


def report_scenario(results: Dict[str, ScenarioResult]) -> str:
    """Human-readable scenario comparison (CI greps the footer line)."""
    lines: List[str] = []
    lines.append("Scenario pack: budgets x hot-region skew x heterogeneous tasks")
    lines.append("=" * 78)
    header = (
        f"{'policy':<16}{'on-time':>9}{'completed':>11}{'splits':>8}"
        f"{'migrated':>10}{'regions':>9}{'shed':>6}{'spent':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, result in results.items():
        summary = result.summary
        lines.append(
            f"{name:<16}"
            f"{summary.get('on_time_fraction', 0.0):>9.3f}"
            f"{int(summary.get('completed', 0)):>11d}"
            f"{result.splits_performed:>8d}"
            f"{result.tasks_migrated:>10d}"
            f"{result.regions_final:>9d}"
            f"{result.shed_by_budget:>6d}"
            f"{result.budget.get('total_spent', 0.0):>8.2f}"
        )
    lines.append("-" * len(header))
    total_splits = sum(r.splits_performed for r in results.values())
    total_migrated = sum(r.tasks_migrated for r in results.values())
    lines.append(
        f"total splits performed: {total_splits} "
        f"(tasks migrated cross-region: {total_migrated})"
    )
    return "\n".join(lines)
