"""Bipartite-graph substrate: edge-list graphs and assignment-graph builders."""

from .bipartite import BipartiteGraph
from .builders import (
    MAX_WEIGHT,
    AssignmentGraphBuilder,
    GraphBuildReport,
    RewardRange,
)

__all__ = [
    "BipartiteGraph",
    "MAX_WEIGHT",
    "AssignmentGraphBuilder",
    "GraphBuildReport",
    "RewardRange",
]
