"""Weighted bipartite graph between workers and tasks.

Section III-C: vertices in U are available workers, vertices in V are pending
tasks, and an edge (worker_i, task_j) with weight ``w_ij = F(worker_i,
task_j)`` represents a feasible assignment.  The graph is stored as a
structure-of-arrays edge list (parallel NumPy arrays of worker indices, task
indices and weights), which is both the compact representation for sparse
pruned graphs and the fast layout for the randomized matchers that pick
uniform random edges millions of times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BipartiteGraph:
    """Immutable weighted bipartite graph in edge-list form.

    Attributes
    ----------
    n_workers, n_tasks:
        Sizes of the two vertex sets (|U| and |V|).
    edge_workers, edge_tasks:
        ``int64`` arrays of equal length; edge ``e`` joins
        ``edge_workers[e]`` with ``edge_tasks[e]``.
    edge_weights:
        ``float64`` array of the same length; ``w_ij`` values.  The paper's
        experiments use weights in [0, 1] (Eq. 1 accuracies) but the graph
        itself only requires finite non-negative weights.
    """

    n_workers: int
    n_tasks: int
    edge_workers: np.ndarray
    edge_tasks: np.ndarray
    edge_weights: np.ndarray

    def __post_init__(self) -> None:
        ew = np.ascontiguousarray(self.edge_workers, dtype=np.int64)
        et = np.ascontiguousarray(self.edge_tasks, dtype=np.int64)
        wt = np.ascontiguousarray(self.edge_weights, dtype=np.float64)
        object.__setattr__(self, "edge_workers", ew)
        object.__setattr__(self, "edge_tasks", et)
        object.__setattr__(self, "edge_weights", wt)
        if not (len(ew) == len(et) == len(wt)):
            raise ValueError(
                f"edge array length mismatch: {len(ew)}, {len(et)}, {len(wt)}"
            )
        if self.n_workers < 0 or self.n_tasks < 0:
            raise ValueError("vertex counts must be non-negative")
        if len(ew):
            if ew.min() < 0 or ew.max() >= self.n_workers:
                raise ValueError("edge_workers index out of range")
            if et.min() < 0 or et.max() >= self.n_tasks:
                raise ValueError("edge_tasks index out of range")
            if not np.all(np.isfinite(wt)):
                raise ValueError("edge weights must be finite")
            if wt.min() < 0:
                raise ValueError("edge weights must be non-negative")
            # Duplicate (worker, task) pairs would let the matchers count the
            # same assignment twice; reject them eagerly.
            keys = ew * max(self.n_tasks, 1) + et
            if len(np.unique(keys)) != len(keys):
                raise ValueError("duplicate (worker, task) edges")

    @classmethod
    def _trusted(
        cls,
        n_workers: int,
        n_tasks: int,
        edge_workers: np.ndarray,
        edge_tasks: np.ndarray,
        edge_weights: np.ndarray,
    ) -> "BipartiteGraph":
        """Construct without re-running the O(E) validation scans.

        Internal fast path for derivations that provably preserve every
        invariant — e.g. pruning, which takes a subset of already-validated
        edge arrays.  Callers must pass contiguous arrays of the canonical
        dtypes (boolean/fancy indexing of validated arrays yields exactly
        that).
        """
        graph = object.__new__(cls)
        object.__setattr__(graph, "n_workers", n_workers)
        object.__setattr__(graph, "n_tasks", n_tasks)
        object.__setattr__(graph, "edge_workers", edge_workers)
        object.__setattr__(graph, "edge_tasks", edge_tasks)
        object.__setattr__(graph, "edge_weights", edge_weights)
        return graph

    # ------------------------------------------------------- lazy adjacency
    def _cache(self) -> dict:
        """Per-instance cache for derived structures (lazy, never pickled).

        Created on first use so both construction paths (validated and
        trusted) share it; the graph's edge arrays are immutable, so cached
        derivations stay valid for the instance's lifetime.
        """
        cache = self.__dict__.get("_derived_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_derived_cache", cache)
        return cache

    def _csr(self, axis: str) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency over ``axis`` ("worker" or "task").

        Returns ``(indptr, order)``: ``order[indptr[v]:indptr[v+1]]`` are
        the edge indices incident to vertex ``v``, ascending (stable sort
        preserves edge-array order inside each bucket, matching what the
        old ``np.flatnonzero`` scans returned).
        """
        cache = self._cache()
        key = f"csr_{axis}"
        if key not in cache:
            if axis == "worker":
                ids, n = self.edge_workers, self.n_workers
            else:
                ids, n = self.edge_tasks, self.n_tasks
            order = np.argsort(ids, kind="stable")
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(ids, minlength=n), out=indptr[1:])
            cache[key] = (indptr, order)
        return cache[key]

    # ------------------------------------------------------------ queries
    @property
    def n_edges(self) -> int:
        return len(self.edge_workers)

    @property
    def is_empty(self) -> bool:
        return self.n_edges == 0

    @property
    def max_matching_upper_bound(self) -> int:
        """Trivial bound on matching cardinality: min(|U|, |V|)."""
        return min(self.n_workers, self.n_tasks)

    def worker_degrees(self) -> np.ndarray:
        cache = self._cache()
        if "worker_degrees" not in cache:
            cache["worker_degrees"] = np.bincount(
                self.edge_workers, minlength=self.n_workers
            )
        return cache["worker_degrees"].copy()

    def task_degrees(self) -> np.ndarray:
        cache = self._cache()
        if "task_degrees" not in cache:
            cache["task_degrees"] = np.bincount(
                self.edge_tasks, minlength=self.n_tasks
            )
        return cache["task_degrees"].copy()

    def edges_of_task(self, task: int) -> np.ndarray:
        """Edge indices incident to ``task``, ascending."""
        if not 0 <= task < self.n_tasks:
            return np.empty(0, dtype=np.int64)
        indptr, order = self._csr("task")
        return order[indptr[task] : indptr[task + 1]]

    def edges_of_worker(self, worker: int) -> np.ndarray:
        """Edge indices incident to ``worker``, ascending."""
        if not 0 <= worker < self.n_workers:
            return np.empty(0, dtype=np.int64)
        indptr, order = self._csr("worker")
        return order[indptr[worker] : indptr[worker + 1]]

    def to_dense(self, fill: float = np.nan) -> np.ndarray:
        """(n_workers, n_tasks) weight matrix; absent edges take ``fill``."""
        dense = np.full((self.n_workers, self.n_tasks), fill, dtype=np.float64)
        dense[self.edge_workers, self.edge_tasks] = self.edge_weights
        return dense

    # -------------------------------------------------------- constructors
    @classmethod
    def from_dense(
        cls, weights: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> "BipartiteGraph":
        """Build from a (workers × tasks) weight matrix.

        ``mask`` selects which entries become edges; by default every finite
        entry does.  NaN entries never become edges.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        present = np.isfinite(weights)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != weights.shape:
                raise ValueError("mask shape must match weights shape")
            present &= mask
        workers, tasks = np.nonzero(present)
        edge_weights = weights[workers, tasks]
        # ``nonzero`` of a matrix mask yields in-range indices and distinct
        # (worker, task) pairs by construction, and non-finite entries were
        # masked out above — of the validating constructor's scans only the
        # non-negativity check can still fail, so run just that one and take
        # the trusted path (this is the per-batch graph-build hot loop).
        if len(edge_weights) and edge_weights.min() < 0:
            raise ValueError("edge weights must be non-negative")
        return cls._trusted(
            n_workers=weights.shape[0],
            n_tasks=weights.shape[1],
            edge_workers=workers,
            edge_tasks=tasks,
            edge_weights=edge_weights,
        )

    @classmethod
    def full(cls, weights: np.ndarray) -> "BipartiteGraph":
        """Complete bipartite graph from a dense weight matrix.

        This is the paper's Fig. 3/4 "worst case scenario for the WBGM
        algorithms" — every task connected to every worker.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if not np.all(np.isfinite(weights)):
            raise ValueError("full() requires all-finite weights")
        return cls.from_dense(weights)

    @classmethod
    def from_edges(
        cls,
        n_workers: int,
        n_tasks: int,
        edges: Iterable[Tuple[int, int, float]],
    ) -> "BipartiteGraph":
        """Build from (worker, task, weight) triples."""
        triples = list(edges)
        if triples:
            workers, tasks, weights = map(np.asarray, zip(*triples))
        else:
            workers = tasks = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        return cls(
            n_workers=n_workers,
            n_tasks=n_tasks,
            edge_workers=workers,
            edge_tasks=tasks,
            edge_weights=weights,
        )

    @classmethod
    def empty(cls, n_workers: int, n_tasks: int) -> "BipartiteGraph":
        return cls.from_edges(n_workers, n_tasks, [])

    # ------------------------------------------------------------- editing
    def with_pruned_edges(self, keep: np.ndarray) -> "BipartiteGraph":
        """Copy with only the edges selected by boolean mask ``keep``."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n_edges,):
            raise ValueError("keep mask must have one entry per edge")
        # A subset of validated edges cannot violate any invariant (index
        # ranges, finiteness, non-negativity, pair uniqueness), so skip the
        # O(E) re-validation scans via the trusted constructor.
        return BipartiteGraph._trusted(
            n_workers=self.n_workers,
            n_tasks=self.n_tasks,
            edge_workers=self.edge_workers[keep],
            edge_tasks=self.edge_tasks[keep],
            edge_weights=self.edge_weights[keep],
        )

    def prune_below(self, min_weight: float) -> "BipartiteGraph":
        """Drop low-weight edges (§IV-A: "low weighted edges could be pruned
        to reduce the graph's size since they would imply a task assignment
        with worker of a low quality")."""
        return self.with_pruned_edges(self.edge_weights >= min_weight)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(workers={self.n_workers}, tasks={self.n_tasks}, "
            f"edges={self.n_edges})"
        )
