"""Assignment-graph construction (paper §IV-A "Graph Construction").

The Scheduling Component builds, per batch, the weighted bipartite graph
between the region's available workers and its unassigned tasks:

1. **Probabilistic pruning** (Eq. 3): the edge (worker_i, task_j) is only
   instantiated when ``Pr(ExecTime_ij < TimeToDeadline_ij)`` exceeds an
   application-defined bound; otherwise it is pruned outright.
2. **Cold start**: "for the first z assignments of a new worker, we
   instantiate the edges with all available tasks and we assign the maximum
   value of F(worker_i, task_j) to train him" — untrained workers connect
   everywhere with weight 1.0.
3. **Weights**: Eq. (1) accuracy (or any :class:`WeightFunction`).
4. **Optional reward-range filtering** (§III-C extension): an edge is not
   instantiated when the task's reward falls outside the worker's declared
   acceptable range.
5. **Optional low-weight pruning** (§IV-A suggestion) to shrink the graph.

The whole construction is vectorized: one weight-matrix call, one Eq. (3)
probability-matrix call, boolean masks, then a single ``from_dense``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..core.deadline import DeadlineEstimator
from ..core.weights import WeightFunction
from ..model.task import Task
from ..model.worker import WorkerProfile
from .bipartite import BipartiteGraph

#: Weight granted to cold-start (untrained) workers' edges.
MAX_WEIGHT = 1.0


class BudgetGate(Protocol):
    """Structural interface for per-requester budget enforcement.

    Implemented by :class:`repro.scenarios.budget.BudgetLedger`; declared
    here (structurally, so the graph layer never imports the scenarios
    layer) because edge *non-instantiation* is how every matcher respects
    budgets at once — a task whose requester cannot fund its reward gets no
    edges, so no matching algorithm can assign it.
    """

    def allows(self, task: Task) -> bool:
        """Whether the task's requester can still fund its reward."""
        ...


@dataclass(frozen=True)
class RewardRange:
    """A worker's acceptable task-reward interval (§III-C pricing extension)."""

    low: float = 0.0
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid reward range [{self.low}, {self.high}]")

    def accepts(self, reward: float) -> bool:
        return self.low <= reward <= self.high


@dataclass
class GraphBuildReport:
    """Accounting of what the builder did (for tests and tracing)."""

    candidate_edges: int = 0
    pruned_by_probability: int = 0
    pruned_by_reward: int = 0
    pruned_by_budget: int = 0
    pruned_by_weight: int = 0
    cold_start_workers: int = 0
    kept_edges: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


class AssignmentGraphBuilder:
    """Builds the per-batch worker×task bipartite graph.

    Parameters
    ----------
    weight_function:
        ``F(worker, task)`` producing w_ij.
    estimator:
        Eq. (3) evaluator (also defines the cold-start ``z``).
    edge_probability_bound:
        The "application-defined lower bound" on Eq. (3) under which edges
        are pruned.
    min_weight:
        When set, additionally prune trained-worker edges below this weight.
    reward_ranges:
        Optional worker_id → :class:`RewardRange` map enabling the §III-C
        pricing extension.
    budget:
        Optional :class:`BudgetGate`: tasks whose requester can no longer
        fund the reward get no edges at all (budget-aware scenarios).
    """

    def __init__(
        self,
        weight_function: WeightFunction,
        estimator: DeadlineEstimator,
        edge_probability_bound: float = 0.1,
        min_weight: Optional[float] = None,
        reward_ranges: Optional[Dict[int, RewardRange]] = None,
        budget: Optional[BudgetGate] = None,
    ) -> None:
        if not (0.0 <= edge_probability_bound <= 1.0):
            raise ValueError(
                f"edge_probability_bound must be in [0,1], got {edge_probability_bound}"
            )
        if min_weight is not None and not (0.0 <= min_weight <= 1.0):
            raise ValueError(f"min_weight must be in [0,1], got {min_weight}")
        self.weight_function = weight_function
        self.estimator = estimator
        self.edge_probability_bound = edge_probability_bound
        self.min_weight = min_weight
        self.reward_ranges = reward_ranges or {}
        self.budget = budget

    def build(
        self,
        workers: Sequence[WorkerProfile],
        tasks: Sequence[Task],
        now: float,
    ) -> Tuple[BipartiteGraph, GraphBuildReport]:
        """Construct the pruned, weighted graph at simulated time ``now``.

        Worker index ``i`` in the returned graph corresponds to
        ``workers[i]``, task index ``j`` to ``tasks[j]``.
        """
        report = GraphBuildReport()
        n_w, n_t = len(workers), len(tasks)
        if n_w == 0 or n_t == 0:
            return BipartiteGraph.empty(n_w, n_t), report
        report.candidate_edges = n_w * n_t

        ttd = np.array([task.time_to_deadline(now) for task in tasks], dtype=np.float64)
        # Two distinct notions of "new worker" (§IV-A): the cold-start boost
        # applies to a worker's first z *assignments* ("for the first z
        # assignments of a new worker, we instantiate the edges with all
        # available tasks and we assign the maximum value"), while the Eq. 3
        # probability model activates once the profile holds enough duration
        # observations (handled inside the estimator).
        cold_start = np.array(
            [w.assignment_count < self.estimator.min_history for w in workers],
            dtype=bool,
        )
        report.cold_start_workers = int(cold_start.sum())

        if self.edge_probability_bound > 0.0:
            # Eq. (3) probabilities; untrained rows come back as 1.0 except
            # for already-expired tasks (columns with ttd <= 0), which stay 0.
            prob = self.estimator.completion_probability_matrix(workers, ttd)
            keep = prob >= self.edge_probability_bound
            # Cold-start workers connect to every (non-expired) task
            # regardless of the probability bound.
            keep |= cold_start[:, None] & (ttd > 0)[None, :]
        else:
            # A zero bound keeps every edge (probabilities are clipped to
            # [0, 1], so ``prob >= 0`` is vacuous) — the non-probabilistic
            # policies route through here, and evaluating Eq. 3 just to
            # compare it against zero was a measurable share of their
            # per-batch cost.
            keep = np.ones((n_w, n_t), dtype=bool)
        report.pruned_by_probability = report.candidate_edges - int(keep.sum())

        # Weights: Eq. (1) for established workers, MAX_WEIGHT for cold-start.
        weights = self.weight_function.matrix(workers, tasks)
        if weights.shape != (n_w, n_t):
            raise ValueError(
                f"weight function returned shape {weights.shape}, "
                f"expected {(n_w, n_t)}"
            )
        weights = np.where(~cold_start[:, None], weights, MAX_WEIGHT)

        # Reward-range filtering (edges "not instantiated" per §III-C).
        if self.reward_ranges:
            rewards = np.array([task.reward for task in tasks], dtype=np.float64)
            for i, worker in enumerate(workers):
                rng = self.reward_ranges.get(worker.worker_id)
                if rng is None:
                    continue
                ok = (rewards >= rng.low) & (rewards <= rng.high)
                dropped = int((keep[i] & ~ok).sum())
                report.pruned_by_reward += dropped
                keep[i] &= ok

        # Budget gate: a task whose requester cannot fund its reward gets
        # its whole column cleared — no matcher, randomized or greedy, can
        # then pick it up.  Applies to cold-start edges too: training a
        # worker on an unfundable task would still owe its reward.
        if self.budget is not None:
            funded = np.array(
                [self.budget.allows(task) for task in tasks], dtype=bool
            )
            if not funded.all():
                dropped = int((keep & ~funded[None, :]).sum())
                report.pruned_by_budget = dropped
                keep &= funded[None, :]

        # Low-weight pruning (established workers only — cold-start edges
        # are the training mechanism and must survive).
        if self.min_weight is not None:
            heavy = weights >= self.min_weight
            heavy |= cold_start[:, None]
            dropped = int((keep & ~heavy).sum())
            report.pruned_by_weight = dropped
            keep &= heavy

        graph = BipartiteGraph.from_dense(weights, mask=keep)
        report.kept_edges = graph.n_edges
        return graph, report
