"""Per-function control-flow graphs with explicit await-point nodes.

The dataflow rules (ASYNC003, TIME001) need more than single-statement AST
matching: a check-then-act race is a *path* property — a guard evaluated
before a suspension point and acted on after it.  This module lowers one
``def``/``async def`` body into a small CFG whose nodes carry the function's
statements and whose structure answers exactly the questions the rules ask:

* **Elements, not raw statements.**  Each basic block holds an ordered list
  of :class:`Element` records.  An element is either a plain statement, or a
  branch-condition evaluation (``is_test``), and is flagged ``awaits`` when
  executing it suspends the coroutine (an ``await`` expression, the
  iteration edge of an ``async for``, entry/exit of an ``async with``, or an
  async comprehension).  A statement containing an await is isolated into
  its own block so every suspension point is a distinct CFG node — the
  "await-point nodes" the solver's edge semantics key on.
* **Control-dependence guards.**  Every block records the stack of branch
  conditions it is control-dependent on (``Guard(test, branch)``), built
  structurally while lowering ``if``/``while``/``for``.  ASYNC003 uses this
  to ask "which guards protect this mutation?" without a post-dominator
  pass.  Early-return guards (``if x: return`` falling through) are *not*
  modelled as dependence — the rules stay conservative about them.
* **Approximate exception edges.**  ``try`` lowers with may-edges from the
  entry and exit of the protected body to every handler.  That is coarse
  (an exception can occur mid-body) but sound enough for the may-analyses
  built on top, and keeps the graph linear in the statement count.

The CFG is purely syntactic, like everything else in ``repro.analysis`` —
no code is imported or executed.  Nested function definitions are opaque
single statements here; :func:`function_cfgs` yields a separate CFG for
each of them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def contains_await(node: ast.AST) -> bool:
    """True when evaluating ``node`` can suspend the enclosing coroutine.

    Checks for ``await`` expressions and async comprehension generators.
    Does not descend into nested function definitions (their bodies run on
    their own activation, not at this program point) — including when
    ``node`` itself is a nested ``def`` statement.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
        return False
    for child in _walk_same_function(node):
        if isinstance(child, ast.Await):
            return True
        if isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            if any(gen.is_async for gen in child.generators):
                return True
    return False


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that refuses to enter nested function/class bodies."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


@dataclass(frozen=True)
class Guard:
    """One branch condition a block is control-dependent on."""

    #: The test expression as written (``if``/``while`` condition).
    test: ast.expr
    #: True for the then/body branch, False for the else branch.
    branch: bool


@dataclass(frozen=True)
class Element:
    """One unit of execution inside a basic block."""

    node: ast.AST
    #: Branch-condition evaluation (``node`` is the test expression).
    is_test: bool = False
    #: Executing this element crosses a suspension point.
    awaits: bool = False


@dataclass
class Block:
    """A basic block: straight-line elements plus its edges and guards."""

    id: int
    elements: List[Element] = field(default_factory=list)
    succ: List[int] = field(default_factory=list)
    pred: List[int] = field(default_factory=list)
    guards: Tuple[Guard, ...] = ()

    @property
    def awaits(self) -> bool:
        """True when any element of the block is a suspension point."""
        return any(element.awaits for element in self.elements)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    name: str
    func: FunctionNode
    blocks: List[Block]
    entry: int
    exit: int
    is_async: bool

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def await_blocks(self) -> List[Block]:
        """Every block containing a suspension point."""
        return [b for b in self.blocks if b.awaits]

    def reverse_postorder(self) -> List[int]:
        """Block ids in reverse postorder from the entry (loop-friendly)."""
        seen = set()
        order: List[int] = []

        def visit(block_id: int) -> None:
            # Iterative DFS; recursion would overflow on long chains.
            stack: List[Tuple[int, int]] = [(block_id, 0)]
            seen.add(block_id)
            while stack:
                current, index = stack.pop()
                succ = self.blocks[current].succ
                if index < len(succ):
                    stack.append((current, index + 1))
                    nxt = succ[index]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)

        visit(self.entry)
        # Unreachable blocks (e.g. code after `while True` with no break)
        # still get states so rules can scan them.
        for block in self.blocks:
            if block.id not in seen:
                visit(block.id)
        order.reverse()
        return order


class _LoopContext:
    """Targets for ``break``/``continue`` while lowering a loop body."""

    def __init__(self, head: int, exit_block: int) -> None:
        self.head = head
        self.exit = exit_block


class _Builder:
    """Lowers one function body into a :class:`CFG`."""

    def __init__(self, func: FunctionNode, name: str) -> None:
        self.func = func
        self.name = name
        self.blocks: List[Block] = []
        self.entry = self._new_block(())
        self.exit = self._new_block(())
        self.loops: List[_LoopContext] = []

    # ------------------------------------------------------------- plumbing
    def _new_block(self, guards: Tuple[Guard, ...]) -> int:
        block = Block(id=len(self.blocks), guards=guards)
        self.blocks.append(block)
        return block.id

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succ:
            self.blocks[src].succ.append(dst)
        if src not in self.blocks[dst].pred:
            self.blocks[dst].pred.append(src)

    def _append(self, block_id: int, element: Element) -> None:
        self.blocks[block_id].elements.append(element)

    # ------------------------------------------------------------- lowering
    def build(self) -> CFG:
        last = self._body(self.func.body, self.entry, ())
        if last is not None:
            self._edge(last, self.exit)
        return CFG(
            name=self.name,
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            is_async=isinstance(self.func, ast.AsyncFunctionDef),
        )

    def _body(
        self, stmts: Sequence[ast.stmt], current: int, guards: Tuple[Guard, ...]
    ) -> Optional[int]:
        """Lower a statement sequence; returns the live tail block or None
        when every path terminated (return/raise/break/continue)."""
        live: Optional[int] = current
        for stmt in stmts:
            if live is None:
                # Dead code after a terminator still gets a block so rules
                # can inspect it, but it has no predecessors.
                live = self._new_block(guards)
            live = self._statement(stmt, live, guards)
        return live

    def _statement(
        self, stmt: ast.stmt, current: int, guards: Tuple[Guard, ...]
    ) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current, guards)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current, guards)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current, guards)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current, guards)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current, guards)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current, guards)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(current, Element(stmt, awaits=contains_await(stmt)))
            self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                self._edge(current, self.loops[-1].exit)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self._edge(current, self.loops[-1].head)
            return None
        # Simple statement (incl. nested def/class, treated as opaque).
        awaits = contains_await(stmt)
        if awaits:
            # Isolate the suspension into its own await-point node.
            point = self._new_block(guards)
            self._edge(current, point)
            self._append(point, Element(stmt, awaits=True))
            after = self._new_block(guards)
            self._edge(point, after)
            return after
        self._append(current, Element(stmt))
        return current

    def _if(self, stmt: ast.If, current: int, guards: Tuple[Guard, ...]) -> Optional[int]:
        self._append(
            current, Element(stmt.test, is_test=True, awaits=contains_await(stmt.test))
        )
        join = self._new_block(guards)
        then_entry = self._new_block(guards + (Guard(stmt.test, True),))
        self._edge(current, then_entry)
        then_tail = self._body(stmt.body, then_entry, self.blocks[then_entry].guards)
        if then_tail is not None:
            self._edge(then_tail, join)
        if stmt.orelse:
            else_entry = self._new_block(guards + (Guard(stmt.test, False),))
            self._edge(current, else_entry)
            else_tail = self._body(stmt.orelse, else_entry, self.blocks[else_entry].guards)
            if else_tail is not None:
                self._edge(else_tail, join)
        else:
            self._edge(current, join)
        if not self.blocks[join].pred:
            return None
        return join

    def _while(
        self, stmt: ast.While, current: int, guards: Tuple[Guard, ...]
    ) -> Optional[int]:
        head = self._new_block(guards)
        self._edge(current, head)
        self._append(
            head, Element(stmt.test, is_test=True, awaits=contains_await(stmt.test))
        )
        exit_block = self._new_block(guards)
        body_guards = guards + (Guard(stmt.test, True),)
        body_entry = self._new_block(body_guards)
        self._edge(head, body_entry)
        is_forever = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        if not is_forever:
            self._edge(head, exit_block)
        self.loops.append(_LoopContext(head, exit_block))
        body_tail = self._body(stmt.body, body_entry, body_guards)
        self.loops.pop()
        if body_tail is not None:
            self._edge(body_tail, head)
        if stmt.orelse:
            else_tail = self._body(stmt.orelse, exit_block, guards)
            if else_tail is not None and else_tail != exit_block:
                return else_tail
        if not self.blocks[exit_block].pred:
            return None
        return exit_block

    def _for(
        self, stmt: Union[ast.For, ast.AsyncFor], current: int, guards: Tuple[Guard, ...]
    ) -> Optional[int]:
        head = self._new_block(guards)
        self._edge(current, head)
        # The head element models "advance the iterator and bind the target";
        # an async for suspends on every iteration edge.
        self._append(
            head,
            Element(
                stmt,
                awaits=isinstance(stmt, ast.AsyncFor) or contains_await(stmt.iter),
            ),
        )
        exit_block = self._new_block(guards)
        body_guards = guards + (Guard(stmt.iter, True),)
        body_entry = self._new_block(body_guards)
        self._edge(head, body_entry)
        self._edge(head, exit_block)
        self.loops.append(_LoopContext(head, exit_block))
        body_tail = self._body(stmt.body, body_entry, body_guards)
        self.loops.pop()
        if body_tail is not None:
            self._edge(body_tail, head)
        if stmt.orelse:
            else_tail = self._body(stmt.orelse, exit_block, guards)
            if else_tail is not None and else_tail != exit_block:
                return else_tail
        return exit_block

    def _try(self, stmt: ast.Try, current: int, guards: Tuple[Guard, ...]) -> Optional[int]:
        body_entry = self._new_block(guards)
        self._edge(current, body_entry)
        body_tail = self._body(stmt.body, body_entry, guards)
        join = self._new_block(guards)
        # May-edges: an exception can surface at the start or end of the
        # protected region (approximation documented in the module docstring).
        handler_tails: List[Optional[int]] = []
        for handler in stmt.handlers:
            handler_entry = self._new_block(guards)
            self._edge(body_entry, handler_entry)
            if body_tail is not None:
                self._edge(body_tail, handler_entry)
            handler_tails.append(self._body(handler.body, handler_entry, guards))
        if body_tail is not None:
            if stmt.orelse:
                body_tail = self._body(stmt.orelse, body_tail, guards)
            if body_tail is not None:
                self._edge(body_tail, join)
        for tail in handler_tails:
            if tail is not None:
                self._edge(tail, join)
        if stmt.finalbody:
            if not self.blocks[join].pred:
                # All paths terminated; the finally body still runs on the
                # way out, so lower it reachable from the protected region.
                self._edge(body_entry, join)
            return self._body(stmt.finalbody, join, guards)
        if not self.blocks[join].pred:
            return None
        return join

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], current: int, guards: Tuple[Guard, ...]
    ) -> Optional[int]:
        is_async = isinstance(stmt, ast.AsyncWith)
        enter_awaits = is_async or any(contains_await(item) for item in stmt.items)
        if enter_awaits:
            point = self._new_block(guards)
            self._edge(current, point)
            self._append(point, Element(stmt, awaits=True))
            current = self._new_block(guards)
            self._edge(point, current)
        else:
            self._append(current, Element(stmt))
        tail = self._body(stmt.body, current, guards)
        if tail is not None and is_async:
            # ``__aexit__`` suspends again on the way out.
            point = self._new_block(guards)
            self._edge(tail, point)
            self._append(point, Element(stmt, awaits=True))
            after = self._new_block(guards)
            self._edge(point, after)
            return after
        return tail

    def _match(self, stmt: ast.Match, current: int, guards: Tuple[Guard, ...]) -> Optional[int]:
        self._append(
            current,
            Element(stmt.subject, is_test=True, awaits=contains_await(stmt.subject)),
        )
        join = self._new_block(guards)
        any_live = False
        for case in stmt.cases:
            case_entry = self._new_block(guards + (Guard(stmt.subject, True),))
            self._edge(current, case_entry)
            tail = self._body(case.body, case_entry, self.blocks[case_entry].guards)
            if tail is not None:
                self._edge(tail, join)
                any_live = True
        # A match with no irrefutable case can fall through.
        self._edge(current, join)
        return join if (any_live or self.blocks[join].pred) else None


def build_cfg(func: FunctionNode, name: Optional[str] = None) -> CFG:
    """Lower one function definition into a :class:`CFG`."""
    return _Builder(func, name if name is not None else func.name).build()


def function_cfgs(tree: ast.Module) -> Iterator[CFG]:
    """Yield a CFG for every function in ``tree``, including nested ones.

    Names are dotted symbols (``Class.method``, ``outer.inner``), matching
    the convention of :func:`repro.analysis.modinfo.walk_with_symbols`.
    """

    def visit(node: ast.AST, symbol: str) -> Iterator[CFG]:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_symbol = f"{symbol}.{child.name}" if symbol else child.name
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield build_cfg(child, child_symbol)
            yield from visit(child, child_symbol)

    yield from visit(tree, "")
