"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream pager/head closed the pipe mid-report; exit quietly
    # (devnull dup stops the interpreter's own flush-on-exit complaint).
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
