"""Cross-module call resolution for the async-safety rules.

ASYNC001 ("blocking call reachable from an ``async def``") and ASYNC002
("coroutine result never awaited") need to answer two questions that a
single-module AST cannot: *what function does this call name resolve to*,
and *is it a coroutine / does it transitively block*.  This module answers
them purely syntactically, reusing the import-alias resolution that
:mod:`repro.analysis.modinfo` already performs:

* A call like ``helpers.fetch()`` resolves through the module's alias map
  to ``repro.service.helpers.fetch``; the resolver maps the dotted prefix
  back to a file under the same source root as the current module, parses
  it (cached, never imported), and looks the symbol up in that module's
  definition table.
* ``self.push(...)`` resolves against the enclosing class's method table —
  the one receiver whose type is statically known.
* Anything else (dynamic receivers, third-party modules without source on
  disk) resolves to ``None`` and the rules stay silent — resolution
  failures must never manufacture findings.

Resolution is deliberately shallow: no MRO walking, no re-export chasing,
no decorator semantics.  That keeps it predictable (the property a linter
needs most) and fast enough to run per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .modinfo import ModuleInfo, load_module

FunctionDefNode = ast.FunctionDef | ast.AsyncFunctionDef

#: asyncio entry points that hand back awaitables (treated as coroutine
#: calls by ASYNC002 even though the stdlib source is never parsed).
KNOWN_COROUTINE_CALLS = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.shield",
        "asyncio.to_thread",
        "asyncio.open_connection",
        "asyncio.start_server",
        "asyncio.staggered_race",
    }
)


@dataclass(frozen=True)
class FunctionRef:
    """One resolved function definition."""

    #: Dotted module the definition lives in (best effort).
    module: str
    #: Dotted symbol inside the module, e.g. ``LiveRegionServer.heartbeat``.
    qualname: str
    node: FunctionDefNode

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)


def definition_table(info: ModuleInfo) -> Dict[str, FunctionDefNode]:
    """Map dotted symbol (``Class.method``, ``outer.inner``) → def node."""
    table: Dict[str, FunctionDefNode] = {}

    def visit(node: ast.AST, symbol: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_symbol = f"{symbol}.{child.name}" if symbol else child.name
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table.setdefault(child_symbol, child)
            visit(child, child_symbol)

    visit(info.tree, "")
    return table


def _source_root(info: ModuleInfo) -> Optional[Path]:
    """Directory containing the top-level package of ``info``.

    ``repro.service.bridge`` at ``/x/src/repro/service/bridge.py`` →
    ``/x/src``.  Returns None when the module name and the path disagree
    (in-memory fixtures linted under synthetic names), which disables
    cross-module resolution.
    """
    parts = info.module.split(".")
    path = info.path
    if path.name == "__init__.py":
        path = path.parent
    else:
        path = path.with_suffix("")
    for part in reversed(parts):
        if path.name != part:
            return None
        path = path.parent
    return path


class CallGraph:
    """Resolver for calls made from one module, with a shared parse cache."""

    def __init__(
        self,
        info: ModuleInfo,
        module_cache: Optional[Dict[Path, Optional[ModuleInfo]]] = None,
    ) -> None:
        self.info = info
        self.root = _source_root(info)
        self._cache = module_cache if module_cache is not None else {}
        self._local_defs = definition_table(info)
        self._tables: Dict[int, Dict[str, FunctionDefNode]] = {
            id(info): self._local_defs
        }

    # ----------------------------------------------------------- resolution
    def resolve_call(
        self, call: ast.Call, enclosing_class: Optional[str] = None
    ) -> Optional[FunctionRef]:
        """Best-effort resolution of a call expression to its definition."""
        func = call.func
        # self.method() / cls.method(): the statically-known receiver.
        if (
            enclosing_class
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            symbol = f"{enclosing_class}.{func.attr}"
            node = self._local_defs.get(symbol)
            if node is not None:
                return FunctionRef(self.info.module, symbol, node)
            return None
        qualified = self.info.qualified_name(func)
        if qualified is None:
            return None
        return self.resolve_name(qualified)

    def resolve_name(self, qualified: str) -> Optional[FunctionRef]:
        """Resolve an absolute dotted name to a function definition."""
        # Local definition (possibly nested / method referenced directly).
        node = self._local_defs.get(qualified)
        if node is not None:
            return FunctionRef(self.info.module, qualified, node)
        # A name imported from a sibling module under the same source root.
        if self.root is None:
            return None
        parts = qualified.split(".")
        top = self.root / parts[0]
        if not (top.is_dir() or top.with_suffix(".py").exists()):
            return None
        # Longest module prefix that exists on disk wins; the remainder is
        # the symbol path inside it.
        for split in range(len(parts) - 1, 0, -1):
            module_parts, symbol_parts = parts[:split], parts[split:]
            module_path = self._module_path(module_parts)
            if module_path is None:
                continue
            info = self._load(module_path, ".".join(module_parts))
            if info is None:
                continue
            symbol = ".".join(symbol_parts)
            table = self._table(info)
            node = table.get(symbol)
            if node is not None:
                return FunctionRef(info.module, symbol, node)
            return None
        return None

    def resolve_in(self, ref: FunctionRef, call: ast.Call) -> Optional[FunctionRef]:
        """Resolve a call *made inside* a previously resolved function.

        Used by the transitive blocking-call walk: the callee's module has
        its own alias map, so its calls resolve in its own namespace.
        """
        info = self._info_for(ref)
        if info is None:
            return None
        if info is self.info:
            enclosing = ref.qualname.rpartition(".")[0] or None
            return self.resolve_call(call, enclosing_class=enclosing)
        graph = CallGraph(info, module_cache=self._cache)
        enclosing = ref.qualname.rpartition(".")[0] or None
        return graph.resolve_call(call, enclosing_class=enclosing)

    def qualified_in(self, ref: FunctionRef, node: ast.AST) -> Optional[str]:
        """``qualified_name`` evaluated in the namespace of ``ref``'s module."""
        info = self._info_for(ref)
        if info is None:
            return None
        return info.qualified_name(node)

    # ------------------------------------------------------------ coroutines
    def is_coroutine_call(
        self, call: ast.Call, enclosing_class: Optional[str] = None
    ) -> Optional[str]:
        """Name of the coroutine being called, or None for non-coroutines.

        Resolution order: known asyncio awaitable factories, then project
        functions resolved to an ``async def``.
        """
        qualified = self.info.qualified_name(call.func)
        if qualified is not None and qualified in KNOWN_COROUTINE_CALLS:
            return qualified
        ref = self.resolve_call(call, enclosing_class=enclosing_class)
        if ref is not None and ref.is_async:
            return ref.qualname
        return None

    # -------------------------------------------------------------- plumbing
    def _module_path(self, module_parts: List[str]) -> Optional[Path]:
        assert self.root is not None
        base = self.root.joinpath(*module_parts)
        candidate = base.with_suffix(".py")
        if candidate.exists():
            return candidate
        package = base / "__init__.py"
        if package.exists():
            return package
        return None

    def _load(self, path: Path, module: str) -> Optional[ModuleInfo]:
        path = path.resolve()
        if path in self._cache:
            return self._cache[path]
        if path == self.info.path.resolve():
            self._cache[path] = self.info
            return self.info
        try:
            info: Optional[ModuleInfo] = load_module(
                path, rel_path=path.as_posix(), module=module
            )
        except (OSError, SyntaxError):
            info = None
        self._cache[path] = info
        return info

    def _info_for(self, ref: FunctionRef) -> Optional[ModuleInfo]:
        if ref.module == self.info.module:
            return self.info
        if self.root is None:
            return None
        path = self._module_path(ref.module.split("."))
        if path is None:
            return None
        return self._load(path, ref.module)

    def _table(self, info: ModuleInfo) -> Dict[str, FunctionDefNode]:
        table = self._tables.get(id(info))
        if table is None:
            table = definition_table(info)
            self._tables[id(info)] = table
        return table


def calls_in(func: FunctionDefNode) -> List[ast.Call]:
    """Every call expression lexically inside ``func``'s own body.

    Nested function/class definitions are skipped: their bodies execute on
    their own activation, not when ``func`` runs.
    """
    out: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def transitive_blocking_path(
    graph: CallGraph,
    ref: FunctionRef,
    blocking: Set[str],
    max_depth: int = 4,
) -> Optional[List[str]]:
    """Call chain from ``ref`` to a blocking call, or None.

    Depth-limited DFS over *sync* project functions (descending into an
    ``async def`` makes no sense — calling one only builds a coroutine).
    Returns e.g. ``["helper", "do_io", "time.sleep"]``.
    """
    seen: Set[Tuple[str, str]] = set()

    def walk(current: FunctionRef, depth: int) -> Optional[List[str]]:
        if current.key in seen or depth > max_depth:
            return None
        seen.add(current.key)
        for call in calls_in(current.node):
            name = graph.qualified_in(current, call.func)
            if name is not None and name in blocking:
                return [current.qualname, name]
            callee = graph.resolve_in(current, call)
            if callee is None or callee.is_async:
                continue
            tail = walk(callee, depth + 1)
            if tail is not None:
                return [current.qualname, *tail]
        return None

    return walk(ref, 1)
