"""Finding container and stable fingerprints.

A finding pins a rule violation to a file/line, plus a *fingerprint* that is
stable under unrelated edits: it hashes the rule ID, the file path, the
stripped source line text, and an occurrence counter — **not** the line
number.  Moving a function ten lines down therefore keeps its baseline entry
valid, while editing the offending line (or adding a second identical one)
surfaces the finding again.  This is the same scheme gitlab/code-quality and
sqlite's lint baselines use, chosen so the committed baseline file survives
mechanical refactors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site.

    Attributes
    ----------
    rule:
        Rule ID, e.g. ``"DET001"``.
    path:
        Repo-relative POSIX path of the offending file.
    line, col:
        1-based line and 0-based column of the flagged node.
    message:
        Human-readable description with the suggested fix.
    symbol:
        Enclosing ``class.function`` context, if any (display only).
    fingerprint:
        Stable identity used by the baseline; filled by the engine.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    fingerprint: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        ctx = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule} {self.message}{ctx}"


def compute_fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    """Hash of (rule, path, normalized line text, occurrence index)."""
    normalized = " ".join(line_text.split())
    digest = hashlib.sha1(
        f"{rule}|{path}|{normalized}|{occurrence}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


def fingerprint_findings(
    findings: Sequence[Finding], source_lines: Sequence[str]
) -> List[Finding]:
    """Return ``findings`` with fingerprints filled in.

    Occurrence indices disambiguate several identical violations of the same
    rule on textually identical lines within one file.
    """

    seen: Dict[str, int] = {}
    out: List[Finding] = []
    for f in sorted(findings, key=lambda f: (f.line, f.col, f.rule)):
        if 1 <= f.line <= len(source_lines):
            text = source_lines[f.line - 1]
        else:  # pragma: no cover - defensive (synthetic nodes)
            text = ""
        normalized = " ".join(text.split())
        key = f"{f.rule}|{f.path}|{normalized}"
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(
            Finding(
                rule=f.rule,
                path=f.path,
                line=f.line,
                col=f.col,
                message=f.message,
                symbol=f.symbol,
                fingerprint=compute_fingerprint(f.rule, f.path, normalized, occurrence),
            )
        )
    return out
