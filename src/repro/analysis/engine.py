"""The lint engine: file discovery, rule dispatch, suppression accounting.

The engine is deliberately boring: discover files, parse each once, hand the
:class:`~repro.analysis.modinfo.ModuleInfo` to every in-scope rule, split the
resulting findings into active / inline-suppressed, and fingerprint them for
the baseline.  All policy lives in the rules and the baseline module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, fingerprint_findings
from .modinfo import ModuleInfo, load_module_source
from .rules import all_rules
from .rules.base import Rule

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    #: Active findings (not inline-suppressed; baseline not yet applied).
    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# reprolint: disable=`` comment.
    suppressed: List[Finding] = field(default_factory=list)
    #: Files that failed to parse, as PARSE-rule findings.
    errors: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.errors.extend(other.errors)
        self.files_scanned += other.files_scanned

    @property
    def all_active(self) -> List[Finding]:
        """Findings plus parse errors — everything that should gate."""
        return [*self.errors, *self.findings]


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Yield .py files under ``paths`` (files pass through, dirs recurse)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in SKIP_DIRS for part in candidate.parts):
                yield candidate


def module_name_for(path: Path) -> str:
    """Infer the dotted module name by walking up ``__init__.py`` parents.

    ``src/repro/core/deadline.py`` → ``repro.core.deadline``.  Files outside
    any package lint under their stem so unscoped rules still apply.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


def repo_relative(path: Path, repo_root: Optional[Path] = None) -> str:
    """POSIX path relative to the repo root (pyproject/git marker search)."""
    path = path.resolve()
    root = repo_root
    if root is None:
        for candidate in [path.parent, *path.parents]:
            if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
                root = candidate
                break
    if root is not None:
        try:
            return path.relative_to(root.resolve()).as_posix()
        except ValueError:  # pragma: no cover - path outside root
            pass
    return path.as_posix()


def _split_suppressed(
    module: ModuleInfo, findings: Iterable[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        target = suppressed if module.is_suppressed(finding.rule, finding.line) else active
        target.append(finding)
    return active, suppressed


def lint_module(module: ModuleInfo, rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Apply every in-scope rule to one parsed module."""
    result = LintResult(files_scanned=1)
    raw: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if rule.applies_to(module.module):
            raw.extend(rule.check(module))
    active, suppressed = _split_suppressed(module, raw)
    result.findings = fingerprint_findings(active, module.lines)
    result.suppressed = fingerprint_findings(suppressed, module.lines)
    return result


def lint_source(
    source: str,
    module: str,
    path: str = "<memory>",
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint in-memory source under an explicit module name.

    This is the fixture entry point: tests lint a file as if it lived at
    e.g. ``repro.core.fixture`` to exercise scope-sensitive rules.
    """
    info = load_module_source(source, rel_path=path, module=module)
    return lint_module(info, rules=rules)


def lint_file(
    path: Path,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    repo_root: Optional[Path] = None,
) -> LintResult:
    """Lint one file from disk (module name inferred unless given)."""
    rel = repo_relative(path, repo_root)
    name = module if module is not None else module_name_for(path)
    try:
        source = path.read_text(encoding="utf-8")
        info = load_module_source(source, rel_path=rel, module=name, path=path)
    except SyntaxError as exc:
        result = LintResult(files_scanned=1)
        result.errors.append(
            Finding(
                rule="PARSE",
                path=rel,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                fingerprint="",
            )
        )
        return result
    return lint_module(info, rules=rules)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    repo_root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file under ``paths``; the CLI's workhorse."""
    total = LintResult()
    for file_path in iter_python_files([Path(p) for p in paths]):
        total.extend(lint_file(file_path, rules=rules, repo_root=repo_root))
    total.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    total.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return total


def parse_ok(source: str) -> bool:
    """Convenience used by tests: does the fixture at least parse?"""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
