"""Baseline file: accepted legacy findings that must not gate CI.

The baseline (``reprolint-baseline.json`` at the repo root) is a committed
list of finding fingerprints.  ``reprolint`` subtracts it from a run's
findings: anything in the baseline is reported as *baselined* (informational)
and anything new fails the run.  Shrinking the baseline is always safe;
growing it is a reviewed change (the file is committed, so the diff shows
exactly which violation was accepted and why the PR description must say).

Fingerprints hash rule + path + line *text* (not number), so a baseline
survives code moving around a file but is invalidated when the offending
line itself changes — at which point the author either fixes the violation
or consciously re-accepts it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from .findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename looked up at the repo root.
DEFAULT_BASELINE_NAME = "reprolint-baseline.json"


@dataclass
class Baseline:
    """A set of accepted finding fingerprints with display metadata."""

    fingerprints: Set[str] = field(default_factory=set)
    #: fingerprint → summary entry kept for human-readable baseline diffs.
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined)."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            (baselined if finding in self else new).append(finding)
        return new, baselined

    def stale_fingerprints(self, findings: Sequence[Finding]) -> Set[str]:
        """Baseline entries that no longer match any finding (fixed or
        edited).  Reported so the baseline can be garbage-collected."""
        current = {f.fingerprint for f in findings}
        return self.fingerprints - current


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file (raises ValueError on schema mismatch)."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format "
            f"(expected version {BASELINE_VERSION})"
        )
    baseline = Baseline()
    for entry in data.get("findings", []):
        fingerprint = str(entry["fingerprint"])
        baseline.fingerprints.add(fingerprint)
        baseline.entries[fingerprint] = dict(entry)
    return baseline


def write_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Write ``findings`` as the new accepted baseline and return it."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted legacy reprolint findings. New findings gate CI; "
            "shrink this file whenever one is fixed. See docs/STATIC_ANALYSIS.md."
        ),
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in ordered
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return load_baseline(path)


def find_default_baseline(start: Path) -> Path | None:
    """Locate ``reprolint-baseline.json`` at or above ``start``."""
    start = start.resolve()
    for candidate in [start, *start.parents]:
        path = candidate / DEFAULT_BASELINE_NAME
        if path.exists():
            return path
    return None
