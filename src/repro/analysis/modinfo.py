"""Parsed-module model shared by the lint engine and the rule plugins.

A :class:`ModuleInfo` bundles everything a rule needs to reason about one
file: the AST, the dotted module name (so rules can scope themselves to
``repro.core`` etc.), the raw source lines, an import-alias map for resolving
``np.random.default_rng`` → ``numpy.random.default_rng``, and the parsed
``# reprolint: disable=...`` suppression comments.

Import resolution is intentionally purely syntactic — no modules are ever
imported, so linting cannot execute project code (important for CI and for
the chaos-injection modules whose import side effects register hooks).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Matches an inline suppression: ``# reprolint: disable=DET001``
#: or several rules at once: ``# reprolint: disable=DET001,NUM001``.
#: ``disable=all`` silences every rule on that line.
SUPPRESSION_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Sentinel rule name meaning "every rule" in a suppression comment.
SUPPRESS_ALL = "ALL"


def parse_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number → set of suppressed rule IDs (or ``ALL``)."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "reprolint" not in text:  # cheap pre-filter
            continue
        match = SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = {part.strip().upper() for part in match.group(1).split(",")}
        out[lineno] = {SUPPRESS_ALL if r == "ALL" else r for r in rules}
    return out


@dataclass(frozen=True)
class ImportedName:
    """One imported symbol, absolute-resolved.

    ``type_only`` marks imports guarded by ``if TYPE_CHECKING:`` — they
    exist purely for annotations and cannot create runtime import cycles,
    so the layering rule ignores them.
    """

    name: str
    lineno: int
    type_only: bool = False


@dataclass
class ModuleInfo:
    """One parsed source module plus the metadata rules need."""

    path: Path
    #: Repo-relative POSIX path used in findings and fingerprints.
    rel_path: str
    #: Dotted module name, e.g. ``repro.core.matching.base``.
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: local alias → fully qualified name (``np`` → ``numpy``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: absolute dotted names of every imported module/symbol.
    imported_names: List[ImportedName] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The package containing this module (the module itself for
        ``__init__`` files)."""
        if self.path.name == "__init__.py":
            return self.module
        return self.module.rpartition(".")[0]

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return rule.upper() in rules or SUPPRESS_ALL in rules

    # --------------------------------------------------------- name lookup
    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute/name chain to a fully qualified dotted name.

        ``np.random.default_rng`` resolves through the import map to
        ``numpy.random.default_rng``; a bare ``perf_counter`` imported via
        ``from time import perf_counter`` resolves to ``time.perf_counter``.
        Returns None for anything that is not a static name chain (calls,
        subscripts, locals that shadow no import).
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        head = parts[0]
        resolved = self.imports.get(head, head)
        return ".".join([resolved] + parts[1:])


def _resolve_relative(module: str, is_package: bool, level: int, target: Optional[str]) -> str:
    """Absolute dotted name for a ``from ...x import y`` relative import."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    # level=1 → current package, level=2 → parent, ...
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _is_type_checking_guard(node: ast.AST) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def build_import_map(
    tree: ast.Module, module: str, is_package: bool
) -> Tuple[Dict[str, str], List[ImportedName]]:
    """Collect (alias → qualified name) plus the flat list of imported names.

    The flat list feeds the layering rule (KER001); the alias map feeds the
    call-site rules (DET001/DET002).
    """
    aliases: Dict[str, str] = {}
    names: List[ImportedName] = []

    def visit(node: ast.AST, type_only: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                for item in child.names:
                    qualified = item.name
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds
                    # ``c`` to the full dotted path.
                    if item.asname:
                        aliases[item.asname] = qualified
                    else:
                        aliases[qualified.split(".")[0]] = qualified.split(".")[0]
                    names.append(ImportedName(qualified, child.lineno, type_only))
            elif isinstance(child, ast.ImportFrom):
                if child.level:
                    base = _resolve_relative(module, is_package, child.level, child.module)
                else:
                    base = child.module or ""
                for item in child.names:
                    qualified = f"{base}.{item.name}" if base else item.name
                    aliases[item.asname or item.name] = qualified
                    names.append(ImportedName(qualified, child.lineno, type_only))
            else:
                visit(child, type_only or _is_type_checking_guard(child))

    visit(tree, False)
    return aliases, names


def load_module(path: Path, rel_path: str, module: str) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo` (raises SyntaxError)."""
    source = path.read_text(encoding="utf-8")
    return load_module_source(source, rel_path=rel_path, module=module, path=path)


def load_module_source(
    source: str, rel_path: str, module: str, path: Optional[Path] = None
) -> ModuleInfo:
    """Parse in-memory source (the test fixtures go through this)."""
    tree = ast.parse(source, filename=rel_path)
    lines = source.splitlines()
    is_package = (path is not None and path.name == "__init__.py") or rel_path.endswith(
        "__init__.py"
    )
    imports, imported_names = build_import_map(tree, module, is_package)
    return ModuleInfo(
        path=path if path is not None else Path(rel_path),
        rel_path=rel_path,
        module=module,
        source=source,
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(lines),
        imports=imports,
        imported_names=imported_names,
    )


def walk_with_symbols(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    """Yield (node, enclosing symbol) pairs, symbol like ``Class.method``."""

    def visit(node: ast.AST, symbol: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_symbol = f"{symbol}.{child.name}" if symbol else child.name
            yield child, child_symbol
            yield from visit(child, child_symbol)

    yield from visit(tree, "")


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Best-effort map of node id → symbol, via :func:`walk_with_symbols`."""
    return {id(node): symbol for node, symbol in walk_with_symbols(tree)}
