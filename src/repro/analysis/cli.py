"""``python -m repro.analysis`` — the reprolint command line.

Usage (also reachable as ``python -m repro.experiments lint ...``)::

    python -m repro.analysis [paths ...]         # lint src/repro by default
    python -m repro.analysis --format json       # machine-readable output
    python -m repro.analysis --format sarif      # SARIF 2.1.0 for CI upload
    python -m repro.analysis --changed           # only files changed vs origin/main
    python -m repro.analysis --list-rules        # rule catalogue
    python -m repro.analysis --explain NUM001    # one rule's docs
    python -m repro.analysis --write-baseline    # accept current findings
    python -m repro.analysis --no-baseline       # gate on *all* findings

Exit status: 0 clean (new findings only — baselined/suppressed don't gate),
1 when new findings or parse errors exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    find_default_baseline,
    load_baseline,
    write_baseline,
)
from .engine import LintResult, lint_paths
from .findings import Finding
from .rules import all_rules, get_rule
from .sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: determinism & invariant linter for the REACT reproduction",
        epilog="Rules and workflow: docs/STATIC_ANALYSIS.md. Suppress one site "
        "inline with `# reprolint: disable=RULE`.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed versus --base (fast pre-commit mode)",
    )
    parser.add_argument(
        "--base",
        metavar="REF",
        default="origin/main",
        help="git ref --changed diffs against (default: origin/main)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: nearest {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; every finding gates",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list inline-suppressed and baselined findings",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        default=None,
        help="run only these rule IDs (repeatable)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    parser.add_argument(
        "--explain", metavar="ID", default=None, help="print one rule's documentation"
    )
    return parser


def _changed_paths(base: str, within: Sequence[Path]) -> Optional[List[Path]]:
    """Python files changed versus ``base`` that live under ``within``.

    Returns ``None`` when git itself fails (not a repo, unknown ref) so the
    caller can distinguish "nothing changed" from "could not ask".  Deleted
    files are skipped — there is nothing left to lint.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    roots = [p.resolve() for p in within]
    selected: List[Path] = []
    for line in diff.splitlines():
        if not line.endswith(".py"):
            continue
        candidate = (Path(top) / line).resolve()
        if not candidate.exists():
            continue
        if any(candidate == root or root in candidate.parents for root in roots):
            selected.append(candidate)
    return selected


def _rule_catalogue() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "(layering table)"
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"        scope: {scope}")
    return "\n".join(lines)


def _explain(rule_id: str) -> str:
    rule = get_rule(rule_id)
    scope = ", ".join(rule.scope) if rule.scope else "see repro.analysis.rules.layering"
    exempt = ", ".join(rule.exempt) if rule.exempt else "none"
    return "\n".join(
        [
            f"{rule.id}: {rule.title}",
            "",
            rule.rationale,
            "",
            f"scope:  {scope}",
            f"exempt: {exempt}",
            f"suppress one site: # reprolint: disable={rule.id}",
        ]
    )


def _render_text(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    stale: int,
    show_suppressed: bool,
) -> str:
    lines: List[str] = []
    for finding in [*result.errors, *new]:
        lines.append(finding.render())
    if show_suppressed:
        for finding in baselined:
            lines.append(f"{finding.render()} (baselined)")
        for finding in result.suppressed:
            lines.append(f"{finding.render()} (suppressed inline)")
    per_rule: Dict[str, int] = {}
    for finding in new:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    breakdown = (
        " [" + ", ".join(f"{k}:{v}" for k, v in sorted(per_rule.items())) + "]"
        if per_rule
        else ""
    )
    lines.append(
        f"reprolint: {result.files_scanned} files, {len(new)} new finding(s)"
        f"{breakdown}, {len(baselined)} baselined, "
        f"{len(result.suppressed)} suppressed inline, {len(result.errors)} parse error(s)"
    )
    if stale:
        lines.append(
            f"reprolint: {stale} stale baseline entr{'y' if stale == 1 else 'ies'} "
            "(fixed findings) — regenerate with --write-baseline to shrink"
        )
    return "\n".join(lines)


def _render_json(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    stale: int,
) -> str:
    payload = {
        "files_scanned": result.files_scanned,
        "findings": [f.as_dict() for f in new],
        "errors": [f.as_dict() for f in result.errors],
        "baselined": [f.as_dict() for f in baselined],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "stale_baseline_entries": stale,
        "rules": {
            rule.id: {"title": rule.title, "scope": list(rule.scope)}
            for rule in all_rules()
        },
    }
    return json.dumps(payload, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        print(_rule_catalogue())
        return EXIT_CLEAN
    if args.explain is not None:
        try:
            print(_explain(args.explain))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return EXIT_USAGE
        return EXIT_CLEAN

    paths = [Path(p) for p in args.paths] if args.paths else [Path("src/repro")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "reprolint: no such path(s): " + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return EXIT_USAGE

    rules = None
    if args.rule:
        try:
            rules = [get_rule(r) for r in args.rule]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return EXIT_USAGE

    if args.changed:
        changed = _changed_paths(args.base, paths)
        if changed is None:
            print(
                f"reprolint: --changed: git diff against {args.base!r} failed",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if not changed:
            print(f"reprolint: no python files changed vs {args.base}")
            return EXIT_CLEAN
        paths = changed

    result = lint_paths(paths, rules=rules)

    # ------------------------------------------------------------ baseline
    baseline_path: Optional[Path]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = find_default_baseline(paths[0] if paths else Path.cwd())

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        write_baseline(target, result.findings)
        print(
            f"reprolint: wrote {len(result.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    baseline = Baseline()
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"reprolint: bad baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
    new, baselined = baseline.partition(result.findings)
    stale = len(baseline.stale_fingerprints(result.findings))

    if args.format == "json":
        report = _render_json(result, new, baselined, stale)
    elif args.format == "sarif":
        report = render_sarif(result, new, baselined)
    else:
        report = _render_text(result, new, baselined, stale, args.show_suppressed)

    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)

    return EXIT_FINDINGS if (new or result.errors) else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
