"""Rule registry.

Adding a rule: subclass :class:`~repro.analysis.rules.base.Rule` in a module
here, then append an instance to :data:`RULES`.  IDs are namespaced by
concern — DET (determinism), NUM (numerics), OBS (observability), KER
(kernels/layering), API (typing surface), ASYNC (event-loop safety),
TIME (time-domain hygiene), EXC (exception handling) — with three digits
for ordering within a concern.
"""

from __future__ import annotations

from typing import Dict, List

from .async_safety import BlockingCallRule, StalenessRaceRule, UnawaitedCoroutineRule
from .base import Rule
from .determinism import ArithmeticSeedRule, ThreadedRngRule, WallClockRule
from .exceptions import BroadExceptRule
from .layering import LayeringRule
from .numerics import FloatEqualityRule
from .observability import NullObjectFacadeRule
from .timeflow import TimeDomainTaintRule
from .typing_api import PublicApiAnnotationsRule

#: Every registered rule, in report order.
RULES: List[Rule] = [
    WallClockRule(),
    ThreadedRngRule(),
    ArithmeticSeedRule(),
    FloatEqualityRule(),
    NullObjectFacadeRule(),
    LayeringRule(),
    PublicApiAnnotationsRule(),
    BlockingCallRule(),
    UnawaitedCoroutineRule(),
    StalenessRaceRule(),
    TimeDomainTaintRule(),
    BroadExceptRule(),
]

_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}


def all_rules() -> List[Rule]:
    """The registered rules (copy; mutating it does not unregister)."""
    return list(RULES)


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by ID (raises KeyError with the known IDs)."""
    try:
        return _BY_ID[rule_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_ID))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None


__all__ = ["RULES", "Rule", "all_rules", "get_rule"]
