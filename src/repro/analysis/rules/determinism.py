"""DET001/DET002/DET003 — seed-determinism rules.

The paper's figures are reproduced by *bit-identical* reruns (ROADMAP tier-1
gate; ``sim.rng`` named streams).  Three classes of regressions break that:

* **DET001** — wall-clock reads or unseeded RNG construction.  The RNG
  checks apply to the whole tree; the wall-clock checks apply everywhere
  *except* the layers whose job is wall time — ``repro.service`` (the live
  asyncio gateway, where ``loop.time()`` IS the clock) and
  ``repro.experiments`` (benchmark harnesses measuring wall cost).
  Anywhere else, ``time.time()``/``perf_counter()``/``loop.time()`` values
  leak host timing into sim state; an argless ``np.random.default_rng()``
  draws OS entropy.
* **DET002** — RNG state that bypasses the named-stream registry: calls to
  the legacy global ``np.random.*`` distribution API (hidden process-wide
  state) or generators constructed at module/class scope (shared across
  experiments, so one run perturbs the next).
* **DET003** — arithmetic seed derivation (``seed * K + offset``) fed to a
  seed-consuming constructor.  Affine maps are not injective across nesting
  levels — ``fork(a).fork(b)`` landed on the same stream as
  ``fork(a*K + b)`` until the lineage-keyed rewrite — so child seeds must
  come from ``SeedSequence`` spawn keys (``sim.rng`` ``fork``/``spawn_seeds``).

Profiling code that *reports* wall time without feeding it back into
simulation decisions may suppress DET001 inline with a justification, e.g.
``# reprolint: disable=DET001`` on the measuring line.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..findings import Finding
from ..modinfo import ModuleInfo, enclosing_symbols
from .base import Rule, in_scope

#: Deterministic packages: everything that runs inside a simulation.
DETERMINISTIC_SCOPE: Tuple[str, ...] = ("repro.sim", "repro.core", "repro.platform")

#: Layers whose *purpose* is wall time: DET001's wall-clock checks skip
#: these (RNG checks still apply).  ``repro.service`` is the asyncio
#: gateway — ``WallClockRuntime`` implements ``EventClock.now`` from
#: ``loop.time()`` — and ``repro.experiments`` measures wall cost in its
#: perf harnesses.
WALL_CLOCK_ALLOWED: Tuple[str, ...] = ("repro.service", "repro.experiments")

#: Wall-clock sources.  Resolved through the import-alias map, so
#: ``from time import perf_counter as pc; pc()`` is still caught.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Receiver names treated as asyncio event loops for the ``loop.time()``
#: heuristic.  The loop object's type is unknown statically, so DET001
#: matches ``<receiver>.time()`` by conventional naming instead.
LOOP_RECEIVERS = frozenset({"loop", "_loop", "event_loop", "_event_loop"})


def _loop_time_receiver(node: ast.Call) -> Optional[str]:
    """Receiver name when ``node`` is a ``loop.time()``-style clock read."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "time":
        return None
    target = func.value
    if isinstance(target, ast.Name) and target.id in LOOP_RECEIVERS:
        return target.id
    if isinstance(target, ast.Attribute) and target.attr in LOOP_RECEIVERS:
        return target.attr
    return None

#: Global-state seeding — forbidden outright (named streams make it useless).
GLOBAL_SEED_CALLS = frozenset({"numpy.random.seed", "random.seed"})

#: RNG constructors that must receive an explicit seed / SeedSequence.
RNG_CONSTRUCTORS = frozenset(
    {"numpy.random.default_rng", "random.Random", "numpy.random.RandomState"}
)

#: Legacy global-state numpy distribution API (``np.random.rand`` & co.).
LEGACY_NP_RANDOM = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "gamma",
        "geometric",
        "lognormal",
        "normal",
        "pareto",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "shuffle",
        "standard_normal",
        "uniform",
        "zipf",
    }
)


#: Seed-consuming constructors whose seed/entropy argument DET003 inspects.
SEED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Keyword names that carry seed material in the constructors above.
SEED_KEYWORDS = frozenset({"seed", "entropy"})


def _call_name(module: ModuleInfo, node: ast.Call) -> Optional[str]:
    return module.qualified_name(node.func)


class WallClockRule(Rule):
    """DET001: no wall-clock time or unseeded RNG in deterministic code."""

    id = "DET001"
    title = "wall clock only in repro.service/experiments; no unseeded RNG"
    rationale = (
        "Simulated time comes from the event engine and randomness from the "
        "seeded sim.rng streams; a wall-clock read or OS-entropy generator "
        "makes reruns diverge and the paper's figures unreproducible.  The "
        "only legitimate wall-clock consumers are the live-service layer "
        "(repro.service, where loop.time() drives the EventClock) and the "
        "benchmark harnesses in repro.experiments."
    )
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        allow_wall = in_scope(module.module, WALL_CLOCK_ALLOWED)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            symbol = symbols.get(id(node), "")
            if not allow_wall:
                receiver = _loop_time_receiver(node)
                if receiver is not None:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"event-loop clock read `{receiver}.time()` outside "
                        "repro.service; deterministic code takes its time from "
                        "an EventClock's `now`",
                        symbol,
                    )
                    continue
            name = _call_name(module, node)
            if name is None:
                continue
            if name in WALL_CLOCK_CALLS:
                if allow_wall:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call `{name}()` in deterministic code; use an "
                    "EventClock's `now` (sim time), or move the code into "
                    "repro.service if it genuinely lives on the wall clock",
                    symbol,
                )
            elif name in GLOBAL_SEED_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"global RNG seeding `{name}()` is forbidden; draw from a "
                    "named sim.rng stream",
                    symbol,
                )
            elif name in RNG_CONSTRUCTORS and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"argless `{name}()` draws OS entropy; pass an explicit "
                    "seed/SeedSequence or thread a sim.rng stream",
                    symbol,
                )


class ThreadedRngRule(Rule):
    """DET002: RNG objects are threaded from sim.rng, never global/module state."""

    id = "DET002"
    title = "RNG must be threaded from sim.rng streams, not global state"
    rationale = (
        "The legacy np.random.* API and module-level generators are hidden "
        "shared state: one component's draws perturb another's, destroying "
        "the variance isolation the algorithm comparisons (Figs. 5-10) need."
    )
    scope = DETERMINISTIC_SCOPE
    #: The stream factory is the one sanctioned Generator constructor.
    exempt = ("repro.sim.rng",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        # (a) legacy global-state distribution calls anywhere in the module
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(module, node)
            if name is None or not name.startswith("numpy.random."):
                continue
            tail = name.rpartition(".")[2]
            if tail in LEGACY_NP_RANDOM:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"legacy global-state RNG `{name}()`; draw from an "
                    "explicitly threaded np.random.Generator (sim.rng stream)",
                    symbols.get(id(node), ""),
                )
        # (b) generators constructed at module or class scope
        yield from self._module_scope_generators(module, module.tree, symbol="")

    def _module_scope_generators(
        self, module: ModuleInfo, body_owner: ast.AST, symbol: str
    ) -> Iterator[Finding]:
        body = getattr(body_owner, "body", [])
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                child = f"{symbol}.{stmt.name}" if symbol else stmt.name
                yield from self._module_scope_generators(module, stmt, child)
                continue
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is None or not isinstance(value, ast.Call):
                continue
            name = _call_name(module, value)
            if name in RNG_CONSTRUCTORS or name == "numpy.random.Generator":
                yield self.finding(
                    module,
                    stmt.lineno,
                    stmt.col_offset,
                    f"RNG constructed at {'class' if symbol else 'module'} scope "
                    f"(`{name}`); generators must be created per-run and "
                    "threaded from sim.rng",
                    symbol,
                )


def _seed_arguments(node: ast.Call) -> Iterator[ast.expr]:
    """The expressions that become seed material in a seed-consuming call."""
    if node.args:
        yield node.args[0]
    for keyword in node.keywords:
        if keyword.arg in SEED_KEYWORDS:
            yield keyword.value


def _contains_arithmetic(expr: ast.expr) -> bool:
    """True when ``expr`` combines values with a binary operator.

    Descent stops at nested calls: in ``default_rng(stream.integers(1 << 31))``
    the shift feeds a generator *draw*, not a seed derivation, whereas
    ``default_rng(seed * K + offset)`` is the collision pattern DET003 exists
    to catch.
    """
    if isinstance(expr, ast.BinOp):
        return True
    if isinstance(expr, ast.Call):
        return False
    return any(
        _contains_arithmetic(child)
        for child in ast.iter_child_nodes(expr)
        if isinstance(child, ast.expr)
    )


class ArithmeticSeedRule(Rule):
    """DET003: child seeds come from SeedSequence spawning, never arithmetic."""

    id = "DET003"
    title = "no arithmetic seed derivation; spawn child seeds via SeedSequence"
    rationale = (
        "Affine seed maps like `seed * K + offset` are not injective across "
        "nesting levels: fork(a).fork(b) collides with fork(a*K + b), and "
        "seed 0 collides with its own children, silently correlating streams "
        "that the experiments treat as independent.  Child seeds must come "
        "from SeedSequence spawn keys — sim.rng fork()/spawn_seeds()."
    )
    #: repro.dist fans seeds out to shard workers, so it is in scope too.
    scope = DETERMINISTIC_SCOPE + ("repro.dist",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(module, node)
            if name is None:
                continue
            is_registry = name.rpartition(".")[2] == "RngRegistry"
            if name not in SEED_CONSTRUCTORS and not is_registry:
                continue
            for arg in _seed_arguments(node):
                if _contains_arithmetic(arg):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"arithmetic seed derivation in `{name}(...)`; derive "
                        "child seeds with SeedSequence spawn keys "
                        "(sim.rng fork()/spawn_seeds()) instead",
                        symbols.get(id(node), ""),
                    )
                    break
