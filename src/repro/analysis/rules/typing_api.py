"""API001 — complete type annotations on public API surfaces.

``repro.core``, ``repro.stats`` and ``repro.platform`` are the packages other
layers build on; mypy's strict gate (pyproject ``[tool.mypy]``) only delivers
its guarantees when the public surface is fully annotated, otherwise every
caller type-checks against ``Any``.  CI runs mypy, but mypy is not importable
in every dev environment — this rule keeps the *annotation completeness*
contract locally checkable with zero dependencies.

Public means: module- or class-level ``def`` whose name does not start with
``_`` (dunders count as public — they are the API of the object protocol),
inside a class chain that is itself public.  ``self``/``cls`` are exempt, as
are ``@overload`` stubs (the implementation signature is checked).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from ..findings import Finding
from ..modinfo import ModuleInfo
from .base import Rule

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public_name(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _decorator_names(node: FunctionNode) -> List[str]:
    names = []
    for dec in node.decorator_list:
        cur = dec.func if isinstance(dec, ast.Call) else dec
        while isinstance(cur, ast.Attribute):
            cur = cur.value
        if isinstance(cur, ast.Name):
            names.append(cur.id)
        elif isinstance(dec, ast.Attribute):  # pragma: no cover - rare
            names.append(dec.attr)
    return names


def _missing_annotations(node: FunctionNode, is_method: bool) -> List[str]:
    missing: List[str] = []
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    if is_method and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


class PublicApiAnnotationsRule(Rule):
    """API001: public core/stats/platform functions are fully annotated."""

    id = "API001"
    title = "public functions in core/stats/platform need complete annotations"
    rationale = (
        "The strict-mypy gate only protects callers when signatures are "
        "complete; an unannotated public function downgrades every use to "
        "Any and hides Eq. 2/3 unit/shape errors."
    )
    scope = ("repro.core", "repro.stats", "repro.platform")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._scan_body(module, module.tree.body, symbol="", in_class=False)

    def _scan_body(
        self,
        module: ModuleInfo,
        body: List[ast.stmt],
        symbol: str,
        in_class: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                if not _is_public_name(stmt.name):
                    continue
                child = f"{symbol}.{stmt.name}" if symbol else stmt.name
                yield from self._scan_body(module, stmt.body, child, in_class=True)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public_name(stmt.name):
                    continue
                if "overload" in _decorator_names(stmt):
                    continue
                missing = _missing_annotations(stmt, is_method=in_class)
                if not missing:
                    continue
                name = f"{symbol}.{stmt.name}" if symbol else stmt.name
                yield self.finding(
                    module,
                    stmt.lineno,
                    stmt.col_offset,
                    f"public function `{name}` missing annotations: "
                    + ", ".join(missing),
                    name,
                )
