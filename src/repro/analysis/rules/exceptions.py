"""EXC001 — broad excepts in handler code must re-raise or count.

The event loop (DES engine cohort dispatch) and the live gateway both run
handler callbacks inside dispatch machinery that must survive a crashing
handler.  The idiomatic shield is ``except Exception:`` — and the idiomatic
failure mode is that shield silently eating real bugs: a typo in a cohort
handler turns into zero completed tasks and a clean-looking run.

EXC001 accepts the shield but demands an exhaust path: a broad handler
(``except:``, ``except Exception``, ``except BaseException``, or a tuple
containing either) must re-raise *or* increment an observability counter
(any ``....inc()`` call — the ``repro.obs`` registry idiom, e.g.
``self._errors.labels(reason="handler").inc()``) so crashes show up on the
dashboards even when the process survives them.

Scope is the layers that wrap foreign callables: ``repro.service`` (HTTP
connections, region-server event handlers), ``repro.sim`` (cohort/event
dispatch) and ``repro.platform`` (worker-pool callbacks).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..modinfo import ModuleInfo, enclosing_symbols
from .base import Rule

#: Exception names counting as "broad" when caught.
BROAD_EXCEPTIONS = frozenset(
    {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}
)


def _broad_name(module: ModuleInfo, handler: ast.ExceptHandler) -> Optional[str]:
    """Display name when ``handler`` catches broadly, else None."""
    if handler.type is None:
        return "<bare>"
    candidates = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for candidate in candidates:
        name = module.qualified_name(candidate)
        if name is not None and name in BROAD_EXCEPTIONS:
            return name
    return None


def _walk_handler_body(handler: ast.ExceptHandler) -> Iterator[ast.AST]:
    """Walk the handler body without descending into nested defs."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _has_exhaust_path(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or increments an obs counter."""
    for node in _walk_handler_body(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "inc"
        ):
            return True
    return False


class BroadExceptRule(Rule):
    """EXC001: broad handler-shield excepts must re-raise or count."""

    id = "EXC001"
    title = "broad except in dispatch/handler code must re-raise or inc() a counter"
    rationale = (
        "Event and cohort dispatch wraps foreign handler code, so a broad "
        "except is legitimate there — but swallowing the exception without "
        "a trace turns handler bugs into silently-missing results.  Either "
        "re-raise after cleanup or increment an obs registry counter "
        "(errors_total.labels(reason=...).inc()) so the failure is visible "
        "on the run summary; purely-diagnostic catches may carry an inline "
        "suppression with a justification."
    )
    scope = ("repro.service", "repro.sim", "repro.platform")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(module, node)
            if name is None or _has_exhaust_path(node):
                continue
            caught = "bare `except:`" if name == "<bare>" else f"broad `except {name}`"
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"{caught} neither re-raises nor increments an "
                "obs error counter; handler crashes vanish silently — add "
                "`<counter>.inc()` (repro.obs registry) or re-raise",
                symbols.get(id(node), ""),
            )
