"""ASYNC001/ASYNC002/ASYNC003 — async-safety rules for the live gateway.

``repro.service`` put an asyncio wall-clock gateway in front of the REACT
middleware.  Three bug classes there are invisible to single-statement AST
matching and fatal to the paper's real-time deadline semantics (Eq. 2/3):

* **ASYNC001** — a *blocking* call (``time.sleep``, sync socket/file I/O,
  ``subprocess``) reachable from an ``async def`` stalls the entire event
  loop: every in-flight task deadline slips by the blocked duration.  The
  rule checks direct calls and, via the syntactic call graph, sync helper
  chains up to a small depth.
* **ASYNC002** — calling a coroutine function without awaiting, storing,
  or gathering the result silently drops the work (CPython warns at GC
  time, far from the bug).  Flagged for bare expression statements whose
  call resolves to an ``async def`` or a known asyncio awaitable factory.
* **ASYNC003** — check-then-act staleness: a guard over shared state
  (``self._inbox``, ``task.phase``…) validated *before* an await point
  with the guarded mutation *after* it.  Any other task may run during the
  suspension, so the guard is stale on the resume edge unless re-tested.
  This is a path property, so the rule runs a forward dataflow analysis
  over the function CFG: branch tests mark their facts fresh, await-point
  nodes decay every fact to stale, and a shared-state mutation inside a
  block control-dependent on a stale fact is a race.
"""

from __future__ import annotations

import ast
from typing import Callable, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..callgraph import CallGraph, calls_in, transitive_blocking_path
from ..cfg import CFG, Block, Guard, function_cfgs
from ..dataflow import (
    EMPTY_STATE,
    DataflowDivergence,
    TaintState,
    canonical,
    solve_forward,
    taint_equal,
    taint_get,
    taint_join,
    taint_set,
)
from ..findings import Finding
from ..modinfo import ModuleInfo, walk_with_symbols
from .base import Rule

#: Calls that block the calling thread — poison inside a coroutine.
#: Resolved through the import-alias map like every call-site rule.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyaddr",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.getoutput",
        "subprocess.getstatusoutput",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.head",
        "requests.request",
        "open",
        "io.open",
        "input",
    }
)

#: How deep the sync-helper chain walk descends before giving up.
MAX_CHAIN_DEPTH = 4


def _enclosing_class(symbol: str) -> Optional[str]:
    """Class part of a dotted method symbol (``Server.run`` → ``Server``)."""
    prefix = symbol.rpartition(".")[0]
    return prefix or None


class BlockingCallRule(Rule):
    """ASYNC001: no blocking calls reachable from an ``async def``."""

    id = "ASYNC001"
    title = "no blocking calls (sleep/socket/subprocess/file) in async defs"
    rationale = (
        "The live gateway runs every region server, heartbeat and HTTP "
        "connection on one event loop.  A single time.sleep() or sync "
        "socket read freezes all of them at once, so every task deadline "
        "(the paper's Eq. 2/3 guarantees) slips by the blocked duration.  "
        "Use asyncio.sleep, loop.run_in_executor or asyncio.to_thread; "
        "deliberate blocking (e.g. startup-only file reads) may carry an "
        "inline suppression with a justification."
    )
    scope = ("repro.service",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        graph = CallGraph(module)
        for node, symbol in walk_with_symbols(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            enclosing = _enclosing_class(symbol)
            for call in calls_in(node):
                name = module.qualified_name(call.func)
                if name is not None and name in BLOCKING_CALLS:
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"blocking call `{name}(...)` inside `async def "
                        f"{node.name}` stalls the event loop; use the async "
                        "equivalent (asyncio.sleep, asyncio.to_thread, "
                        "loop.run_in_executor)",
                        symbol,
                    )
                    continue
                callee = graph.resolve_call(call, enclosing_class=enclosing)
                if callee is None or callee.is_async:
                    continue
                path = transitive_blocking_path(
                    graph, callee, set(BLOCKING_CALLS), max_depth=MAX_CHAIN_DEPTH
                )
                if path is not None:
                    chain = " -> ".join(path)
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"sync call chain `{chain}` reachable from `async def "
                        f"{node.name}` blocks the event loop; make the helper "
                        "async or push the blocking leaf into "
                        "asyncio.to_thread/run_in_executor",
                        symbol,
                    )


class UnawaitedCoroutineRule(Rule):
    """ASYNC002: coroutine calls must be awaited, stored, or gathered."""

    id = "ASYNC002"
    title = "coroutine call results must be awaited/stored/gathered"
    rationale = (
        "Calling an async def only builds a coroutine object; as a bare "
        "expression statement the work is silently dropped and CPython's "
        "'never awaited' warning fires at GC time, far from the bug.  In "
        "the gateway that means lost heartbeats or unsent responses with "
        "no traceback pointing at the call site."
    )
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        graph = CallGraph(module)
        for node, symbol in walk_with_symbols(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            name = graph.is_coroutine_call(
                node.value, enclosing_class=_enclosing_class(symbol)
            )
            if name is None:
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"coroutine `{name}(...)` is called but its result is never "
                "awaited, stored, or gathered — the work is silently dropped; "
                "`await` it or wrap it in asyncio.create_task/gather",
                symbol,
            )


# ---------------------------------------------------------------------------
# ASYNC003 — check-then-act staleness across await points.
# ---------------------------------------------------------------------------

#: Staleness lattice labels for one guard fact.
STALE = "stale"
FRESH = "fresh"

#: Method names that mutate their receiver (collection/queue/lifecycle
#: verbs used across repro.service state containers).
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "complete",
        "deregister",
        "detach_task",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "push",
        "put",
        "put_nowait",
        "register",
        "release",
        "remove",
        "setdefault",
        "update",
        "withdraw",
    }
)


def _shared_root(name: str, module: ModuleInfo) -> bool:
    """Should chains rooted at ``name`` be tracked as guard facts?

    ``self``/``cls`` and lowercase locals qualify (they can alias shared
    state); imported modules and UPPERCASE enum/constant roots do not —
    ``TaskPhase.ASSIGNED`` is a constant, not revalidatable state.
    """
    if name in ("self", "cls"):
        return True
    if name in module.imports:
        return False
    first = name.lstrip("_")[:1]
    return bool(first) and first.islower()


def _guard_facts(test: ast.expr, module: ModuleInfo) -> FrozenSet[str]:
    """Canonical attribute/subscript chains a branch test reads.

    Only maximal chains are kept (``task.phase``, ``self._inbox[wid]``),
    since those are the units a revalidating re-test would read again.
    Bare names are excluded — locals rebound only by this coroutine cannot
    go stale during its own suspension.
    """
    facts: Set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root: ast.AST = node
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and _shared_root(root.id, module):
                facts.add(canonical(node))
                if isinstance(node, ast.Subscript):
                    visit(node.slice)
                return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(test)
    return frozenset(facts)


def _chains_overlap(a: str, b: str) -> bool:
    """Do two canonical chains read/write the same state?

    ``self._inbox`` vs ``self._inbox[wid]`` overlap (prefix at a ``.``/``[``
    boundary); ``stop.is_set`` vs ``report.errors`` do not.  This is what
    makes a mutation *guarded*: ASYNC003 flags writes to the state the
    stale guard read, not unrelated writes that merely sit inside the
    branch.
    """
    if a == b:
        return True
    shorter, longer = (a, b) if len(a) < len(b) else (b, a)
    return longer.startswith(shorter + ".") or longer.startswith(shorter + "[")


def _contains_attribute(node: ast.AST) -> bool:
    return any(isinstance(child, ast.Attribute) for child in ast.walk(node))


def _flatten_targets(targets: List[ast.expr]) -> Iterator[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(list(target.elts))
        else:
            yield target


def _mutation_target(stmt: ast.stmt) -> Optional[ast.expr]:
    """The shared-state expression ``stmt`` mutates, or None.

    Shared means the target chain contains an attribute access — plain
    local rebinding (``x = ...``) is private to the coroutine and cannot
    race.  Covers assignment/deletion of attributes and subscripts plus
    mutator-verb method calls on attribute receivers.
    """
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    elif (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr in MUTATOR_METHODS
        and _contains_attribute(stmt.value.func.value)
    ):
        return stmt.value.func.value
    for target in _flatten_targets(targets):
        if isinstance(target, (ast.Attribute, ast.Subscript)) and _contains_attribute(
            target
        ):
            return target
    return None


#: One collected race: (mutation stmt, mutated target, [(fact, guard line)]).
_Race = Tuple[ast.stmt, ast.expr, List[Tuple[str, int]]]


def _staleness_races(cfg: CFG, module: ModuleInfo) -> List[_Race]:
    """Run the staleness analysis over one async function's CFG."""

    def transfer_with(
        collect: Optional[List[_Race]],
    ) -> Callable[[Block, TaintState], TaintState]:
        def transfer(block: Block, state: TaintState) -> TaintState:
            for element in block.elements:
                node = element.node
                if element.awaits:
                    # Crossing a suspension point: every validated fact
                    # may have been changed by another task.
                    state = {key: frozenset({STALE}) for key in state}
                if (
                    collect is not None
                    and not element.is_test
                    and isinstance(node, ast.stmt)
                ):
                    target = _mutation_target(node)
                    if target is not None:
                        stale = _stale_guards(block.guards, state, canonical(target))
                        if stale:
                            collect.append((node, target, stale))
                if element.is_test and isinstance(node, ast.expr):
                    # A (re-)test refreshes the facts it reads.
                    for fact in _guard_facts(node, module):
                        state = taint_set(state, fact, frozenset({FRESH}))
            return state

        return transfer

    def _stale_guards(
        guards: Tuple[Guard, ...], state: TaintState, target: str
    ) -> List[Tuple[str, int]]:
        stale: List[Tuple[str, int]] = []
        seen: Set[str] = set()
        for guard in guards:
            for fact in sorted(_guard_facts(guard.test, module)):
                if fact in seen or not _chains_overlap(fact, target):
                    continue
                if STALE in taint_get(state, fact):
                    seen.add(fact)
                    stale.append((fact, guard.test.lineno))
        return stale

    try:
        in_states = solve_forward(
            cfg,
            entry_state=EMPTY_STATE,
            bottom=EMPTY_STATE,
            join=taint_join,
            transfer=transfer_with(None),
            equals=taint_equal,
        )
    except DataflowDivergence:  # pragma: no cover - defensive; CFGs are reducible
        return []
    races: List[_Race] = []
    collecting = transfer_with(races)
    for block in cfg.blocks:
        collecting(block, in_states.get(block.id, EMPTY_STATE))
    return races


class StalenessRaceRule(Rule):
    """ASYNC003: guards validated before an await are stale after it."""

    id = "ASYNC003"
    title = "no check-then-act on shared state across an await point"
    rationale = (
        "Between a guard read (task phase, inbox membership, backlog "
        "depth) and the resume edge of an await, any other event-loop "
        "task may mutate the guarded state: the assignment dispatched "
        "for an ASSIGNED task that a concurrent withdrawal already "
        "completed, the inbox entry popped twice.  Re-test the guard "
        "after the await or mutate before suspending."
    )
    scope = ("repro.service",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for cfg in function_cfgs(module.tree):
            if not cfg.is_async or not any(block.awaits for block in cfg.blocks):
                continue
            for stmt, target, stale in _staleness_races(cfg, module):
                guards = ", ".join(
                    f"`{fact}` (line {lineno})" for fact, lineno in stale
                )
                yield self.finding(
                    module,
                    stmt.lineno,
                    stmt.col_offset,
                    f"mutation of `{canonical(target)}` relies on guard "
                    f"{guards} validated before an await point; the guard is "
                    "stale on the resume edge — re-test it after the await "
                    "or mutate before suspending",
                    cfg.name,
                )
