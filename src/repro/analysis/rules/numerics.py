"""NUM001 — no float equality in deadline/statistics math.

Eq. 2/3 (window and completion probabilities) and the power-law MLE all
produce floats whose exact bit patterns depend on evaluation order — the
vectorized kernels are only guaranteed equivalent to the reference within
tolerance at the *suite* level (tests/core_matching/test_kernel_equivalence
pins the cases where they are bit-equal).  An ``==``/``!=`` against a float
literal in ``repro.core`` or ``repro.stats`` therefore encodes an accidental
bit-pattern assumption; use ``math.isclose`` / ``np.isclose`` or an explicit
tolerance.

The rule flags comparisons in which either operand is a float literal
(including negated literals like ``-1.0``).  Sentinel comparisons against
``0``/integers and identity tests are untouched; a deliberate exact-float
contract (e.g. testing an exact IEEE value like ``0.5``) can carry an inline
``# reprolint: disable=NUM001`` with a comment saying why exactness holds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..modinfo import ModuleInfo, enclosing_symbols
from .base import Rule


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class FloatEqualityRule(Rule):
    """NUM001: require tolerance helpers instead of float-literal ==/!=."""

    id = "NUM001"
    title = "no ==/!= against float literals in core/ and stats/"
    rationale = (
        "Deadline probabilities and MLE exponents are floating point; exact "
        "equality silently depends on evaluation order and backend (reference "
        "vs. vectorized vs. numba kernels).  Use math.isclose/np.isclose."
    )
    scope = ("repro.core", "repro.stats")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    op_text = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"float-literal `{op_text}` comparison; use "
                        "math.isclose/np.isclose or an explicit tolerance",
                        symbols.get(id(node), ""),
                    )
                    break  # one finding per comparison chain
