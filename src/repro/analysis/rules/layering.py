"""KER001 — architectural layering via import-graph analysis.

The package DAG the reproduction relies on (DESIGN.md):

    model, graph, stats  →  core  →  platform  →  retainer  →  experiments → dist
                 core/kernels (leaf: numpy-only numeric backends)
                 platform  →  service  →  experiments (wall-clock gateway)

``repro.service`` is the wall-clock deployment layer: it drives the same
platform components as the DES harness, so the platform (and everything
below it) must never import it — the Coordinator's ``server_factory``
callback exists precisely to keep that edge inverted.

``core/kernels`` must stay importable without the event engine or the
platform so the numba cell and the perf harness can load backends in
isolation, and so kernel bit-equivalence tests pin *numeric* behaviour, not
platform behaviour.  More generally, lower layers importing upward create
cycles that break the "refactor freely" north star.

The rule resolves relative imports to absolute dotted names (purely
syntactically) and flags any import from a forbidden layer.  The layering
table below is the machine-readable architecture; extend it when adding a
package.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..findings import Finding
from ..modinfo import ModuleInfo
from .base import Rule

#: package prefix → layers it must never import.  The most specific matching
#: prefix wins, so ``core.kernels`` gets the stricter leaf contract.
LAYERING: Dict[str, Tuple[str, ...]] = {
    "repro.core.kernels": (
        "repro.platform",
        "repro.sim",
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.obs",
        "repro.chaos",
        "repro.graph",
        "repro.model",
        "repro.workload",
    ),
    "repro.core": (
        "repro.platform",
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.chaos",
        "repro.workload",
    ),
    "repro.stats": (
        "repro.platform",
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.chaos",
    ),
    "repro.graph": (
        "repro.platform",
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.chaos",
    ),
    "repro.model": (
        "repro.platform",
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.core",
        "repro.sim",
    ),
    "repro.sim": (
        "repro.platform",
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.core",
    ),
    "repro.platform": ("repro.service", "repro.experiments", "repro.dist"),
    "repro.scenarios": ("repro.service", "repro.experiments", "repro.dist"),
    "repro.retainer": (
        "repro.service",
        "repro.experiments",
        "repro.dist",
        "repro.chaos",
    ),
    "repro.service": ("repro.experiments", "repro.dist"),
}


def _layer_for(module: str) -> Tuple[str, Tuple[str, ...]]:
    """Most specific layering entry for ``module`` ('' if unconstrained)."""
    best = ""
    for prefix in LAYERING:
        if module == prefix or module.startswith(prefix + "."):
            if len(prefix) > len(best):
                best = prefix
    return best, LAYERING.get(best, ())


class LayeringRule(Rule):
    """KER001: kernels (and other low layers) must not import upward."""

    id = "KER001"
    title = "layering: core/kernels and low layers must not import upward"
    rationale = (
        "Kernel backends are numpy-only leaves so bit-equivalence tests and "
        "the numba CI cell can load them without the platform; upward "
        "imports create cycles that make aggressive refactors unsafe."
    )
    scope = ()  # scoping handled by the layering table

    def applies_to(self, module: str) -> bool:
        return _layer_for(module)[0] != ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        layer, forbidden = _layer_for(module.module)
        if not layer:  # pragma: no cover - applies_to filters this
            return
        for imp in module.imported_names:
            if imp.type_only:
                # ``if TYPE_CHECKING:`` imports exist only for annotations
                # and cannot create runtime cycles.
                continue
            name = imp.name
            for bad in forbidden:
                if name == bad or name.startswith(bad + "."):
                    yield self.finding(
                        module,
                        imp.lineno,
                        0,
                        f"layer `{layer}` must not import `{bad}` "
                        f"(imports `{name}`); invert the dependency or move "
                        "the shared piece down a layer",
                    )
                    break
