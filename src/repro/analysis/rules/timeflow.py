"""TIME001 — time-domain taint: sim time and wall time must not mix.

Since PR 8 the codebase runs the same REACT middleware under two clocks:
the DES :class:`~repro.sim.engine.Engine` (sim seconds, ``clock.now``) and
the live gateway's ``WallClockRuntime`` (``loop.time()``-derived).  Both
domains are plain floats, so nothing stops ``deadline - loop.time()`` where
``deadline`` came from sim time — the comparison is meaningless and the
paper's Eq. 2/3 deadline checks silently evaluate against the wrong clock.

TIME001 runs an intra-procedural forward taint analysis over each function
CFG (:mod:`repro.analysis.dataflow`):

* **Sources.**  ``<clock-ish receiver>.now`` attribute reads carry the
  ``sim`` label (receivers named ``clock``/``engine``/``runtime`` modulo
  leading underscores — the type is unknown statically, so conventional
  naming stands in, same trade-off as DET001's ``loop.time()`` heuristic).
  ``time.monotonic()``/``time.time()``/``perf_counter()`` and
  ``loop.time()``-style reads carry ``wall``.
* **Propagation.**  Assignments (including tuple unpacking, aug-assign,
  ``for`` targets and ``with ... as``) carry labels to variables and
  attribute chains; arithmetic and min/max/abs/float pass labels through.
* **Sinks.**  A binary arithmetic expression or an ordering/equality
  comparison with ``sim`` on one side and ``wall`` on the other is a
  finding.

The analysis is intra-procedural by design: a cross-domain value that
escapes through a call boundary needs an explicit conversion at that
boundary anyway, which is exactly the structure the rule pushes toward.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Set, Tuple

from ..cfg import CFG, Block, function_cfgs
from ..dataflow import (
    EMPTY_STATE,
    EMPTY_TAINTS,
    DataflowDivergence,
    Taints,
    TaintState,
    assign_targets,
    canonical,
    solve_forward,
    taint_equal,
    taint_get,
    taint_join,
    taint_set,
)
from ..findings import Finding
from ..modinfo import ModuleInfo, enclosing_symbols
from .base import Rule
from .determinism import _loop_time_receiver

#: Taint labels.
SIM = "sim"
WALL = "wall"

#: Receiver basenames (leading underscores stripped) whose ``.now`` reads
#: are sim-time sources: ``clock.now``, ``self._engine.now``,
#: ``runtime.now``.
SIM_RECEIVERS = frozenset({"clock", "engine", "runtime", "sim_clock", "event_clock"})

#: Wall-clock calls producing float seconds (datetime objects excluded —
#: mixing those with floats raises at runtime already).
WALL_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
    }
)

#: ``asyncio.get_running_loop().time()``-style factories.
LOOP_FACTORIES = frozenset({"asyncio.get_running_loop", "asyncio.get_event_loop"})

#: Builtins that return a value in the same time domain as their inputs.
PASSTHROUGH_CALLS = frozenset({"min", "max", "abs", "round", "float", "sum"})

#: Comparison ops that constitute a cross-domain sink.
_ORDERING_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: One detected mix: (node carrying line/col, kind description).
_Mix = Tuple[ast.AST, str]


def _receiver_basename(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id.lstrip("_")
    if isinstance(node, ast.Attribute):
        return node.attr.lstrip("_")
    return None


def _is_sim_source(node: ast.Attribute) -> bool:
    if node.attr != "now":
        return False
    base = _receiver_basename(node.value)
    return base is not None and base in SIM_RECEIVERS


def _is_wall_call(module: ModuleInfo, call: ast.Call) -> bool:
    name = module.qualified_name(call.func)
    if name is not None and name in WALL_CALLS:
        return True
    if _loop_time_receiver(call) is not None:
        return True
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Call)
    ):
        factory = module.qualified_name(func.value.func)
        return factory is not None and factory in LOOP_FACTORIES
    return False


def _mixes(a: Taints, b: Taints) -> bool:
    return (SIM in a and WALL in b) or (WALL in a and SIM in b)


class _TaintEval:
    """Evaluate one expression's taint under a state, collecting mixes."""

    def __init__(
        self,
        module: ModuleInfo,
        state: TaintState,
        collect: Optional[List[_Mix]],
    ) -> None:
        self.module = module
        self.state = state
        self.collect = collect

    def _mix(self, node: ast.AST, kind: str) -> None:
        if self.collect is not None:
            self.collect.append((node, kind))

    def eval(self, expr: ast.expr) -> Taints:
        if isinstance(expr, ast.Name):
            return taint_get(self.state, expr.id)
        if isinstance(expr, ast.Attribute):
            if _is_sim_source(expr):
                return frozenset({SIM})
            if isinstance(expr.value, ast.Call):
                self.eval(expr.value)
            return taint_get(self.state, canonical(expr))
        if isinstance(expr, ast.Subscript):
            inner = self.eval(expr.value)
            if isinstance(expr.slice, ast.expr):
                self.eval(expr.slice)
            return taint_get(self.state, canonical(expr)) | inner
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            if _mixes(left, right):
                self._mix(expr, "arithmetic")
            return left | right
        if isinstance(expr, ast.Compare):
            operands = [self.eval(expr.left)]
            operands.extend(self.eval(comparator) for comparator in expr.comparators)
            for index, op in enumerate(expr.ops):
                if isinstance(op, _ORDERING_CMPS) and _mixes(
                    operands[index], operands[index + 1]
                ):
                    self._mix(expr, "comparison")
            return EMPTY_TAINTS
        if isinstance(expr, ast.BoolOp):
            labels: Taints = EMPTY_TAINTS
            for value in expr.values:
                labels |= self.eval(value)
            return labels
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            return self.eval(expr.body) | self.eval(expr.orelse)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.Await):
            return self.eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            labels = EMPTY_TAINTS
            for element in expr.elts:
                labels |= self.eval(element)
            return labels
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self.eval(key)
            for value in expr.values:
                self.eval(value)
            return EMPTY_TAINTS
        if isinstance(
            expr,
            (
                ast.Constant,
                ast.Lambda,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
                ast.JoinedStr,
            ),
        ):
            # Comprehensions introduce their own scope; skipping them only
            # loses precision, never soundness of the report (may-analysis).
            return EMPTY_TAINTS
        labels = EMPTY_TAINTS
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                labels |= self.eval(child)
        return labels

    def _call(self, call: ast.Call) -> Taints:
        if _is_wall_call(self.module, call):
            return frozenset({WALL})
        name = self.module.qualified_name(call.func)
        arg_labels: Taints = EMPTY_TAINTS
        for arg in call.args:
            arg_labels |= self.eval(arg)
        for keyword in call.keywords:
            arg_labels |= self.eval(keyword.value)
        if name is not None and name in PASSTHROUGH_CALLS:
            return arg_labels
        # Unknown callee: arguments were still evaluated (so mixes inside
        # them are reported), but the return value is untracked.
        return EMPTY_TAINTS


def _target_key(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return canonical(target)
    return None


def _time_mixes(cfg: CFG, module: ModuleInfo) -> List[_Mix]:
    """Solve the taint fixpoint, then collect mixes in a final pass."""

    def transfer_with(
        collect: Optional[List[_Mix]],
    ) -> Callable[[Block, TaintState], TaintState]:
        def transfer(block: Block, state: TaintState) -> TaintState:
            for element in block.elements:
                node = element.node
                ev = _TaintEval(module, state, collect)
                if element.is_test:
                    if isinstance(node, ast.expr):
                        ev.eval(node)
                    continue
                state = _step(node, state, ev)
            return state

        return transfer

    def _step(node: ast.AST, state: TaintState, ev: _TaintEval) -> TaintState:
        ev.state = state
        if isinstance(node, ast.Expr):
            ev.eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                ev.eval(node.value)
        elif isinstance(node, ast.Assert):
            ev.eval(node.test)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                ev.eval(node.exc)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.For, ast.AsyncFor)):
            iter_labels: Optional[Taints] = None
            for target, value in assign_targets(node):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if iter_labels is None:
                        iter_labels = ev.eval(node.iter)
                    labels = iter_labels
                elif value is None:
                    labels = EMPTY_TAINTS
                else:
                    labels = ev.eval(value)
                key = _target_key(target)
                if isinstance(node, ast.AugAssign) and key is not None:
                    existing = taint_get(state, key)
                    if _mixes(existing, labels):
                        ev._mix(node, "arithmetic")
                    labels = labels | existing
                if key is not None:
                    state = taint_set(state, key, labels)
                    ev.state = state
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                key = _target_key(target)
                if key is not None:
                    state = taint_set(state, key, EMPTY_TAINTS)
                    ev.state = state
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                labels = ev.eval(item.context_expr)
                if item.optional_vars is not None:
                    key = _target_key(item.optional_vars)
                    if key is not None:
                        state = taint_set(state, key, labels)
                        ev.state = state
        return state

    try:
        in_states = solve_forward(
            cfg,
            entry_state=EMPTY_STATE,
            bottom=EMPTY_STATE,
            join=taint_join,
            transfer=transfer_with(None),
            equals=taint_equal,
        )
    except DataflowDivergence:  # pragma: no cover - defensive
        return []
    mixes: List[_Mix] = []
    collecting = transfer_with(mixes)
    for block in cfg.blocks:
        collecting(block, in_states.get(block.id, EMPTY_STATE))
    # One syntactic site can surface through several flattened targets.
    seen: Set[Tuple[int, int, str]] = set()
    unique: List[_Mix] = []
    for node, kind in mixes:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), kind)
        if key in seen:
            continue
        seen.add(key)
        unique.append((node, kind))
    return unique


class TimeDomainTaintRule(Rule):
    """TIME001: sim-time and wall-clock values never meet in one expression."""

    id = "TIME001"
    title = "no arithmetic/comparison mixing sim time with wall-clock time"
    rationale = (
        "The DES engine and the live gateway both hand out float seconds, "
        "but on different clocks: EventClock.now counts simulated seconds "
        "from zero, loop.time()/time.monotonic() counts host uptime.  An "
        "expression combining both (deadline - loop.time() where deadline "
        "is sim time) type-checks, runs, and yields garbage — deadlines "
        "fire years early or never.  Convert explicitly at the domain "
        "boundary (WallClockRuntime owns that mapping) and keep each "
        "function in one domain."
    )
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        for cfg in function_cfgs(module.tree):
            for node, kind in _time_mixes(cfg, module):
                lineno = getattr(node, "lineno", cfg.func.lineno)
                col = getattr(node, "col_offset", 0)
                yield self.finding(
                    module,
                    lineno,
                    col,
                    f"{kind} mixes a sim-time value (EventClock `.now`) with "
                    "a wall-clock value (loop.time()/time.monotonic()); the "
                    "two clocks share no epoch — convert at the domain "
                    "boundary instead",
                    symbols.get(id(node), cfg.name),
                )
