"""Rule plugin base class.

A rule is a stateless object with an ID, human docs, a module-name scope,
and a ``check`` method producing findings from a :class:`ModuleInfo`.  New
rules subclass :class:`Rule`, set the class attributes, and register in
:data:`repro.analysis.rules.RULES` — nothing else in the engine changes
(docs/STATIC_ANALYSIS.md walks through adding one).
"""

from __future__ import annotations

import abc
from typing import Iterator, Tuple

from ..findings import Finding
from ..modinfo import ModuleInfo


def in_scope(module: str, prefixes: Tuple[str, ...]) -> bool:
    """True when ``module`` is one of ``prefixes`` or nested under one."""
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class Rule(abc.ABC):
    """One invariant, e.g. "no wall-clock in simulation code"."""

    #: Stable identifier used in findings, suppressions and the baseline.
    id: str = "RULE000"
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Why the invariant matters for the reproduction (shown by --explain).
    rationale: str = ""
    #: Module-name prefixes the rule applies to ("" in subclass = everywhere).
    scope: Tuple[str, ...] = ()
    #: Module names exempted even inside scope (e.g. the RNG factory itself).
    exempt: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if in_scope(module, self.exempt):
            return False
        if not self.scope:
            return True
        return in_scope(module, self.scope)

    @abc.abstractmethod
    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for every violation in ``module``."""

    # ------------------------------------------------------------- helpers
    def finding(
        self,
        module: ModuleInfo,
        line: int,
        col: int,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.rel_path,
            line=line,
            col=col,
            message=message,
            symbol=symbol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.id!r})"
