"""OBS001 — observability goes through the null-object facade.

PR 3 made every obs call site unconditional: components resolve their
optional ``observability`` argument through :func:`repro.obs.runtime.resolve`
once, then call instruments/tracer unconditionally (NULL_OBS no-ops cost
~140 ns).  Conditional ``if obs is not None: obs.tracer...`` branching
reintroduces the two problems the facade removed: hot-path branches the perf
guard cannot budget, and half-instrumented code paths where the branch is
forgotten.  This rule flags ``is None`` / ``is not None`` tests and bare
truthiness guards on observability-ish names (``obs``, ``observability``,
``tracer``, and ``_``-prefixed variants) inside the instrumented packages.

The facade's own ``resolve()`` lives in ``repro.obs`` which is out of scope
by construction (it is the one place allowed to look at None).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..modinfo import ModuleInfo, enclosing_symbols
from .base import Rule

#: Base names treated as observability handles after stripping underscores.
OBS_NAMES = frozenset({"obs", "observability", "tracer", "metrics_registry"})


def _obs_basename(node: ast.expr) -> Optional[str]:
    """The trailing identifier if ``node`` names an obs-ish handle."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    stripped = name.lstrip("_")
    return name if stripped in OBS_NAMES else None


class NullObjectFacadeRule(Rule):
    """OBS001: no `if obs is not None` branching around telemetry calls."""

    id = "OBS001"
    title = "obs/metrics call sites use the null-object facade, not None checks"
    rationale = (
        "resolve(observability) hands back NULL_OBS so every call site is "
        "unconditional; None-guards reintroduce unbudgeted hot-path branches "
        "and forgotten-instrumentation bugs."
    )
    scope = ("repro.platform", "repro.core", "repro.sim", "repro.chaos", "repro.stats")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            test: Optional[ast.expr] = None
            if isinstance(node, (ast.If, ast.IfExp, ast.While)):
                test = node.test
            elif isinstance(node, ast.Assert):
                test = node.test
            if test is None:
                continue
            for finding in self._scan_test(module, test, symbols.get(id(node), "")):
                yield finding

    def _scan_test(
        self, module: ModuleInfo, test: ast.expr, symbol: str
    ) -> Iterator[Finding]:
        # Recurse through boolean operators and negation.
        if isinstance(test, ast.BoolOp):
            for value in test.values:
                yield from self._scan_test(module, value, symbol)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            yield from self._scan_test(module, test.operand, symbol)
            return
        if isinstance(test, ast.Compare):
            if not any(isinstance(op, (ast.Is, ast.IsNot)) for op in test.ops):
                return
            operands = [test.left, *test.comparators]
            if not any(
                isinstance(o, ast.Constant) and o.value is None for o in operands
            ):
                return
            name = next(
                (n for o in operands if (n := _obs_basename(o)) is not None), None
            )
            if name is not None:
                yield self.finding(
                    module,
                    test.lineno,
                    test.col_offset,
                    f"None-check on observability handle `{name}`; resolve() it "
                    "once to NULL_OBS and call unconditionally",
                    symbol,
                )
            return
        name = _obs_basename(test)
        if name is not None:
            yield self.finding(
                module,
                test.lineno,
                test.col_offset,
                f"truthiness guard on observability handle `{name}`; the "
                "null-object facade makes the guard unnecessary",
                symbol,
            )
