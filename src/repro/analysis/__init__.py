"""reprolint — AST-based determinism & invariant linter for the reproduction.

The paper's claims are only checkable because every run is seed-deterministic
and every numeric contract (Eq. 2/3 deadline probabilities, kernel
bit-equivalence) is exact.  ``repro.analysis`` makes those project invariants
*machine-checkable* instead of folklore: a rule-plugin framework walks the
``src/repro`` AST and reports violations with stable fingerprints, inline
``# reprolint: disable=RULE`` suppressions, and a committed baseline so
legacy findings never block CI while new ones do.

Rule catalogue (see :mod:`repro.analysis.rules` and docs/STATIC_ANALYSIS.md):

========  ==============================================================
DET001    no wall-clock / unseeded RNG inside ``sim``/``core``/``platform``
DET002    RNG objects threaded from ``sim.rng`` streams, never global state
NUM001    no ``==``/``!=`` against float literals in ``core``/``stats``
OBS001    observability goes through the null-object facade, not ``if obs``
KER001    layering: ``core/kernels`` (and ``core``/``stats``/``graph``)
          must not import upward (``platform``/``sim``/...)
API001    public functions in ``core``/``stats``/``platform`` fully annotated
========  ==============================================================

Entry points: ``python -m repro.analysis`` (or the ``lint`` subcommand of
``python -m repro.experiments``) and the programmatic :func:`lint_paths` /
:func:`lint_source` API used by the test-suite fixtures.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .engine import LintResult, lint_file, lint_paths, lint_source
from .findings import Finding
from .rules import all_rules, get_rule

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
