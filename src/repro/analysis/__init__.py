"""reprolint — AST-based determinism & invariant linter for the reproduction.

The paper's claims are only checkable because every run is seed-deterministic
and every numeric contract (Eq. 2/3 deadline probabilities, kernel
bit-equivalence) is exact.  ``repro.analysis`` makes those project invariants
*machine-checkable* instead of folklore: a rule-plugin framework walks the
``src/repro`` AST and reports violations with stable fingerprints, inline
``# reprolint: disable=RULE`` suppressions, and a committed baseline so
legacy findings never block CI while new ones do.

Rule catalogue (see :mod:`repro.analysis.rules` and docs/STATIC_ANALYSIS.md):

========  ==============================================================
DET001    no wall-clock / unseeded RNG inside ``sim``/``core``/``platform``
DET002    RNG objects threaded from ``sim.rng`` streams, never global state
DET003    child seeds via SeedSequence spawn keys, not arithmetic on seeds
NUM001    no ``==``/``!=`` against float literals in ``core``/``stats``
OBS001    observability goes through the null-object facade, not ``if obs``
KER001    layering: ``core/kernels`` (and ``core``/``stats``/``graph``)
          must not import upward (``platform``/``sim``/...)
API001    public functions in ``core``/``stats``/``platform`` fully annotated
ASYNC001  no blocking calls reachable from ``async def`` in ``service``
ASYNC002  coroutine results must be awaited / stored / gathered
ASYNC003  no check-then-act staleness races across ``await`` points
TIME001   sim-clock and wall-clock values never mixed in one expression
EXC001    broad excepts in handler code must re-raise or count the failure
========  ==============================================================

The ``ASYNC``/``TIME``/``EXC`` rules run on a dataflow tier — per-function
CFGs with await-point blocks (:mod:`repro.analysis.cfg`), a forward
worklist solver with a taint lattice (:mod:`repro.analysis.dataflow`) and
cross-module call resolution (:mod:`repro.analysis.callgraph`).

Entry points: ``python -m repro.analysis`` (or the ``lint`` subcommand of
``python -m repro.experiments``) and the programmatic :func:`lint_paths` /
:func:`lint_source` API used by the test-suite fixtures.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .engine import LintResult, lint_file, lint_paths, lint_source
from .findings import Finding
from .rules import all_rules, get_rule

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
