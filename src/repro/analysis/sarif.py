"""SARIF 2.1.0 renderer for reprolint.

SARIF (Static Analysis Results Interchange Format) is the OASIS standard
consumed by GitHub code scanning, VS Code's SARIF viewer, and most CI
annotation tooling.  One ``run`` per invocation: the tool descriptor lists
every registered rule, each new finding becomes a ``result`` at level
``error`` with a ``partialFingerprints`` entry carrying the same stable
fingerprint the baseline uses, and baselined findings are emitted with an
``external`` suppression so viewers render them greyed-out instead of
dropping them on the floor.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .. import __version__
from .engine import LintResult
from .findings import Finding
from .rules import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthetic rule ID used for files that fail to parse.
PARSE_RULE_ID = "PARSE"


def _rule_descriptor(rule_id: str, title: str, rationale: str) -> Dict[str, Any]:
    descriptor: Dict[str, Any] = {
        "id": rule_id,
        "shortDescription": {"text": title},
    }
    if rationale:
        descriptor["fullDescription"] = {"text": rationale}
    return descriptor


def _tool_component() -> Dict[str, Any]:
    rules = [_rule_descriptor(r.id, r.title, r.rationale) for r in all_rules()]
    rules.append(_rule_descriptor(PARSE_RULE_ID, "File failed to parse", ""))
    return {
        "name": "reprolint",
        "version": __version__,
        "informationUri": "docs/STATIC_ANALYSIS.md",
        "rules": rules,
    }


def _result(finding: Finding, suppressed: bool = False) -> Dict[str, Any]:
    region: Dict[str, Any] = {"startLine": max(finding.line, 1)}
    if finding.col:
        # SARIF columns are 1-based; Finding.col follows ast's 0-based offsets.
        region["startColumn"] = finding.col + 1
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": region,
                }
            }
        ],
    }
    if finding.fingerprint:
        result["partialFingerprints"] = {"reprolintFingerprint/v1": finding.fingerprint}
    if finding.symbol:
        result["message"]["text"] = f"{finding.message} [{finding.symbol}]"
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def render_sarif(
    result: LintResult,
    new: List[Finding],
    baselined: Optional[List[Finding]] = None,
) -> str:
    """Serialize one lint run as a SARIF 2.1.0 log (JSON string)."""
    results = [_result(f) for f in result.errors]
    results.extend(_result(f) for f in new)
    results.extend(_result(f, suppressed=True) for f in (baselined or []))
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": _tool_component()},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2)
