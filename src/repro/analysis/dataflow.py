"""Generic forward dataflow solving over :mod:`repro.analysis.cfg` graphs.

One solver, two clients today:

* **TIME001** runs a *taint* analysis — each variable (or attribute chain)
  maps to the set of time-domain labels its value may carry (``{"sim"}``,
  ``{"wall"}``, both, or neither) — and flags expressions that combine both
  domains arithmetically.
* **ASYNC003** runs a *staleness* analysis — guard facts validated by a
  branch test decay to stale when execution crosses an await-point node,
  and a mutation control-dependent on a stale fact is a check-then-act race.

Both fit the classic monotone-framework shape, so the solver is written
once against three callables:

``join(a, b)``
    Least upper bound of two abstract states (must be commutative,
    associative, idempotent).
``transfer(block, state)``
    Abstract execution of one basic block from its in-state to its
    out-state.  Must be monotone and must NOT mutate ``state``.
``equals(a, b)``
    State equality, used for the fixpoint test (defaults to ``==``).

The worklist iterates in reverse postorder, which converges in
O(depth of loop nesting) passes for the reducible graphs the CFG builder
produces.  A hard iteration cap turns a non-monotone transfer function
(a rule-author bug) into a loud :class:`DataflowDivergence` rather than a
hang.

The taint-state helpers at the bottom (:data:`TaintState`, immutable-map
operations) are shared by the rules so each rule only writes its transfer
function.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from .cfg import CFG, Block

S = TypeVar("S")

#: Fixpoint pass cap: |blocks| * this factor block visits before giving up.
MAX_VISIT_FACTOR = 64


class DataflowDivergence(RuntimeError):
    """The fixpoint iteration failed to converge (non-monotone transfer)."""


def solve_forward(
    cfg: CFG,
    entry_state: S,
    bottom: S,
    join: Callable[[S, S], S],
    transfer: Callable[[Block, S], S],
    equals: Optional[Callable[[S, S], bool]] = None,
) -> Dict[int, S]:
    """Run a forward worklist analysis to fixpoint.

    Returns the **in-state** of every block (keyed by block id).  Rules
    that need program-point precision re-run their transfer function over
    a block's elements starting from the returned in-state — that final
    pass is where findings are collected, so the fixpoint iterations stay
    side-effect free.
    """
    eq = equals if equals is not None else (lambda a, b: a == b)
    order = cfg.reverse_postorder()
    position = {block_id: index for index, block_id in enumerate(order)}

    in_states: Dict[int, S] = {block_id: bottom for block_id in position}
    in_states[cfg.entry] = entry_state
    out_states: Dict[int, S] = {}

    # Seed with every block so unreachable code still gets `bottom` states.
    worklist = list(order)
    in_list = set(worklist)
    budget = max(1, len(cfg.blocks)) * MAX_VISIT_FACTOR

    while worklist:
        if budget <= 0:
            raise DataflowDivergence(
                f"dataflow did not converge on {cfg.name!r} "
                f"({len(cfg.blocks)} blocks); transfer function is likely "
                "non-monotone"
            )
        budget -= 1
        # Pop the earliest block in reverse postorder for fast convergence.
        worklist.sort(key=lambda b: position.get(b, 0))
        block_id = worklist.pop(0)
        in_list.discard(block_id)
        block = cfg.block(block_id)

        state = in_states[block_id]
        if block.pred:
            merged: Optional[S] = None
            for pred in block.pred:
                pred_out = out_states.get(pred)
                if pred_out is None:
                    continue
                merged = pred_out if merged is None else join(merged, pred_out)
            if merged is not None:
                state = merged if block_id != cfg.entry else join(entry_state, merged)
            in_states[block_id] = state

        new_out = transfer(block, state)
        old_out = out_states.get(block_id)
        if old_out is not None and eq(old_out, new_out):
            continue
        out_states[block_id] = new_out
        for succ in block.succ:
            if succ not in in_list:
                in_list.add(succ)
                worklist.append(succ)
    return in_states


# --------------------------------------------------------------------------
# Taint lattice: immutable mapping  key -> frozenset of labels.
# Keys are canonical expression strings (``ast.unparse``); labels are
# rule-defined (e.g. "sim" / "wall").  Join is the pointwise union, so the
# lattice height is |keys| * |labels| and termination is structural.
# --------------------------------------------------------------------------

Taints = FrozenSet[str]
TaintState = Mapping[str, Taints]

EMPTY_TAINTS: Taints = frozenset()
EMPTY_STATE: TaintState = {}


def taint_join(a: TaintState, b: TaintState) -> TaintState:
    """Pointwise union of two taint states."""
    if not a:
        return b
    if not b:
        return a
    merged: Dict[str, Taints] = dict(a)
    for key, labels in b.items():
        existing = merged.get(key)
        merged[key] = labels if existing is None else existing | labels
    return merged


def taint_set(state: TaintState, key: str, labels: Taints) -> TaintState:
    """Strong update: ``key`` now carries exactly ``labels``."""
    updated = dict(state)
    if labels:
        updated[key] = labels
    else:
        updated.pop(key, None)
    return updated


def taint_get(state: TaintState, key: str) -> Taints:
    return state.get(key, EMPTY_TAINTS)


def taint_equal(a: TaintState, b: TaintState) -> bool:
    if a is b:
        return True
    if len(a) != len(b):
        # Keys mapped to the empty set are normalized away by taint_set,
        # so a raw length comparison is safe.
        return False
    return all(b.get(key) == labels for key, labels in a.items())


def canonical(node: ast.AST) -> str:
    """Canonical source form of an expression, used as a state key.

    ``ast.unparse`` gives a normalized rendering, so ``self._inbox[ wid ]``
    and ``self._inbox[wid]`` share one key.
    """
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we feed
        return f"<{type(node).__name__}@{getattr(node, 'lineno', 0)}>"


def assign_targets(stmt: ast.stmt) -> Iterable[Tuple[ast.expr, Optional[ast.expr]]]:
    """(target, value) pairs for assignment-like statements.

    Tuple targets are flattened; the value is None when it cannot be
    attributed to one element (starred unpacking keeps the whole RHS).
    """
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            yield from _flatten_target(target, stmt.value)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield from _flatten_target(stmt.target, stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target, stmt.value
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from _flatten_target(stmt.target, None)


def _flatten_target(
    target: ast.expr, value: Optional[ast.expr]
) -> Iterable[Tuple[ast.expr, Optional[ast.expr]]]:
    if isinstance(target, (ast.Tuple, ast.List)):
        elements = target.elts
        values: Optional[List[ast.expr]] = None
        if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(elements):
            values = list(value.elts)
        for index, element in enumerate(elements):
            yield from _flatten_target(
                element, values[index] if values is not None else value
            )
    else:
        yield target, value
