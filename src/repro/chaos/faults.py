"""Declarative fault schedules for chaos injection.

Every fault is a frozen dataclass pinned to simulated time: ``start`` is
when it strikes and ``duration`` how long it stays active (0 for one-shot
faults such as an abandonment wave).  A :class:`FaultSchedule` bundles a
tuple of faults with the seed of the injector's private RNG stream, so a
chaos scenario is a *value*: hashable, printable, and — because the engine
and every random draw are deterministic — exactly replayable.  Two runs of
the same workload under the same schedule produce bit-identical metrics.

Fault taxonomy (see docs/CHAOS.md for the full matrix):

========================  ====================================================
:class:`AbandonmentWave`  a fraction of currently-executing workers silently
                          walk away at ``start`` (mass §IV-B abandonment)
:class:`NoShowFault`      assignments made during the window are accepted but
                          never started: the worker sits ``hold_time`` seconds
                          and returns nothing
:class:`StaleProfileFault` completion observations reaching the Profiling
                          Component are distorted by ``distortion`` ×
:class:`MatcherStallFault` every batch started during the window is charged
                          ``extra_latency`` additional simulated seconds
:class:`SweepOutageFault` the Dynamic Assignment Component's Eq. 2 sweep
                          evaluates nothing during the window
:class:`BlackoutFault`    the region server loses all assignment state: no
                          batches run, in-flight batches abort, assigned
                          tasks are orphaned and re-adopted on recovery
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Fault:
    """Base class: one scheduled disturbance of the platform."""

    #: Simulated time at which the fault activates.
    start: float
    #: Active window length in seconds; 0 means a one-shot fault.
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def kind(self) -> str:
        """Stable kebab-case name for logs and reports."""
        return _KIND_NAMES[type(self)]


@dataclass(frozen=True)
class AbandonmentWave(Fault):
    """At ``start``, ``fraction`` of busy workers abandon their tasks."""

    #: Fraction of currently-executing workers that walk away.
    fraction: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.fraction <= 1.0):
            raise ValueError(f"fraction must be in [0,1], got {self.fraction}")


@dataclass(frozen=True)
class NoShowFault(Fault):
    """Workers accept tasks during the window but never start them."""

    #: Probability that an assignment made during the window is a no-show.
    probability: float = 1.0
    #: How long a no-show worker sits on the task before walking away.
    hold_time: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0,1], got {self.probability}")
        if self.hold_time <= 0:
            raise ValueError(f"hold_time must be positive, got {self.hold_time}")


@dataclass(frozen=True)
class StaleProfileFault(Fault):
    """Profile observations recorded during the window are corrupted."""

    #: Multiplier applied to every completion-time observation; values > 1
    #: make every worker look like a dawdler, values < 1 hide dawdling.
    distortion: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.distortion <= 0:
            raise ValueError(f"distortion must be positive, got {self.distortion}")


@dataclass(frozen=True)
class MatcherStallFault(Fault):
    """The Scheduling Component's matcher latency spikes."""

    #: Extra simulated seconds charged to every batch started in-window.
    extra_latency: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_latency <= 0:
            raise ValueError(f"extra_latency must be positive, got {self.extra_latency}")


@dataclass(frozen=True)
class SweepOutageFault(Fault):
    """The Eq. 2 reassignment monitor goes dark for the window."""


@dataclass(frozen=True)
class BlackoutFault(Fault):
    """The whole region server blacks out for the window."""


_KIND_NAMES = {
    AbandonmentWave: "abandonment-wave",
    NoShowFault: "no-show",
    StaleProfileFault: "stale-profile",
    MatcherStallFault: "matcher-stall",
    SweepOutageFault: "sweep-outage",
    BlackoutFault: "blackout",
}

FAULT_KINDS: Tuple[type, ...] = tuple(_KIND_NAMES)


@dataclass(frozen=True)
class FaultSchedule:
    """A seedable, replayable chaos scenario: faults plus the injector seed."""

    faults: Tuple[Fault, ...] = ()
    #: Seed of the injector's private RNG (wave victim choice, no-show coins).
    seed: int = 0

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a Fault: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def horizon(self) -> float:
        """Simulated time by which every fault window has closed."""
        return max((fault.end for fault in self.faults), default=0.0)

    def of_kind(self, kind: type) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if isinstance(f, kind))

    @classmethod
    def standard(
        cls,
        first_start: float = 60.0,
        spacing: float = 120.0,
        window: float = 40.0,
        seed: int = 0,
    ) -> "FaultSchedule":
        """One of every fault kind, spaced out so recovery is observable.

        The order goes from mildest to harshest — profile corruption, sweep
        outage, no-shows, a matcher stall, an abandonment wave, and finally
        a full blackout — each separated by ``spacing`` seconds of calm.
        """
        t = first_start
        faults = []
        for fault_type, kwargs in (
            (StaleProfileFault, {"duration": window}),
            (SweepOutageFault, {"duration": window}),
            (NoShowFault, {"duration": window}),
            (MatcherStallFault, {"duration": window}),
            (AbandonmentWave, {}),
            (BlackoutFault, {"duration": window}),
        ):
            faults.append(fault_type(start=t, **kwargs))
            t += spacing
        return cls(faults=tuple(faults), seed=seed)
