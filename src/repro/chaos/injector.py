"""The FaultInjector: wires a :class:`FaultSchedule` into a live server.

The injector schedules one FAULT_INJECTION event per fault activation and
(for windowed faults) one per deactivation, then perturbs the platform
through the explicit chaos interfaces the components expose:

* ``server.inject_abandonment`` / ``server.live_execution`` — abandonment
  waves corrupt in-flight executions;
* ``server.execution_hook`` — no-show faults flip fresh assignments;
* ``profiling.observation_hook`` — stale-profile faults distort what the
  Profiling Component records;
* ``scheduling.latency_hook`` — matcher stalls inflate batch latency;
* ``dynamic_assignment.suspended`` / ``scheduling.suspended`` +
  ``server.orphan_assigned_tasks`` — sweep outages and blackouts.

Overlapping faults of the same kind compose: stall latencies add, no-show
probabilities apply independently, distortions multiply, and suspensions
are reference-counted so the component only resumes when the *last*
overlapping window closes.  All randomness (wave victim choice, no-show
coins) comes from a private generator seeded by ``schedule.seed``, so a
chaos run is exactly as deterministic as the fault-free simulation it
perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..model.task import Task
from ..model.worker import WorkerProfile
from ..obs.runtime import NULL_OBS
from ..obs.trace import CHAOS_TRACK
from ..sim.engine import Engine
from ..sim.events import Event, EventKind
from .faults import (
    AbandonmentWave,
    BlackoutFault,
    Fault,
    FaultSchedule,
    MatcherStallFault,
    NoShowFault,
    StaleProfileFault,
    SweepOutageFault,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..platform.server import REACTServer, _Execution


@dataclass(frozen=True)
class FaultLogEntry:
    """One injector action, for reports and recovery assertions."""

    time: float
    kind: str
    action: str  # "activate" | "deactivate"
    detail: str = ""


class FaultInjector:
    """Executes a :class:`FaultSchedule` against one REACT server."""

    def __init__(
        self,
        engine: Engine,
        server: "REACTServer",
        schedule: FaultSchedule,
    ) -> None:
        self.engine = engine
        self.server = server
        self.schedule = schedule
        self._rng = np.random.default_rng(np.random.SeedSequence(schedule.seed))
        self.log: List[FaultLogEntry] = []
        self._armed = False
        # Telemetry rides on the server's observability (no-op by default).
        obs = getattr(server, "obs", NULL_OBS)
        self._tracer = obs.tracer
        self._obs_activations = obs.registry.counter(
            "react_chaos_fault_activations_total",
            "Fault activations performed by the injector",
            labelnames=("kind",),
        )
        self._obs_active = obs.registry.gauge(
            "react_chaos_faults_active", "Fault windows currently open"
        )
        # Active-fault state; lists/counters so overlapping windows compose.
        self._active_stalls: List[MatcherStallFault] = []
        self._active_no_shows: List[NoShowFault] = []
        self._active_distortions: List[StaleProfileFault] = []
        self._sweep_suspensions = 0
        self._blackouts = 0
        self._orphans: Dict[BlackoutFault, List[int]] = {}

    # ------------------------------------------------------------- arming
    def arm(self) -> "FaultInjector":
        """Install hooks and schedule every fault of the schedule.

        Must be called before the engine advances past the earliest
        ``fault.start`` (normally right after ``server.start()`` at t=0).
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        self.server.execution_hook = self._execution_hook
        self.server.profiling.observation_hook = self._observation_hook
        self.server.scheduling.latency_hook = self._latency_hook
        for fault in self.schedule:
            self.engine.schedule_at(
                fault.start, EventKind.FAULT_INJECTION, self._activate, payload=fault
            )
            if fault.duration > 0:
                self.engine.schedule_at(
                    fault.end, EventKind.FAULT_INJECTION, self._deactivate, payload=fault
                )
        return self

    # ------------------------------------------------------------ dispatch
    def _activate(self, event: Event) -> None:
        fault: Fault = event.payload
        self.server.metrics.chaos_faults_injected += 1
        detail = ""
        if isinstance(fault, AbandonmentWave):
            detail = f"abandoned={self._strike_wave(fault)}"
        elif isinstance(fault, NoShowFault):
            self._active_no_shows.append(fault)
        elif isinstance(fault, StaleProfileFault):
            self._active_distortions.append(fault)
        elif isinstance(fault, MatcherStallFault):
            self._active_stalls.append(fault)
        elif isinstance(fault, SweepOutageFault):
            self._sweep_suspensions += 1
            self._sync_suspensions()
        elif isinstance(fault, BlackoutFault):
            self._blackouts += 1
            self._sync_suspensions()
            orphans = self.server.orphan_assigned_tasks()
            self._orphans[fault] = orphans
            detail = f"orphaned={len(orphans)}"
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown fault type {type(fault).__name__}")
        self.log.append(
            FaultLogEntry(time=self.engine.now, kind=fault.kind, action="activate", detail=detail)
        )
        self._obs_activations.labels(kind=fault.kind).inc()
        self._obs_active.set(self._open_windows())
        self._tracer.instant(
            f"fault.{fault.kind}",
            cat="chaos",
            tid=CHAOS_TRACK,
            action="activate",
            detail=detail,
        )

    def _deactivate(self, event: Event) -> None:
        fault: Fault = event.payload
        detail = ""
        if isinstance(fault, NoShowFault):
            self._active_no_shows.remove(fault)
        elif isinstance(fault, StaleProfileFault):
            self._active_distortions.remove(fault)
        elif isinstance(fault, MatcherStallFault):
            self._active_stalls.remove(fault)
        elif isinstance(fault, SweepOutageFault):
            self._sweep_suspensions -= 1
            self._sync_suspensions()
        elif isinstance(fault, BlackoutFault):
            self._blackouts -= 1
            self._sync_suspensions()
            detail = f"readopted={self._readopt(fault)}"
        self.log.append(
            FaultLogEntry(time=self.engine.now, kind=fault.kind, action="deactivate", detail=detail)
        )
        self._obs_active.set(self._open_windows())
        self._tracer.instant(
            f"fault.{fault.kind}",
            cat="chaos",
            tid=CHAOS_TRACK,
            action="deactivate",
            detail=detail,
        )

    # ------------------------------------------------------- fault actions
    def _strike_wave(self, fault: AbandonmentWave) -> int:
        """Make ``fraction`` of currently-executing workers walk away."""
        victims = [
            profile.current_task
            for profile in self.server.profiling
            if profile.online and profile.current_task is not None
        ]
        victims.sort()  # registration order varies; task-id order is stable
        count = int(round(fault.fraction * len(victims)))
        if count == 0 or not victims:
            return 0
        chosen = self._rng.choice(len(victims), size=min(count, len(victims)), replace=False)
        struck = 0
        for index in sorted(int(i) for i in chosen):
            if self.server.inject_abandonment(victims[index]):
                struck += 1
        return struck

    def _readopt(self, fault: BlackoutFault) -> int:
        """Count orphans re-adopted at recovery and restart the scheduler."""
        orphans = self._orphans.pop(fault, [])
        readopted = sum(
            1 for task_id in orphans if self.server.task_management.is_queued(task_id)
        )
        self.server.metrics.readopted_tasks += readopted
        if self._blackouts == 0:
            self.server.scheduling.maybe_trigger()
        return readopted

    def _sync_suspensions(self) -> None:
        self.server.dynamic_assignment.suspended = (
            self._sweep_suspensions + self._blackouts
        ) > 0
        self.server.scheduling.suspended = self._blackouts > 0

    # --------------------------------------------------------------- hooks
    def _execution_hook(
        self, execution: "_Execution", task: Task, worker: WorkerProfile
    ) -> None:
        for fault in self._active_no_shows:
            if execution.abandoned:
                break
            if self._rng.random() < fault.probability:
                execution.abandoned = True
                execution.duration = fault.hold_time
                self.server.metrics.chaos_no_shows += 1

    def _observation_hook(self, worker_id: int, execution_time: float) -> float:
        for fault in self._active_distortions:
            execution_time *= fault.distortion
            self.server.metrics.chaos_corrupted_observations += 1
        return execution_time

    def _latency_hook(self, latency: float) -> float:
        for fault in self._active_stalls:
            latency += fault.extra_latency
            self.server.metrics.matcher_stall_seconds += fault.extra_latency
        return latency

    def _open_windows(self) -> int:
        """Fault windows currently open (the active-faults gauge value)."""
        return (
            len(self._active_stalls)
            + len(self._active_no_shows)
            + len(self._active_distortions)
            + self._sweep_suspensions
            + self._blackouts
        )

    # ------------------------------------------------------------- queries
    @property
    def any_active(self) -> bool:
        return bool(
            self._active_stalls
            or self._active_no_shows
            or self._active_distortions
            or self._sweep_suspensions
            or self._blackouts
        )

    def entries(self, kind: Optional[str] = None) -> List[FaultLogEntry]:
        if kind is None:
            return list(self.log)
        return [entry for entry in self.log if entry.kind == kind]
