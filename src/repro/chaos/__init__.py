"""Chaos / fault-injection subsystem.

Declaratively scheduled, seedable, exactly-replayable faults against the
REACT platform, plus the injector that executes them.  Pairs with the
resilience layer (:mod:`repro.platform.resilience`) and the continuous
invariant auditing in :mod:`repro.platform.invariants`; see docs/CHAOS.md.
"""

from .faults import (
    AbandonmentWave,
    BlackoutFault,
    FAULT_KINDS,
    Fault,
    FaultSchedule,
    MatcherStallFault,
    NoShowFault,
    StaleProfileFault,
    SweepOutageFault,
)
from .injector import FaultInjector, FaultLogEntry

__all__ = [
    "AbandonmentWave",
    "BlackoutFault",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultLogEntry",
    "FaultSchedule",
    "MatcherStallFault",
    "NoShowFault",
    "StaleProfileFault",
    "SweepOutageFault",
]
