"""A minimal asyncio HTTP/1.1 server (stdlib only).

The gateway needs exactly one thing from HTTP: small JSON requests in,
small JSON responses out, keep-alive so the closed-loop load generator is
not dominated by connection setup.  The container bakes in no third-party
web framework, so this module implements the narrow subset directly on
``asyncio.start_server``:

* request line + headers (8 KiB line cap), ``Content-Length`` bodies only
  (1 MiB cap) — no chunked encoding, no upgrades, no pipelining guarantees
  beyond strict serial handling per connection;
* ``keep-alive`` by default for HTTP/1.1, ``Connection: close`` honoured;
* malformed input maps to 400, an oversized body to 413, handler
  exceptions to 500 (logged to the provided callback, never propagated to
  the transport).

Handlers are ``async (HttpRequest) -> HttpResponse``.  Routing, JSON
semantics and backpressure live in :mod:`repro.service.gateway`; this
module knows nothing about the middleware.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Protocol, Tuple
from urllib.parse import parse_qsl, urlsplit

MAX_HEADER_LINE = 8 * 1024
MAX_HEADERS = 100
MAX_BODY = 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """Malformed HTTP input; the connection is answered 400 and closed."""


class SupportsInc(Protocol):
    """Structural stand-in for an obs counter — httpd never imports obs."""

    def inc(self, amount: float = 1.0) -> None: ...


@dataclass
class HttpRequest:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        """Parse the body as JSON; raises :class:`BadRequest` on garbage."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines.append(f"Content-Type: {self.content_type}")
        lines.append(f"Content-Length: {len(self.body)}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(
    payload: object,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
) -> HttpResponse:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return HttpResponse(status=status, body=body, headers=headers or {})


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


async def _read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Read one request; None on clean EOF before a request line."""
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest("request line too long") from exc
    if len(request_line) > MAX_HEADER_LINE:
        raise BadRequest("request line too long")
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise BadRequest(f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported HTTP version: {version}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise BadRequest("truncated headers") from exc
        if len(line) > MAX_HEADER_LINE:
            raise BadRequest("header line too long")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise BadRequest("too many headers")

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise BadRequest(f"bad Content-Length: {length_header!r}") from exc
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > MAX_BODY:
            raise BadRequest("body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise BadRequest("truncated body") from exc
    elif "transfer-encoding" in headers:
        raise BadRequest("chunked bodies are not supported")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    # HTTP/1.1 defaults to keep-alive; 1.0 to close.
    connection = headers.get("connection", "").lower()
    keep_alive = version == "HTTP/1.1" and connection != "close"
    if version == "HTTP/1.0" and connection == "keep-alive":
        keep_alive = True
    headers["x-keep-alive"] = "1" if keep_alive else "0"
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


class HttpServer:
    """Serve ``handler`` over HTTP/1.1 until :meth:`close`."""

    def __init__(
        self,
        handler: Handler,
        on_error: Optional[Callable[[str], None]] = None,
        error_counter: Optional[SupportsInc] = None,
    ) -> None:
        self._handler = handler
        self._on_error = on_error
        self._error_counter = error_counter
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._writers: set = set()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, host, port, limit=MAX_HEADER_LINE
        )
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def close(self) -> None:
        """Stop accepting, then wait for open connections to unwind.

        A keep-alive client parked between requests would block shutdown
        forever (its connection loop sits in ``readuntil``), so the
        transports are closed first: the parked reader sees a clean EOF
        and its loop exits.
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            await self._connection_loop(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await _read_request(reader)
            except BadRequest as exc:
                self._log(f"bad request: {exc}")
                status = 413 if "too large" in str(exc) else 400
                payload = json.dumps({"error": str(exc)}).encode("utf-8")
                response = HttpResponse(status=status, body=payload)
                writer.write(response.encode(keep_alive=False))
                await _drain(writer)
                return
            except (ConnectionError, OSError):
                return
            if request is None:
                return
            keep_alive = request.headers.pop("x-keep-alive", "1") == "1"
            try:
                response = await self._handler(request)
            except BadRequest as exc:
                response = json_response({"error": str(exc)}, status=400)
            except Exception as exc:  # noqa: BLE001 - handler crash -> 500
                if self._error_counter is not None:
                    self._error_counter.inc()
                self._log(f"handler error on {request.method} {request.path}: {exc!r}")
                response = json_response({"error": "internal error"}, status=500)
            try:
                writer.write(response.encode(keep_alive=keep_alive))
                await _drain(writer)
            except (ConnectionError, OSError):
                return
            if not keep_alive:
                return

    def _log(self, message: str) -> None:
        if self._on_error is not None:
            self._on_error(message)


async def _drain(writer: asyncio.StreamWriter) -> None:
    try:
        await writer.drain()
    except (ConnectionError, OSError):  # pragma: no cover - peer went away
        pass
