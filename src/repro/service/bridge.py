"""Live region server: the REACT components wired for real workers.

:class:`LiveRegionServer` is the service-mode twin of
:class:`~repro.platform.server.REACTServer`.  It wires the *same four
component classes* — :class:`~repro.platform.profiling.ProfilingComponent`,
:class:`~repro.platform.task_management.TaskManagementComponent`,
:class:`~repro.platform.scheduling.SchedulingComponent`,
:class:`~repro.platform.dynamic_assignment.DynamicAssignmentComponent` —
to any :class:`~repro.sim.clock.EventClock`, but replaces the simulator's
ground-truth machinery with live protocol surfaces:

* ``_on_assign`` does **not** draw a worker-behaviour outcome; it parks a
  :class:`DispatchNotice` in the worker's inbox, delivered on the next
  heartbeat (AMT-style pull delivery — the middleware never calls the
  worker, the worker polls).
* Completion arrives from outside via :meth:`submit_answer`, guarded by the
  same (phase, worker, generation) staleness check the simulator's
  completion event performs — a dawdler whose task was withdrawn by Eq. 2
  gets ``stale`` back and is released, not credited.
* Deadline expiry of a running task keeps the DES semantics verbatim:
  withdraw, censor the hold time, detach, requeue, re-trigger.
* Worker liveness replaces simulated churn: a worker whose last heartbeat
  is older than ``liveness_timeout`` is deregistered exactly like
  ``REACTServer.remove_worker`` (task withdrawn and re-queued).

Because the class is clock-agnostic, the acceptance test for "same
components under both clocks" runs a LiveRegionServer end-to-end on the DES
engine and on the wall-clock runtime and gets identical task lifecycles.

Positive feedback in live mode is ``met_deadline`` (the requester's
callback judges punctuality; there is no simulated feedback coin —
OS-entropy draws would be the one thing a *service* must not take from the
experiment streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.deadline import DeadlineEstimator
from ..graph.builders import AssignmentGraphBuilder
from ..model.task import Task, TaskPhase
from ..model.worker import WorkerProfile
from ..obs.runtime import ObservabilityLike, resolve
from ..obs.trace import worker_track
from ..platform.cost import CostModel, ZeroCost
from ..platform.dynamic_assignment import DynamicAssignmentComponent
from ..platform.policies import SchedulingPolicy
from ..platform.profiling import ProfilingComponent
from ..platform.scheduling import BatchRecord, SchedulingComponent
from ..platform.task_management import TaskManagementComponent
from ..sim.clock import EventClock
from ..sim.events import Event, EventKind
from ..sim.process import PeriodicProcess
from ..sim.rng import STREAM_MATCHER, RngRegistry
from ..stats.duration_models import make_family
from ..stats.metrics import MetricsCollector, TaskOutcome


@dataclass
class DispatchNotice:
    """One published assignment awaiting delivery to its worker."""

    task_id: int
    worker_id: int
    #: ``task.assignments`` stamp at publication; delivery and answers are
    #: validated against it so a withdrawn-then-reassigned task can never be
    #: answered by a stale worker.
    generation: int
    category: str
    reward: float
    #: Absolute clock deadline the worker must beat.
    deadline_at: float
    assigned_at: float


@dataclass(frozen=True)
class AnswerOutcome:
    """Result of one :meth:`LiveRegionServer.submit_answer` call."""

    status: str  # "completed" | "stale" | "unknown_task" | "unknown_worker"
    met_deadline: bool = False

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class LiveRegionServer:
    """One region's middleware instance serving live (non-simulated) workers."""

    def __init__(
        self,
        clock: EventClock,
        policy: SchedulingPolicy,
        rng: RngRegistry,
        cost_model: Optional[CostModel] = None,
        metrics: Optional[MetricsCollector] = None,
        observability: Optional[ObservabilityLike] = None,
        liveness_timeout: Optional[float] = None,
        liveness_interval: float = 2.0,
        on_dispatch: Optional[Callable[[DispatchNotice], None]] = None,
    ) -> None:
        if liveness_timeout is not None and liveness_timeout <= 0:
            raise ValueError("liveness_timeout must be positive")
        if liveness_interval <= 0:
            raise ValueError("liveness_interval must be positive")
        self.clock = clock
        self.policy = policy
        self.obs = resolve(observability)
        self.obs.bind_engine(clock)
        self._tracer = self.obs.tracer
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.metrics.bind_registry(self.obs.registry)
        # Live mode defaults to ZeroCost: the matcher's latency is real wall
        # time here, not a simulated charge.
        cost_model = cost_model if cost_model is not None else ZeroCost()

        self.profiling = ProfilingComponent()
        self.task_management = TaskManagementComponent()
        self.estimator = DeadlineEstimator(
            min_history=policy.min_history,
            family=make_family(policy.duration_model),
        )
        self.profiling.add_deregister_hook(self.estimator.evict)
        bound = policy.edge_probability_bound if policy.use_probabilistic_model else 0.0
        builder = AssignmentGraphBuilder(
            weight_function=policy.build_weight_function(),
            estimator=self.estimator,
            edge_probability_bound=bound,
        )
        self.scheduling = SchedulingComponent(
            engine=clock,
            policy=policy,
            task_management=self.task_management,
            profiling=self.profiling,
            builder=builder,
            matcher=policy.build_matcher(),
            cost_model=cost_model,
            matcher_rng=rng.stream(STREAM_MATCHER),
            on_assign=self._on_assign,
            on_retired=self._on_retired,
            on_batch=self._on_batch,
            observability=self.obs,
        )
        self.dynamic_assignment = DynamicAssignmentComponent(
            engine=clock,
            policy=policy,
            task_management=self.task_management,
            profiling=self.profiling,
            estimator=self.estimator,
            on_withdraw=self._on_withdraw,
            observability=self.obs,
        )
        self._liveness_timeout = liveness_timeout
        self._liveness_interval = liveness_interval
        self._on_dispatch = on_dispatch
        #: Undelivered assignment per worker (a worker executes one task at
        #: a time, so one slot suffices — a newer dispatch for the same
        #: worker cannot occur while the old one is live).
        self._inbox: Dict[int, DispatchNotice] = {}
        self._last_seen: Dict[int, float] = {}
        self._batch_timer: Optional[PeriodicProcess] = None
        self._liveness_sweep: Optional[PeriodicProcess] = None
        self._started = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Arm the periodic batch trigger, Eq. 2 monitor and liveness sweep."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.dynamic_assignment.start()
        self._batch_timer = PeriodicProcess(
            self.clock,
            period=self.policy.batch_period,
            action=self.scheduling.periodic_trigger,
            kind=EventKind.BATCH_TRIGGER,
            cohort_action=self.scheduling.periodic_trigger_cohort,
        )
        if self._liveness_timeout is not None:
            self._liveness_sweep = PeriodicProcess(
                self.clock,
                period=self._liveness_interval,
                action=self._cull_dead_workers,
            )

    def stop(self) -> None:
        self.dynamic_assignment.stop()
        if self._batch_timer is not None:
            self._batch_timer.stop()
            self._batch_timer = None
        if self._liveness_sweep is not None:
            self._liveness_sweep.stop()
            self._liveness_sweep = None
        self._started = False

    # -------------------------------------------------------------- workers
    def register_worker(self, profile: WorkerProfile) -> None:
        """A live worker connects (HTTP register)."""
        self.profiling.register(profile)
        self._last_seen[profile.worker_id] = self.clock.now
        self._tracer.instant(
            "worker.registered", cat="service", worker_id=profile.worker_id
        )
        # Fresh supply may make queued work matchable right away.
        self.scheduling.maybe_trigger()

    # REACTServer-compatible alias so the Coordinator can route either kind
    # of server.  ``behavior`` is accepted and ignored: live workers have no
    # simulated ground truth.
    def add_worker(self, profile: WorkerProfile, behavior: object = None) -> None:
        self.register_worker(profile)

    def deregister_worker(self, worker_id: int) -> None:
        """Worker leaves (explicit deregister or liveness cull).

        Mirrors ``REACTServer.remove_worker``: an in-flight task is
        withdrawn and re-queued for reassignment.
        """
        profile = self.profiling.get(worker_id)
        profile.online = False
        if profile.current_task is not None:
            task = self.task_management.get(profile.current_task)
            if task.phase is TaskPhase.ASSIGNED and task.assigned_worker == worker_id:
                self.task_management.withdraw(task)
                profile.detach_task()
                self._tracer.instant(
                    "task.withdrawn",
                    cat="task",
                    task_id=task.task_id,
                    worker_id=worker_id,
                    reason="worker_departed",
                )
                self.scheduling.maybe_trigger()
        self.profiling.deregister(worker_id)
        self._inbox.pop(worker_id, None)
        self._last_seen.pop(worker_id, None)

    remove_worker = deregister_worker

    def heartbeat(self, worker_id: int) -> Optional[DispatchNotice]:
        """Worker keep-alive; returns a pending assignment, if any.

        Raises :class:`KeyError` for an unknown worker (the gateway maps
        that to 404 so a culled worker knows to re-register).
        """
        if worker_id not in self.profiling:
            raise KeyError(worker_id)
        self._last_seen[worker_id] = self.clock.now
        notice = self._inbox.pop(worker_id, None)
        if notice is None:
            return None
        # Deliver only if the assignment is still current: Eq. 2 or expiry
        # may have withdrawn it between publication and this poll.
        try:
            task = self.task_management.get(notice.task_id)
        except KeyError:  # pragma: no cover - tasks are never deleted
            return None
        if (
            task.phase is not TaskPhase.ASSIGNED
            or task.assigned_worker != worker_id
            or task.assignments != notice.generation
        ):
            return None
        return notice

    def submit_answer(self, worker_id: int, task_id: int) -> AnswerOutcome:
        """Answer callback: the worker returns a result for ``task_id``."""
        if worker_id not in self.profiling:
            return AnswerOutcome(status="unknown_worker")
        try:
            task = self.task_management.get(task_id)
        except KeyError:
            return AnswerOutcome(status="unknown_task")
        now = self.clock.now
        self._last_seen[worker_id] = now
        if task.phase is not TaskPhase.ASSIGNED or task.assigned_worker != worker_id:
            # Withdrawn while the worker dawdled: the answer is discarded and
            # the worker freed — the DES completion event's stale path.
            self.profiling.release_after_dawdle(worker_id)
            self._tracer.instant(
                "worker.dawdle_end", cat="task", task_id=task_id, worker_id=worker_id
            )
            self.scheduling.maybe_trigger()
            return AnswerOutcome(status="stale")
        assigned_at = task.assigned_at if task.assigned_at is not None else now
        duration = now - assigned_at
        self.task_management.complete(task, now)
        on_time = task.met_deadline
        self._tracer.complete(
            "task.execution",
            start=assigned_at,
            end=now,
            cat="task",
            tid=worker_track(worker_id),
            task_id=task.task_id,
            worker_id=worker_id,
            on_time=on_time,
        )
        self.profiling.record_completion(
            worker_id,
            execution_time=duration,
            category=task.category,
            positive_feedback=on_time,
        )
        self.metrics.record_completion(
            TaskOutcome(
                task_id=task.task_id,
                submitted_at=task.submitted_at,
                completed_at=now,
                deadline=task.deadline,
                met_deadline=on_time,
                positive_feedback=on_time,
                assignments=task.assignments,
                final_worker=worker_id,
                worker_time=task.worker_time,
                total_time=task.total_time,
            )
        )
        # A completion frees a worker; queued tasks may now be matchable.
        self.scheduling.maybe_trigger()
        return AnswerOutcome(status="completed", met_deadline=on_time)

    # ---------------------------------------------------------------- tasks
    def submit_task(self, task: Task) -> None:
        """Requester entry point: register the task and poke the scheduler."""
        task.submitted_at = self.clock.now if task.submitted_at == 0.0 else task.submitted_at
        self.metrics.record_received()
        self._tracer.instant(
            "task.submitted", cat="task", task_id=task.task_id, deadline=task.deadline
        )
        self.task_management.add_task(task)
        self.scheduling.maybe_trigger()

    def adopt_task(self, task: Task) -> None:
        """Take over a task migrated from another server (region split)."""
        self._tracer.instant("task.adopted", cat="task", task_id=task.task_id)
        self.task_management.add_task(task)
        self.scheduling.maybe_trigger()

    def task_status(self, task_id: int) -> Dict[str, object]:
        """Requester-facing task state (gateway GET /tasks/{id})."""
        task = self.task_management.get(task_id)
        return {
            "task_id": task.task_id,
            "phase": task.phase.name.lower(),
            "assignments": task.assignments,
            "submitted_at": task.submitted_at,
            "completed_at": task.completed_at,
            "met_deadline": task.met_deadline if task.completed_at is not None else None,
        }

    # ------------------------------------------------------------ callbacks
    def _on_assign(self, task: Task, worker: WorkerProfile) -> None:
        """Assignment published: park a dispatch notice for pull delivery."""
        self.metrics.record_assignment(first=task.assignments == 1)
        self._tracer.instant(
            "task.assigned",
            cat="task",
            task_id=task.task_id,
            worker_id=worker.worker_id,
            generation=task.assignments,
        )
        notice = DispatchNotice(
            task_id=task.task_id,
            worker_id=worker.worker_id,
            generation=task.assignments,
            category=task.category.value,
            reward=task.reward,
            deadline_at=task.absolute_deadline,
            assigned_at=self.clock.now,
        )
        self._inbox[worker.worker_id] = notice
        if self._on_dispatch is not None:
            self._on_dispatch(notice)
        # AMT expiry semantics, identical to the DES server: if the deadline
        # passes while the task is out, the platform pulls it back.
        if self.policy.expire_running_tasks:
            remaining = task.absolute_deadline - self.clock.now
            if remaining > 0:
                self.clock.schedule(
                    remaining,
                    EventKind.CALLBACK,
                    self._on_running_expiry,
                    payload=notice,
                    transient=True,
                )

    def _on_running_expiry(self, event: Event) -> None:
        """The deadline lapsed while the task was out with a worker."""
        notice: DispatchNotice = event.payload
        try:
            task = self.task_management.get(notice.task_id)
        except KeyError:  # pragma: no cover - tasks are never deleted
            return
        if (
            task.phase is not TaskPhase.ASSIGNED
            or task.assigned_worker != notice.worker_id
            or task.assignments != notice.generation
        ):
            return
        now = self.clock.now
        assigned_at = task.assigned_at if task.assigned_at is not None else now
        self.task_management.withdraw(task)
        self.metrics.expiry_returns += 1
        self._tracer.instant(
            "task.expiry_return",
            cat="task",
            task_id=task.task_id,
            worker_id=notice.worker_id,
        )
        if notice.worker_id in self.profiling:
            profile = self.profiling.get(notice.worker_id)
            if profile.current_task == notice.task_id:
                profile.record_censored(now - assigned_at)
                profile.detach_task()
                if self.policy.release_on_reassign:
                    profile.release()
        # An undelivered notice for this generation is now dead.
        if self._inbox.get(notice.worker_id) is notice:
            del self._inbox[notice.worker_id]
        self.scheduling.maybe_trigger()

    def _on_withdraw(self, task: Task) -> None:
        """Eq. 2 pulled a task back; it is already unassigned and queued."""
        self.scheduling.maybe_trigger()

    def _on_batch(self, record: BatchRecord) -> None:
        self.metrics.record_matcher_run(record.simulated_seconds)

    def _on_retired(self, retired: List[Task]) -> None:
        for task in retired:
            self._tracer.instant("task.expired", cat="task", task_id=task.task_id)
            self.metrics.record_expired_unassigned(
                TaskOutcome(
                    task_id=task.task_id,
                    submitted_at=task.submitted_at,
                    completed_at=None,
                    deadline=task.deadline,
                    met_deadline=False,
                    positive_feedback=False,
                    assignments=task.assignments,
                    final_worker=None,
                    worker_time=None,
                    total_time=None,
                )
            )

    # ------------------------------------------------------------- liveness
    def _cull_dead_workers(self, now: float) -> None:
        assert self._liveness_timeout is not None  # armed only when set
        cutoff = now - self._liveness_timeout
        dead = [
            worker_id
            for worker_id, seen in self._last_seen.items()
            if seen < cutoff
        ]
        for worker_id in dead:
            self._tracer.instant(
                "worker.liveness_cull", cat="service", worker_id=worker_id
            )
            self.deregister_worker(worker_id)
        if dead:
            self.scheduling.maybe_trigger()

    # -------------------------------------------------------------- summary
    @property
    def in_flight(self) -> int:
        """Tasks submitted and not yet finished (backpressure signal)."""
        return self.task_management.in_flight

    def drain_and_summary(self) -> Dict[str, float]:
        """Metrics summary plus queue state (REACTServer-compatible)."""
        summary = self.metrics.summary()
        summary["pending_unassigned"] = self.task_management.unassigned_count
        summary["pending_assigned"] = self.task_management.assigned_count
        summary["pending_deferred"] = self.task_management.deferred_count
        summary["withdrawals"] = len(self.dynamic_assignment.withdrawals)
        summary["batches"] = len(self.scheduling.batches)
        summary["aborted_batches"] = self.scheduling.aborted_batches
        return summary
