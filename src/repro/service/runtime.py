"""Wall-clock asyncio event source satisfying the :class:`EventClock` protocol.

:class:`WallClockRuntime` is the live-service twin of the DES
:class:`~repro.sim.engine.Engine`: the same heap of ``(time, priority, seq,
Event)`` tuples and the same cohort-dispatch semantics, but time advances
with the asyncio event loop's monotonic clock instead of jumping to the next
event.  The platform components cannot tell the difference — they see the
:class:`~repro.sim.clock.EventClock` surface only — which is what lets one
:class:`~repro.platform.scheduling.SchedulingComponent` instance run a
simulation today and a live gateway tomorrow.

Design notes
------------

* **One armed timer.**  Instead of one ``loop.call_at`` per event (which
  would make ``cancel`` an O(log n) loop-handle dance), the runtime keeps
  its own heap and arms a single timer for the head.  Scheduling an earlier
  event re-arms; cancellation just flags the event (lazily skipped), the
  same strategy the DES engine uses.
* **Cohorts.**  When the timer fires, every event whose due time has passed
  is drained in ``(time, priority, seq)`` order and grouped into
  ``(time, priority)`` cohorts; consecutive same-callback members with a
  registered cohort handler are delivered as one ``handler(now, events)``
  call — bit-for-bit the dispatch grouping of ``Engine.run()``.
* **Frozen ``now``.**  ``now`` is monotone nondecreasing and *frozen* for
  the duration of one cohort dispatch, so every member of a cohort observes
  the same instant — the DES engine gives the same guarantee, and the Eq. 2
  sweep's batch evaluation depends on it.  Between cohorts the clock is
  re-read, so a callback loop cannot livelock the loop at one instant.
* **Sliced draining.**  One timer firing drains due cohorts for at most
  :data:`DRAIN_SLICE_WALL` wall seconds; if the runtime is still behind it
  yields the loop one iteration (``call_soon``) and resumes.  Without the
  slice, a runtime that falls behind real time — self-rescheduling events
  whose processing outpaces their period under CPU contention — would
  drain forever inside one callback, starving every socket on the loop:
  heartbeats and answers stop flowing, so the backlog that caused the
  lag can never clear, and the loop livelocks at 100% CPU.
* **``time_scale``.**  Clock seconds per wall second.  1.0 for real
  serving; the conformance and gateway tests run at 50-500x so a "10
  simulated seconds" scenario finishes in tens of milliseconds of real
  time.  Scaling happens at the clock read, so schedules/deadlines are
  expressed in *clock* seconds everywhere.
* **``transient`` is accepted but inert.**  The DES engine recycles
  transient events through an :class:`~repro.sim.events.EventPool`; here
  event allocation is nowhere near the HTTP stack's cost, so pooled reuse
  would buy risk (a live callback retaining a recycled event) and no
  latency.

The runtime never blocks the loop: ``_fire`` runs synchronously (platform
callbacks are plain functions), then control returns to asyncio.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

import heapq

from ..sim.clock import CohortHandler
from ..sim.engine import SimulationError
from ..sim.events import Event, EventKind

_HeapEntry = Tuple[float, int, int, Event]

#: Wall seconds one timer firing may spend draining before yielding the
#: loop back to I/O.  Large enough that no sane backlog ever hits it;
#: small enough that sockets stay responsive while the runtime catches up.
DRAIN_SLICE_WALL = 0.05


class ServiceRuntimeError(RuntimeError):
    """Raised for misuse of the wall-clock runtime (e.g. use after close)."""


class WallClockRuntime:
    """Monotonic wall-clock event source driven by an asyncio loop."""

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._scale = time_scale
        self._origin = self._loop.time()
        self._heap: List[_HeapEntry] = []
        self._timer: Optional[asyncio.Handle] = None
        #: Clock time the armed timer targets (inf = no timer armed).
        self._armed_for = math.inf
        self._cohort_handlers: Dict[Callable[[Event], None], CohortHandler] = {}
        self._dispatching = False
        #: Clock value every callback in the current cohort observes.
        self._frozen: Optional[float] = None
        #: Monotone floor: ``now`` never reads below the last dispatch time.
        self._floor = 0.0
        self._dispatched = 0
        self._closed = False
        self._idle_waiters: List[asyncio.Future[None]] = []

    # ------------------------------------------------------------------ time
    def _read(self) -> float:
        return (self._loop.time() - self._origin) * self._scale

    @property
    def now(self) -> float:
        """Monotonic clock seconds since the runtime was created."""
        if self._frozen is not None:
            return self._frozen
        value = self._read()
        if value < self._floor:
            return self._floor
        self._floor = value
        return value

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Queued events, including cancelled ones (cheap)."""
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Queued events that will actually fire."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    @property
    def time_scale(self) -> float:
        return self._scale

    @property
    def closed(self) -> bool:
        return self._closed

    def peek_time(self) -> Optional[float]:
        """Clock time of the next non-cancelled event, or None."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    # ------------------------------------------------------------- schedule
    def schedule(
        self,
        delay: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` clock seconds from now."""
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self.now + delay,
            kind=kind,
            callback=callback,
            payload=payload,
            priority=priority,
        )
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._arm()
        return event

    def schedule_at(
        self,
        time: float,
        kind: EventKind,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = -1,
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` at absolute clock time ``time``.

        The event is placed at exactly ``time`` rather than via a delay
        round-trip: wall time advances between two ``now`` reads, so
        ``schedule(time - now, ...)`` would give two events scheduled for
        the same literal instant slightly different times and split what
        must be one coincident cohort.
        """
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self.now}"
            )
        event = Event(
            time=time,
            kind=kind,
            callback=callback,
            payload=payload,
            priority=priority,
        )
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._arm()
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazily skipped at dispatch)."""
        event.cancelled = True

    # ------------------------------------------------------------- cohorts
    def register_cohort_handler(
        self, callback: Callable[[Event], None], handler: CohortHandler
    ) -> None:
        """Route cohorts of ``callback`` events through ``handler``."""
        self._cohort_handlers[callback] = handler

    def unregister_cohort_handler(self, callback: Callable[[Event], None]) -> None:
        self._cohort_handlers.pop(callback, None)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Drop every pending event and refuse further scheduling."""
        self._closed = True
        self._cancel_timer()
        self._heap.clear()
        self._notify_idle()

    async def drained(self) -> None:
        """Await the instant the heap holds no live events.

        Events scheduled *while* waiting extend the wait; a closed runtime
        resolves immediately.
        """
        if self._closed or self.pending_active == 0:
            return
        waiter: asyncio.Future[None] = self._loop.create_future()
        self._idle_waiters.append(waiter)
        await waiter

    async def run_for(self, clock_seconds: float) -> None:
        """Let the runtime dispatch for ``clock_seconds`` of clock time.

        Test/driver convenience: sleeps the calling coroutine for the
        corresponding *wall* duration while timers fire underneath.
        """
        await asyncio.sleep(clock_seconds / self._scale)

    # ------------------------------------------------------------ internals
    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._armed_for = math.inf

    def _notify_idle(self) -> None:
        if not self._idle_waiters:
            return
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def _arm(self) -> None:
        """Point the single timer at the heap's head (no-op mid-dispatch)."""
        if self._dispatching or self._closed:
            return
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            self._cancel_timer()
            self._notify_idle()
            return
        head = heap[0][0]
        if self._timer is not None and self._armed_for <= head:
            return
        self._cancel_timer()
        self._armed_for = head
        wall_at = self._origin + head / self._scale
        self._timer = self._loop.call_at(
            max(wall_at, self._loop.time()), self._fire
        )

    def _fire(self) -> None:
        """Timer callback: drain due cohorts for one slice, then re-arm.

        Draining is bounded to :data:`DRAIN_SLICE_WALL` wall seconds per
        firing; a runtime still behind after the slice re-queues itself
        with ``call_soon`` so the loop can service I/O in between — the
        sockets delivering answers are what shrink the backlog.
        """
        self._timer = None
        self._armed_for = math.inf
        heap = self._heap
        slice_end = self._loop.time() + DRAIN_SLICE_WALL
        behind = False
        self._dispatching = True
        try:
            while heap:
                wall_now = self._read()
                if wall_now < self._floor:
                    wall_now = self._floor
                key_time, key_priority = heap[0][0], heap[0][1]
                if key_time > wall_now:
                    break
                if self._loop.time() >= slice_end:
                    behind = True
                    break
                cohort: List[Event] = []
                while heap and heap[0][0] == key_time and heap[0][1] == key_priority:
                    event = heapq.heappop(heap)[3]
                    if not event.cancelled:
                        cohort.append(event)
                if not cohort:
                    continue
                # Every member observes the cohort's due time, exactly as the
                # DES engine sets `_now = key_time`; the floor keeps `now`
                # monotone across late-fired cohorts.
                self._floor = max(self._floor, key_time)
                self._frozen = self._floor
                try:
                    self._dispatch_cohort(cohort, self._frozen, key_priority)
                finally:
                    self._frozen = None
        finally:
            self._dispatching = False
        if behind and not self._closed:
            # -inf keeps _arm from cancelling this handle: any head is later.
            self._armed_for = -math.inf
            self._timer = self._loop.call_soon(self._fire)
            return
        self._arm()

    def _dispatch_cohort(
        self, cohort: List[Event], now: float, key_priority: int
    ) -> None:
        """Walk one cohort in seq order with consecutive-callback batching.

        Mirrors ``Engine._dispatch_cohort``: cancellation is re-checked per
        member (an earlier member may cancel a later one), and a same-time
        *higher-priority* event scheduled mid-cohort preempts the remaining
        members (they re-queue and fire in the next drain iteration).
        """
        heap = self._heap
        handlers = self._cohort_handlers
        index = 0
        n = len(cohort)
        while index < n:
            if heap:
                head = heap[0]
                if head[0] <= now and head[1] < key_priority:
                    break
            event = cohort[index]
            if event.cancelled:
                index += 1
                continue
            handler = handlers.get(event.callback) if handlers else None
            if handler is None:
                index += 1
                self._dispatched += 1
                event.callback(event)
                continue
            batch = [event]
            scan = index + 1
            while scan < n:
                peer = cohort[scan]
                if peer.callback != event.callback:
                    break
                if not peer.cancelled:
                    batch.append(peer)
                scan += 1
            index = scan
            self._dispatched += len(batch)
            handler(now, batch)
        if index < n:
            # Preempted: the undispatched tail re-queues and the outer drain
            # loop picks it up after the higher-priority event fires.
            for event in cohort[index:]:
                heapq.heappush(
                    heap, (event.time, event.priority, event.seq, event)
                )
