"""The HTTP/JSON gateway: live REACT middleware behind a stdlib web surface.

:class:`ServiceGateway` assembles the live-service stack on the running
asyncio loop:

* a :class:`~repro.service.runtime.WallClockRuntime` drives the platform
  components in real time (``time_scale`` accelerates tests);
* a :class:`~repro.platform.coordinator.Coordinator` owns the region map and
  split-on-overload, building :class:`~repro.service.bridge.LiveRegionServer`
  instances through its ``server_factory`` hook;
* an :class:`~repro.service.admission.AdmissionController` sheds excess
  submit load as 429 + ``Retry-After`` (token bucket + bounded backlog);
* a :class:`~repro.service.httpd.HttpServer` speaks HTTP/1.1.

Endpoints (all JSON unless noted)::

    POST /tasks                      submit {deadline, reward?, category?,
                                     latitude?, longitude?} -> 201 {task_id}
                                     or 429 {reason, retry_after}
    GET  /tasks/<id>                 lifecycle state -> 200 / 404
    POST /workers                    register {worker_id?, latitude?,
                                     longitude?} -> 201 {worker_id}
    POST /workers/<id>/heartbeat     keep-alive -> 200 {assignment: ...|null}
    POST /workers/<id>/answer        {task_id} -> 200 completed /
                                     409 stale / 404 unknown
    POST /workers/<id>/deregister    -> 200
    GET  /healthz                    liveness (always 200 while serving)
    GET  /readyz                     503 once draining, else 200
    GET  /metrics                    Prometheus text (repro.obs exporter)

Tasks and workers that omit coordinates are placed round-robin on region
centers, so load spreads across servers without the client knowing the
geography.  Requesters and workers are *live* clients: the gateway never
draws behaviour outcomes — deadline hits are whatever the wall clock says.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, cast

from ..model.region import Region, RegionGrid
from ..model.task import Task, TaskCategory
from ..model.worker import WorkerProfile
from ..obs.exporters import prometheus_text
from ..obs.registry import MetricsRegistry
from ..platform.coordinator import Coordinator
from ..platform.cost import CostModel, ZeroCost
from ..platform.policies import SchedulingPolicy, react_policy
from ..sim.clock import EventClock
from ..sim.rng import RngRegistry
from .admission import AdmissionConfig, AdmissionController
from .bridge import LiveRegionServer
from .httpd import BadRequest, HttpRequest, HttpResponse, HttpServer, json_response
from .runtime import WallClockRuntime

#: Submit-to-answer latency buckets (clock seconds): the paper's deadlines
#: sit in [60, 120] s, so the tail buckets bracket that window.
LATENCY_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0, 90.0, 120.0, 180.0)


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for one gateway instance."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral; the bound port is exposed as ``ServiceGateway.port``.
    port: int = 0
    #: Region grid served by the coordinator.
    lat_min: float = 0.0
    lat_max: float = 10.0
    lon_min: float = 0.0
    lon_max: float = 10.0
    rows: int = 1
    cols: int = 1
    #: Unassigned-queue depth that triggers a §V-D region split (None = off).
    overload_queue_limit: Optional[int] = None
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Deadline applied when a submit omits one (paper: U[60, 120] s).
    default_deadline: float = 90.0
    #: Workers silent for this many clock seconds are deregistered.
    liveness_timeout: Optional[float] = 30.0
    #: Clock seconds per wall second (accelerated tests run 50-500x).
    time_scale: float = 1.0
    #: Matcher RNG seed (tie-breaking); live mode has no other draws.
    seed: int = 20130521
    #: Wall-second budget for the drain phase of :meth:`ServiceGateway.stop`.
    drain_timeout: float = 10.0


class ServiceGateway:
    """Bound HTTP gateway plus the live middleware stack behind it."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.policy = policy if policy is not None else react_policy()
        self.registry = MetricsRegistry()
        self.runtime: Optional[WallClockRuntime] = None
        self.coordinator: Optional[Coordinator] = None
        self.port: Optional[int] = None
        self.host: Optional[str] = None
        self._servers: List[LiveRegionServer] = []
        self._worker_server: Dict[int, LiveRegionServer] = {}
        self._httpd: Optional[HttpServer] = None
        self._admission: Optional[AdmissionController] = None
        self._ready = False
        self._next_worker_id = 1
        self._rr_index = 0
        self.completed = 0
        self._latency = self.registry.histogram(
            "service_submit_to_answer_seconds",
            "Submit-to-answer latency for completed tasks (clock seconds)",
            buckets=LATENCY_BUCKETS,
        )
        self._completions = self.registry.counter(
            "service_completed_total", "Answers accepted by the gateway"
        )
        self._handler_errors = self.registry.counter(
            "service_handler_errors_total",
            "Handler exceptions answered with HTTP 500",
        )
        self._workers_gauge = self.registry.gauge(
            "service_workers", "Workers currently registered"
        )
        self._in_flight_gauge = self.registry.gauge(
            "service_in_flight", "Tasks admitted and not yet finished"
        )
        self.registry.add_collect_hook(
            lambda: (
                self._workers_gauge.set(len(self._worker_server)),
                self._in_flight_gauge.set(self._backlog()),
            )
        )

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Build the stack on the running loop and bind the listener."""
        if self.runtime is not None:
            raise RuntimeError("gateway already started")
        config = self.config
        self.runtime = WallClockRuntime(time_scale=config.time_scale)
        grid = RegionGrid(
            config.lat_min,
            config.lat_max,
            config.lon_min,
            config.lon_max,
            rows=config.rows,
            cols=config.cols,
        )
        self.coordinator = Coordinator(
            engine=self.runtime,
            policy=self.policy,
            regions=list(grid.regions),
            rng=RngRegistry(config.seed),
            cost_model=ZeroCost(),
            overload_queue_limit=config.overload_queue_limit,
            server_factory=self._make_server,
        )
        self._admission = AdmissionController(
            config.admission,
            clock=self.runtime,
            backlog_fn=self._backlog,
            registry=self.registry,
        )
        self._httpd = HttpServer(self._handle, error_counter=self._handler_errors)
        self.host, self.port = await self._httpd.start(config.host, config.port)
        self._ready = True

    async def stop(self) -> None:
        """Graceful drain: unready, wait for in-flight work, then tear down.

        ``/readyz`` flips to 503 immediately (load balancers stop routing);
        submits are refused while registered workers keep answering.  After
        ``drain_timeout`` wall seconds any remaining work is abandoned.
        """
        self._ready = False
        deadline = asyncio.get_running_loop().time() + self.config.drain_timeout
        while self._backlog() > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.02)
        for server in self._servers:
            server.stop()
        if self.runtime is not None:
            self.runtime.close()
        if self._httpd is not None:
            await self._httpd.close()

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def servers(self) -> List[LiveRegionServer]:
        return list(self._servers)

    def summary(self) -> Dict[str, float]:
        """Aggregate middleware summary across the live servers."""
        assert self.coordinator is not None
        return self.coordinator.aggregate_summary()

    # ------------------------------------------------------------ internals
    def _make_server(
        self,
        clock: EventClock,
        policy: SchedulingPolicy,
        rng: RngRegistry,
        cost_model: Optional[CostModel],
    ) -> LiveRegionServer:
        server = LiveRegionServer(
            clock=clock,
            policy=policy,
            rng=rng,
            cost_model=cost_model if cost_model is not None else ZeroCost(),
            liveness_timeout=self.config.liveness_timeout,
        )
        self._servers.append(server)
        return server

    def _backlog(self) -> int:
        return sum(server.in_flight for server in self._servers)

    def _next_location(self) -> tuple:
        """Round-robin region centers for clients that omit coordinates."""
        assert self.coordinator is not None
        regions: List[Region] = self.coordinator.regions
        region = regions[self._rr_index % len(regions)]
        self._rr_index += 1
        return region.center

    def _coords(self, body: Dict[str, object]) -> tuple:
        lat, lon = body.get("latitude"), body.get("longitude")
        if lat is None or lon is None:
            return self._next_location()
        try:
            return float(lat), float(lon)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad coordinates: {lat!r}, {lon!r}") from exc

    @staticmethod
    def _body_dict(request: HttpRequest) -> Dict[str, object]:
        body = request.json()
        if body is None:
            return {}
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    # -------------------------------------------------------------- routing
    async def _handle(self, request: HttpRequest) -> HttpResponse:
        method, path = request.method, request.path
        parts = [part for part in path.split("/") if part]
        if path == "/healthz" and method == "GET":
            return json_response({"status": "ok"})
        if path == "/readyz" and method == "GET":
            if self._ready:
                return json_response({"status": "ready"})
            return json_response({"status": "draining"}, status=503)
        if path == "/metrics" and method == "GET":
            return HttpResponse(
                status=200,
                body=prometheus_text(self.registry).encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if path == "/tasks" and method == "POST":
            return self._submit_task(request)
        if len(parts) == 2 and parts[0] == "tasks" and method == "GET":
            return self._task_status(parts[1])
        if path == "/workers" and method == "POST":
            return self._register_worker(request)
        if len(parts) == 3 and parts[0] == "workers" and method == "POST":
            worker_id = _int_segment(parts[1], "worker id")
            if parts[2] == "heartbeat":
                return self._heartbeat(worker_id)
            if parts[2] == "answer":
                return self._answer(worker_id, request)
            if parts[2] == "deregister":
                return self._deregister(worker_id)
        return json_response({"error": f"no route for {method} {path}"}, status=404)

    # ------------------------------------------------------------ endpoints
    def _submit_task(self, request: HttpRequest) -> HttpResponse:
        assert self._admission is not None and self.coordinator is not None
        if not self._ready:
            return json_response({"error": "draining"}, status=503)
        decision = self._admission.check()
        if not decision.admitted:
            retry_after = round(decision.retry_after, 3)
            return json_response(
                {
                    "error": "overloaded",
                    "reason": decision.reason,
                    "retry_after": retry_after,
                },
                status=429,
                headers={"Retry-After": f"{retry_after:g}"},
            )
        body = self._body_dict(request)
        try:
            deadline = float(body.get("deadline", self.config.default_deadline))  # type: ignore[arg-type]
            reward = float(body.get("reward", 0.05))  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad numeric field: {exc}") from exc
        category_raw = body.get("category", TaskCategory.GENERIC.value)
        try:
            category = TaskCategory(category_raw)
        except ValueError as exc:
            raise BadRequest(f"unknown category: {category_raw!r}") from exc
        latitude, longitude = self._coords(body)
        try:
            task = Task(
                latitude=latitude,
                longitude=longitude,
                deadline=deadline,
                reward=reward,
                category=category,
                description=str(body.get("description", "")),
            )
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        self.coordinator.submit_task(task)
        return json_response(
            {"task_id": task.task_id, "status": "admitted"}, status=201
        )

    def _task_status(self, segment: str) -> HttpResponse:
        task_id = _int_segment(segment, "task id")
        for server in self._servers:
            try:
                return json_response(server.task_status(task_id))
            except KeyError:
                continue
        return json_response({"error": f"unknown task {task_id}"}, status=404)

    def _register_worker(self, request: HttpRequest) -> HttpResponse:
        body = self._body_dict(request)
        if not self._ready:
            return json_response({"error": "draining"}, status=503)
        raw_id = body.get("worker_id")
        if raw_id is None:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        else:
            worker_id = _int_value(raw_id, "worker_id")
            self._next_worker_id = max(self._next_worker_id, worker_id + 1)
        if worker_id in self._worker_server:
            return json_response(
                {"error": f"worker {worker_id} already registered"}, status=409
            )
        latitude, longitude = self._coords(body)
        profile = WorkerProfile(
            worker_id=worker_id, latitude=latitude, longitude=longitude
        )
        server = self._server_for(latitude, longitude)
        server.register_worker(profile)
        self._worker_server[worker_id] = server
        return json_response({"worker_id": worker_id}, status=201)

    def _server_of(self, worker_id: int) -> Optional[LiveRegionServer]:
        """The server currently holding ``worker_id``'s profile.

        A region split can migrate an idle worker to a child server behind
        the gateway's back; the cached route is re-validated against the
        profiling component and repaired by scanning the (few) servers.
        """
        server = self._worker_server.get(worker_id)
        if server is not None and worker_id in server.profiling:
            return server
        for candidate in self._servers:
            if worker_id in candidate.profiling:
                self._worker_server[worker_id] = candidate
                return candidate
        # Gone everywhere (liveness cull or deregister): drop the stale route.
        self._worker_server.pop(worker_id, None)
        return None

    def _heartbeat(self, worker_id: int) -> HttpResponse:
        server = self._server_of(worker_id)
        if server is None:
            return json_response(
                {"error": f"unknown worker {worker_id}; re-register"}, status=404
            )
        notice = server.heartbeat(worker_id)
        return json_response(
            {"assignment": asdict(notice) if notice is not None else None}
        )

    def _answer(self, worker_id: int, request: HttpRequest) -> HttpResponse:
        server = self._server_of(worker_id)
        if server is None:
            return json_response(
                {"error": f"unknown worker {worker_id}"}, status=404
            )
        body = self._body_dict(request)
        if "task_id" not in body:
            raise BadRequest("answer requires task_id")
        task_id = _int_value(body["task_id"], "task_id")
        outcome = server.submit_answer(worker_id, task_id)
        if outcome.completed:
            self.completed += 1
            self._completions.inc()
            task = server.task_management.get(task_id)
            if task.total_time is not None:
                self._latency.observe(task.total_time)
            return json_response(
                {"status": "completed", "met_deadline": outcome.met_deadline}
            )
        if outcome.status == "stale":
            return json_response({"status": "stale"}, status=409)
        return json_response({"error": outcome.status}, status=404)

    def _deregister(self, worker_id: int) -> HttpResponse:
        server = self._server_of(worker_id)
        if server is None:
            return json_response(
                {"error": f"unknown worker {worker_id}"}, status=404
            )
        server.deregister_worker(worker_id)
        self._worker_server.pop(worker_id, None)
        return json_response({"status": "deregistered"})

    def _server_for(self, latitude: float, longitude: float) -> LiveRegionServer:
        assert self.coordinator is not None
        return cast(LiveRegionServer, self.coordinator.server_for(latitude, longitude))


def _int_segment(segment: str, label: str) -> int:
    try:
        return int(segment)
    except ValueError as exc:
        raise BadRequest(f"bad {label}: {segment!r}") from exc


def _int_value(value: object, label: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{label} must be an integer, got {value!r}")
    return value
