"""Standalone gateway: ``python -m repro.service [--host H] [--port P] ...``.

Boots a :class:`~repro.service.gateway.ServiceGateway` on the given address
and serves until SIGTERM/SIGINT, then drains gracefully: ``/readyz`` flips
to 503, in-flight tasks get ``--drain-timeout`` wall seconds to finish, and
the process exits 0.  Used by the CI ``service-smoke`` job and as the
manual serving recipe in docs/SERVICE.md.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from .admission import AdmissionConfig
from .gateway import GatewayConfig, ServiceGateway


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the REACT middleware over HTTP (live-service mode).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    parser.add_argument(
        "--rows", type=int, default=1, help="region grid rows (default 1)"
    )
    parser.add_argument(
        "--cols", type=int, default=1, help="region grid columns (default 1)"
    )
    parser.add_argument(
        "--admission-rate",
        type=float,
        default=50.0,
        help="token-bucket sustained submit rate, tasks/s",
    )
    parser.add_argument(
        "--admission-burst", type=int, default=100, help="token-bucket burst size"
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=1000,
        help="backlog bound: max admitted-but-unfinished tasks",
    )
    parser.add_argument(
        "--liveness-timeout",
        type=float,
        default=30.0,
        help="deregister workers silent for this many clock seconds",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="clock seconds per wall second (accelerated testing)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="wall seconds granted to in-flight work on shutdown",
    )
    parser.add_argument("--seed", type=int, default=20130521)
    return parser


async def serve(config: GatewayConfig) -> int:
    gateway = ServiceGateway(config)
    await gateway.start()
    print(
        f"repro.service listening on http://{gateway.host}:{gateway.port} "
        f"(regions={config.rows * config.cols}, time_scale={config.time_scale:g})",
        flush=True,
    )
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, shutdown.set)
    await shutdown.wait()
    print("repro.service draining...", flush=True)
    await gateway.stop()
    summary = gateway.summary()
    completed = int(summary.get("completed", 0))
    received = int(summary.get("received", 0))
    print(
        f"repro.service drained: received={received} completed={completed}",
        flush=True,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        rows=args.rows,
        cols=args.cols,
        admission=AdmissionConfig(
            rate=args.admission_rate,
            burst=args.admission_burst,
            max_in_flight=args.max_in_flight,
        ),
        liveness_timeout=args.liveness_timeout,
        time_scale=args.time_scale,
        seed=args.seed,
        drain_timeout=args.drain_timeout,
    )
    return asyncio.run(serve(config))


if __name__ == "__main__":
    sys.exit(main())
