"""Closed-loop load generation against a running :class:`ServiceGateway`.

Simulates the paper's experimental population over real HTTP: a requester
coroutine submits tasks with Poisson inter-arrival gaps (the paper sweeps
1.5-12.5 tasks/s per region, §IV) while ``workers`` concurrent worker
coroutines register, heartbeat, execute whatever they are handed (a
uniform-random wall sleep) and post the answer back — the full
submit → admit → match → dispatch → answer loop, measured end to end.

The harness is *closed-loop on the worker side* (a worker never holds more
than one task) and *open-loop on arrivals* (the Poisson clock does not slow
down when the gateway sheds load), which is exactly the overload shape the
admission controller exists for: past saturation the submit rate keeps
hammering and the report shows 429s rising while admitted-task latency
stays bounded.

Everything here is wall-clock territory (DET001 exempts ``repro.service``),
but the stochastic draws — arrival gaps, work times — still come from a
seeded ``numpy`` generator so a load test is repeatable modulo scheduler
jitter.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .httpd import MAX_HEADER_LINE


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-test scenario."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Task arrival rate, tasks per wall second (paper axis: 1.5-12.5).
    arrival_rate: float = 5.0
    #: Wall seconds of task submission.
    duration: float = 10.0
    #: Concurrent worker coroutines.
    workers: int = 20
    #: Wall seconds between heartbeats while idle.
    heartbeat_interval: float = 0.1
    #: Uniform work-time window (wall seconds) per executed task.
    work_time_min: float = 0.2
    work_time_max: float = 1.0
    #: Task deadline submitted with each task (clock seconds).
    task_deadline: float = 90.0
    #: Wall seconds to keep workers draining after submission stops.
    drain_grace: float = 5.0
    seed: int = 20130521

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {self.arrival_rate}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0 < self.work_time_min <= self.work_time_max:
            raise ValueError(
                f"work time window invalid: [{self.work_time_min}, {self.work_time_max}]"
            )


@dataclass
class LoadReport:
    """Aggregated outcome of one load-test run."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    stale: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    #: Submit-to-answer latencies (wall seconds) for completed tasks.
    latencies: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        return float(np.percentile(np.asarray(self.latencies), q))

    def to_dict(self) -> Dict[str, object]:
        def _round(value: Optional[float]) -> Optional[float]:
            return round(value, 4) if value is not None else None

        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "completed": self.completed,
            "stale": self.stale,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 3),
            "admitted_per_second": (
                round(self.admitted / self.wall_seconds, 3) if self.wall_seconds else 0.0
            ),
            "latency_p50": _round(self.percentile(50)),
            "latency_p95": _round(self.percentile(95)),
            "latency_p99": _round(self.percentile(99)),
        }


class AsyncHttpClient:
    """Tiny keep-alive HTTP/1.1 JSON client (one connection per instance)."""

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=MAX_HEADER_LINE
        )

    async def close(self) -> None:
        # Drop the shared references before suspending in wait_closed():
        # a concurrent request()/close() resuming mid-await must not see a
        # half-closed connection (ASYNC003 check-then-act discipline).
        writer = self._writer
        if writer is None:
            return
        self._reader = None
        self._writer = None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, object]:
        """One round-trip; reconnects once on a dropped keep-alive socket."""
        try:
            return await self._round_trip(method, path, payload)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await self.close()
            return await self._round_trip(method, path, payload)

    async def _round_trip(
        self, method: str, path: str, payload: Optional[dict]
    ) -> Tuple[int, object]:
        if self._writer is None or self._reader is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if not raw:
            return status, None
        try:
            return status, json.loads(raw)
        except json.JSONDecodeError:
            return status, raw


async def run_loadgen(config: LoadgenConfig) -> LoadReport:
    """Drive one closed-loop load test; returns the aggregated report."""
    report = LoadReport()
    rng = np.random.default_rng(config.seed)
    submit_times: Dict[int, float] = {}
    stop = asyncio.Event()
    started = time.monotonic()

    async def requester() -> None:
        client = AsyncHttpClient(config.host, config.port)
        end = started + config.duration
        try:
            while True:
                gap = float(rng.exponential(1.0 / config.arrival_rate))
                now = time.monotonic()
                if now + gap >= end:
                    break
                await asyncio.sleep(gap)
                report.submitted += 1
                try:
                    status, body = await client.request(
                        "POST", "/tasks", {"deadline": config.task_deadline}
                    )
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    report.errors += 1
                    continue
                if status == 201 and isinstance(body, dict):
                    report.admitted += 1
                    submit_times[int(body["task_id"])] = time.monotonic()
                elif status == 429:
                    report.rejected += 1
                    reason = "unknown"
                    if isinstance(body, dict):
                        reason = str(body.get("reason", "unknown"))
                    report.rejected_by_reason[reason] = (
                        report.rejected_by_reason.get(reason, 0) + 1
                    )
                else:
                    report.errors += 1
        finally:
            await client.close()

    async def worker(index: int) -> None:
        client = AsyncHttpClient(config.host, config.port)
        worker_rng = np.random.default_rng(config.seed + 7919 * (index + 1))
        worker_id: Optional[int] = None
        try:
            status, body = await client.request("POST", "/workers", {})
            if status != 201 or not isinstance(body, dict):
                report.errors += 1
                return
            worker_id = int(body["worker_id"])
            while not stop.is_set():
                status, body = await client.request(
                    "POST", f"/workers/{worker_id}/heartbeat"
                )
                if status != 200 or not isinstance(body, dict):
                    report.errors += 1
                    await asyncio.sleep(config.heartbeat_interval)
                    continue
                assignment = body.get("assignment")
                if not assignment:
                    await asyncio.sleep(config.heartbeat_interval)
                    continue
                task_id = int(assignment["task_id"])  # type: ignore[index]
                work = float(
                    worker_rng.uniform(config.work_time_min, config.work_time_max)
                )
                await asyncio.sleep(work)
                status, body = await client.request(
                    "POST", f"/workers/{worker_id}/answer", {"task_id": task_id}
                )
                if status == 200:
                    report.completed += 1
                    submitted_at = submit_times.pop(task_id, None)
                    if submitted_at is not None:
                        report.latencies.append(time.monotonic() - submitted_at)
                elif status == 409:
                    report.stale += 1
                else:
                    report.errors += 1
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            report.errors += 1
        finally:
            if worker_id is not None:
                try:
                    await client.request("POST", f"/workers/{worker_id}/deregister")
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    pass
            await client.close()

    worker_tasks = [
        asyncio.ensure_future(worker(index)) for index in range(config.workers)
    ]
    await requester()
    # Submission is over; give in-flight assignments a grace window to land.
    grace_end = time.monotonic() + config.drain_grace
    while submit_times and time.monotonic() < grace_end:
        await asyncio.sleep(0.05)
    stop.set()
    await asyncio.gather(*worker_tasks, return_exceptions=True)
    report.wall_seconds = time.monotonic() - started
    return report
