"""Live-service mode: the REACT middleware on a wall-clock asyncio runtime.

The paper's middleware serves real requesters and workers under real-time
constraints; everywhere else in this repo the platform components run under
the deterministic DES engine.  This package is the third execution mode
(after sequential DES and sharded DES): the *same* component classes —
Profiling, Task Management, Scheduling, Dynamic Assignment — driven by
monotonic wall time through the :class:`~repro.sim.clock.EventClock`
protocol, fronted by an HTTP/JSON gateway.

Layers (docs/SERVICE.md):

* :mod:`repro.service.runtime` — :class:`WallClockRuntime`, an asyncio
  event source satisfying ``EventClock`` (heap + one armed timer, cohort
  dispatch preserved, optional ``time_scale`` for accelerated tests);
* :mod:`repro.service.bridge` — :class:`LiveRegionServer`, the REACT
  region server wired for live traffic: worker inboxes and answer
  callbacks replace the simulator's behaviour draws;
* :mod:`repro.service.admission` — token-bucket admission control and the
  bounded-backlog guard behind the gateway's 429 + Retry-After responses;
* :mod:`repro.service.httpd` — a minimal stdlib asyncio HTTP/1.1 server;
* :mod:`repro.service.gateway` — :class:`ServiceGateway`, the endpoint
  surface (task submit, worker register/heartbeat/answer/deregister,
  ``/healthz`` ``/readyz`` ``/metrics``) with per-region routing via the
  :class:`~repro.platform.coordinator.Coordinator`;
* :mod:`repro.service.loadgen` — the closed-loop load-generation harness.

This is the only package in which reprolint's DET001 permits wall-clock
reads: everything under a simulation seed stays deterministic, and the
boundary is machine-checked (docs/STATIC_ANALYSIS.md).
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from .bridge import AnswerOutcome, DispatchNotice, LiveRegionServer
from .gateway import GatewayConfig, ServiceGateway
from .loadgen import LoadgenConfig, LoadReport, run_loadgen
from .runtime import ServiceRuntimeError, WallClockRuntime

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AnswerOutcome",
    "DispatchNotice",
    "GatewayConfig",
    "LiveRegionServer",
    "LoadgenConfig",
    "LoadReport",
    "ServiceGateway",
    "ServiceRuntimeError",
    "TokenBucket",
    "WallClockRuntime",
    "run_loadgen",
]
