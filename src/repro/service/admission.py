"""Admission control for the live gateway: token bucket + bounded backlog.

The real-time guarantee the paper's middleware offers only holds while the
matcher keeps up with arrivals; past that point every extra admitted task
degrades *all* in-flight deadlines.  The gateway therefore sheds load at
the door with two independent guards, both surfaced to clients as HTTP 429
with a ``Retry-After`` hint:

* a **token bucket** caps the sustained submit rate (``rate`` tasks/s,
  bursts up to ``burst``) — the knob mirrors the paper's arrival-rate axis
  (1.5-12.5 tasks/s per region in §IV);
* a **backlog bound** caps in-flight tasks (submitted, not yet completed or
  expired) so the unassigned queue cannot grow without bound even when the
  bucket rate is misconfigured above the region's service capacity.

Both guards are clock-agnostic: they read time from the injected
:class:`~repro.sim.clock.EventClock`, so admission behaviour is unit-tested
on the deterministic DES engine and served from the wall-clock runtime
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..obs.registry import MetricsRegistry
from ..sim.clock import EventClock


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    ``admit(now)`` consumes one token if available and returns
    ``(True, 0.0)``; otherwise ``(False, retry_after)`` where
    ``retry_after`` is the time until a full token accrues.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def admit(self, now: float) -> Tuple[bool, float]:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (as of the last admit call)."""
        return self._tokens


@dataclass(frozen=True)
class AdmissionConfig:
    """Gateway admission knobs.

    ``rate``/``burst`` parameterise the token bucket; ``max_in_flight``
    bounds the middleware backlog; ``backlog_retry_after`` is the
    Retry-After hint handed out on backlog rejections (the bucket computes
    its own exact hint).
    """

    rate: float = 50.0
    burst: int = 100
    max_in_flight: int = 1000
    backlog_retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.backlog_retry_after <= 0:
            raise ValueError(
                f"backlog_retry_after must be positive, got {self.backlog_retry_after}"
            )


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    #: "rate" | "backlog" when rejected, None when admitted.
    reason: Optional[str] = None
    retry_after: float = 0.0


class AdmissionController:
    """Applies the config's two guards and keeps the shedding counters."""

    def __init__(
        self,
        config: AdmissionConfig,
        clock: EventClock,
        backlog_fn: Callable[[], int],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self._clock = clock
        self._backlog_fn = backlog_fn
        self._bucket = TokenBucket(config.rate, config.burst)
        if registry is not None:
            self._admitted_total = registry.counter(
                "service_admitted_total", "Tasks admitted by the gateway"
            )
            rejected = registry.counter(
                "service_rejected_total",
                "Tasks rejected by admission control",
                labelnames=("reason",),
            )
            self._rejected_rate = rejected.labels(reason="rate")
            self._rejected_backlog = rejected.labels(reason="backlog")
        else:
            self._admitted_total = None
            self._rejected_rate = None
            self._rejected_backlog = None
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_backlog = 0

    def check(self) -> AdmissionDecision:
        """One submit attempt: backlog guard first, then the bucket.

        Backlog is checked first so a saturated middleware rejects without
        draining bucket tokens (a retrying client would otherwise also eat
        the budget of clients arriving once capacity returns).
        """
        if self._backlog_fn() >= self.config.max_in_flight:
            self.rejected_backlog += 1
            if self._rejected_backlog is not None:
                self._rejected_backlog.inc()
            return AdmissionDecision(
                admitted=False,
                reason="backlog",
                retry_after=self.config.backlog_retry_after,
            )
        ok, retry_after = self._bucket.admit(self._clock.now)
        if not ok:
            self.rejected_rate += 1
            if self._rejected_rate is not None:
                self._rejected_rate.inc()
            return AdmissionDecision(
                admitted=False, reason="rate", retry_after=retry_after
            )
        self.admitted += 1
        if self._admitted_total is not None:
            self._admitted_total.inc()
        return AdmissionDecision(admitted=True)
