"""Observability subsystem: metrics registry, sim-time tracing, exporters.

The paper's evaluation (§V, Figs. 5-8) is entirely about *observing* the
platform — deadline hit rates, reassignment counts, matcher latency.  This
package is the first-class layer those observations flow through:

* :mod:`repro.obs.registry` — counter / gauge / histogram instruments with
  labeled series and deterministic snapshot order;
* :mod:`repro.obs.trace` — sim-time spans and instant events in a bounded
  ring buffer, near-zero-cost no-ops when disabled;
* :mod:`repro.obs.exporters` — JSONL event logs, Perfetto-loadable Chrome
  trace JSON, Prometheus text exposition, CSV summaries;
* :mod:`repro.obs.runtime` — the :class:`Observability` facade the platform
  components accept (``observability=`` constructor arguments) and the
  shared :data:`NULL_OBS` disabled context.

See ``docs/OBSERVABILITY.md`` for the instrument catalogue and usage.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Sample,
)
from .runtime import NULL_OBS, Observability, resolve
from .trace import (
    CHAOS_TRACK,
    DEFAULT_MAX_EVENTS,
    MONITOR_TRACK,
    NULL_TRACER,
    PLATFORM_TRACK,
    SCHEDULER_TRACK,
    TraceEvent,
    Tracer,
    worker_track,
)

__all__ = [
    "CHAOS_TRACK",
    "Counter",
    "DEFAULT_MAX_EVENTS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MONITOR_TRACK",
    "NULL_INSTRUMENT",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Observability",
    "PLATFORM_TRACK",
    "Sample",
    "SCHEDULER_TRACK",
    "TraceEvent",
    "Tracer",
    "resolve",
    "worker_track",
]
