"""The :class:`Observability` facade: one registry + one tracer per run.

Platform components never import the registry or tracer directly; they take
an optional ``observability`` argument and fall back to :data:`NULL_OBS`,
whose registry hands out no-op instruments and whose tracer discards
events.  That keeps every call site unconditional (no ``if obs:`` branches
on hot paths) while the disabled cost stays at one attribute lookup plus an
empty method call — budgeted by the perf guard in
:mod:`repro.experiments.perf`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Union

from .exporters import (
    write_chrome_trace,
    write_metrics_csv,
    write_prometheus,
    write_trace_jsonl,
)
from .registry import NULL_REGISTRY, MetricsRegistry
from .trace import DEFAULT_MAX_EVENTS, NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.clock import EventClock


class Observability:
    """Live telemetry context: a metrics registry plus a sim-time tracer."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_trace_events: Optional[int] = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, max_events=max_trace_events)

    # ------------------------------------------------------------- wiring
    def bind_engine(self, engine: "EventClock") -> "Observability":
        """Use ``engine.now`` as the tracer clock (late binding: drivers
        build the observability context before the engine exists)."""
        self.tracer.set_clock(lambda: engine.now)
        return self

    # ------------------------------------------------------------- export
    def export(
        self,
        name: str,
        trace_dir: Optional[Union[str, Path]] = None,
        metrics_dir: Optional[Union[str, Path]] = None,
    ) -> List[Path]:
        """Write every exporter format for this run.

        ``trace_dir`` receives ``<name>.trace.json`` (Chrome/Perfetto) and
        ``<name>.trace.jsonl`` (archival log); ``metrics_dir`` receives
        ``<name>.prom`` (Prometheus text) and ``<name>.metrics.csv``.
        Either directory may be None to skip that half.
        """
        written: List[Path] = []
        if trace_dir is not None:
            trace_dir = Path(trace_dir)
            trace_dir.mkdir(parents=True, exist_ok=True)
            written.append(
                write_chrome_trace(self.tracer.events, trace_dir / f"{name}.trace.json")
            )
            written.append(
                write_trace_jsonl(self.tracer.events, trace_dir / f"{name}.trace.jsonl")
            )
        if metrics_dir is not None:
            metrics_dir = Path(metrics_dir)
            metrics_dir.mkdir(parents=True, exist_ok=True)
            written.append(write_prometheus(self.registry, metrics_dir / f"{name}.prom"))
            written.append(
                write_metrics_csv(self.registry, metrics_dir / f"{name}.metrics.csv")
            )
        return written


class _NullObservability:
    """Disabled observability: shared, immutable, allocation-free."""

    __slots__ = ()
    enabled = False
    registry = NULL_REGISTRY
    tracer = NULL_TRACER

    def bind_engine(self, engine: "EventClock") -> "_NullObservability":
        return self

    def export(self, name, trace_dir=None, metrics_dir=None) -> List[Path]:
        return []


NULL_OBS = _NullObservability()

ObservabilityLike = Union[Observability, _NullObservability]


def resolve(observability: Optional[ObservabilityLike]) -> ObservabilityLike:
    """``None`` -> the shared null context (the component-side idiom)."""
    return observability if observability is not None else NULL_OBS
